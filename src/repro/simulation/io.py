"""Observation persistence: status matrices and cascades on disk.

Formats:

* **Status matrices** — CSV (one process per row, ``0``/``1`` cells,
  optional ``#`` header comments) for interchange, and NPZ for speed.
* **Cascades** — JSON Lines: one JSON object per process mapping node id
  to infection time, plus a leading metadata line carrying the node count
  and horizon.

These formats are what the command-line interface (``python -m repro``)
reads and writes, so simulation and inference can run as separate steps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import DataError
from repro.simulation.cascades import Cascade, CascadeSet
from repro.simulation.statuses import StatusMatrix

__all__ = [
    "write_statuses_csv",
    "read_statuses_csv",
    "write_statuses_npz",
    "read_statuses_npz",
    "write_cascades_jsonl",
    "read_cascades_jsonl",
]

PathLike = Union[str, Path]


def write_statuses_csv(statuses: StatusMatrix, path: PathLike) -> None:
    """Write a status matrix as comma-separated 0/1 rows with a header.

    The CSV format has no mask column; writing a masked matrix warns that
    the missing-data information is lost (use NPZ to round-trip masks).
    """
    path = Path(path)
    if statuses.mask is not None:
        import warnings

        from repro.exceptions import DataQualityWarning

        warnings.warn(
            f"{path}: CSV cannot encode the observation mask; unobserved "
            "entries are written as 0 (use NPZ to preserve the mask)",
            DataQualityWarning,
            stacklevel=2,
        )
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# beta: {statuses.beta}, nodes: {statuses.n_nodes}\n")
        for row in statuses.values:
            handle.write(",".join(str(int(cell)) for cell in row) + "\n")


def read_statuses_csv(path: PathLike) -> StatusMatrix:
    """Read a status matrix written by :func:`write_statuses_csv`."""
    path = Path(path)
    rows: list[list[int]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                row = [int(cell) for cell in text.split(",")]
            except ValueError as exc:
                raise DataError(f"{path}:{line_number}: non-integer cell") from exc
            rows.append(row)
    if not rows:
        raise DataError(f"{path}: no status rows found")
    widths = {len(row) for row in rows}
    if len(widths) != 1:
        raise DataError(f"{path}: inconsistent row lengths {sorted(widths)}")
    return StatusMatrix(rows)


def write_statuses_npz(statuses: StatusMatrix, path: PathLike) -> None:
    """Write a status matrix as a compressed NPZ archive.

    An observation mask, when present, is stored under the ``mask`` key so
    missing-data information round-trips (pre-mask files simply lack it).
    """
    arrays: dict[str, np.ndarray] = {"statuses": statuses.values}
    if statuses.mask is not None:
        arrays["mask"] = statuses.mask
    np.savez_compressed(Path(path), **arrays)


def read_statuses_npz(path: PathLike) -> StatusMatrix:
    """Read a status matrix written by :func:`write_statuses_npz`."""
    with np.load(Path(path)) as archive:
        if "statuses" not in archive:
            raise DataError(f"{path}: missing 'statuses' array")
        mask = archive["mask"] if "mask" in archive else None
        return StatusMatrix(archive["statuses"], mask)


def write_cascades_jsonl(cascades: CascadeSet, path: PathLike) -> None:
    """Write cascades as JSON Lines with a metadata header line."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format": "repro.cascades",
            "version": 1,
            "n_nodes": cascades.n_nodes,
            "horizon": cascades.horizon,
        }
        handle.write(json.dumps(header) + "\n")
        for cascade in cascades:
            record = {str(node): time for node, time in cascade.times.items()}
            handle.write(json.dumps(record) + "\n")


def read_cascades_jsonl(path: PathLike) -> CascadeSet:
    """Read cascades written by :func:`write_cascades_jsonl`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        try:
            header = json.loads(handle.readline())
        except json.JSONDecodeError as exc:
            raise DataError(f"{path}: malformed header line: {exc}") from exc
        if header.get("format") != "repro.cascades":
            raise DataError(f"{path}: not a cascades file (format={header.get('format')!r})")
        try:
            n_nodes = int(header["n_nodes"])
            horizon = float(header["horizon"])
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(f"{path}: malformed cascades header: {exc}") from exc
        cascades: list[Cascade] = []
        for line_number, line in enumerate(handle, start=2):
            text = line.strip()
            if not text:
                continue
            try:
                record = json.loads(text)
                cascades.append(
                    Cascade({int(node): float(time) for node, time in record.items()})
                )
            except (json.JSONDecodeError, TypeError, ValueError) as exc:
                raise DataError(f"{path}:{line_number}: malformed cascade: {exc}") from exc
    return CascadeSet(n_nodes, cascades, horizon=horizon)
