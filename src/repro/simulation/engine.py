"""The diffusion simulator: runs ``β`` processes and packages observations.

This is the experiment front door.  Given a ground-truth graph, it draws
per-edge propagation probabilities once (they are properties of the
network, not of a single process — §III), then runs ``β`` independent
diffusion processes and returns a :class:`SimulationResult` exposing every
observation view the algorithms need:

* ``result.statuses`` — the ``β × n`` final-status matrix (TENDS input),
* ``result.cascades`` — timestamped cascades (NetRate/MulTree/NetInf),
* ``result.seed_sets`` — per-process seed sets (LIFT).

Example
-------
>>> from repro.graphs import erdos_renyi_digraph
>>> from repro.simulation import DiffusionSimulator
>>> graph = erdos_renyi_digraph(30, 0.1, seed=1)
>>> sim = DiffusionSimulator(graph, mu=0.3, alpha=0.15, seed=42)
>>> result = sim.run(beta=50)
>>> result.statuses.beta
50
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.digraph import DiffusionGraph
from repro.simulation.cascades import Cascade, CascadeSet
from repro.simulation.models import DiffusionModel, IndependentCascadeModel
from repro.simulation.probabilities import gaussian_probabilities
from repro.simulation.seeds import SeedStrategy, uniform_random_seeds
from repro.simulation.statuses import StatusMatrix
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["DiffusionSimulator", "SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Observations from ``β`` simulated diffusion processes.

    The three views (statuses, cascades, seed sets) are projections of the
    same runs, so algorithm comparisons are apples-to-apples.
    """

    graph: DiffusionGraph
    probabilities: Mapping[tuple[int, int], float]
    cascades: CascadeSet

    @property
    def statuses(self) -> StatusMatrix:
        """Final infection statuses (TENDS' only input)."""
        return self.cascades.to_status_matrix()

    @property
    def seed_sets(self) -> list[frozenset[int]]:
        """Initially infected node set per process (LIFT's input)."""
        return self.cascades.seed_sets()

    @property
    def beta(self) -> int:
        return self.cascades.beta

    def infection_fraction(self) -> float:
        """Average fraction of nodes infected per process (diagnostics)."""
        return float(self.statuses.values.mean())


class DiffusionSimulator:
    """Simulate diffusion processes on a known graph.

    Parameters
    ----------
    graph:
        Ground-truth diffusion network.
    mu:
        Mean propagation probability; per-edge values are drawn
        ``N(mu, sigma²)`` clipped (paper §V-A) unless ``probabilities`` is
        given explicitly.
    alpha:
        Initial infection ratio; ``⌈α n⌉`` uniform random seeds per process
        unless ``seed_strategy`` is given explicitly.
    sigma:
        Propagation-probability standard deviation (default 0.05).
    model:
        Diffusion process model; default Independent Cascade.
    probabilities:
        Optional explicit edge-probability mapping, overriding ``mu``/``sigma``.
    seed_strategy:
        Optional explicit seed strategy, overriding ``alpha``.
    seed:
        Master seed; probability draws and every process derive from it.
    """

    def __init__(
        self,
        graph: DiffusionGraph,
        *,
        mu: float = 0.3,
        alpha: float = 0.15,
        sigma: float = 0.05,
        model: DiffusionModel | None = None,
        probabilities: Mapping[tuple[int, int], float] | None = None,
        seed_strategy: SeedStrategy | None = None,
        seed: RandomState = None,
    ) -> None:
        if graph.n_nodes == 0:
            raise ConfigurationError("cannot simulate on an empty graph")
        self.graph = graph if graph.frozen else graph.copy().freeze()
        self.model: DiffusionModel = model or IndependentCascadeModel()
        self._rng = as_generator(seed)
        if probabilities is None:
            probabilities = gaussian_probabilities(
                self.graph, mu=mu, sigma=sigma, seed=self._rng
            )
        else:
            self._validate_probabilities(probabilities)
        self.probabilities = dict(probabilities)
        self.seed_strategy = seed_strategy or uniform_random_seeds(alpha)

    def _validate_probabilities(
        self, probabilities: Mapping[tuple[int, int], float]
    ) -> None:
        for edge in self.graph.edges():
            p = probabilities.get(edge)
            if p is None:
                raise ConfigurationError(f"no probability supplied for edge {edge}")
            if not 0.0 < p < 1.0:
                raise ConfigurationError(
                    f"probability for edge {edge} must be in (0, 1), got {p}"
                )

    def run_one(self) -> Cascade:
        """Run a single diffusion process and return its cascade.

        Models implementing the full protocol (``simulate``) contribute
        ground-truth infector attribution to the cascade; times-only
        models (custom ``run``-only callables) still work.
        """
        seeds = self.seed_strategy(self.graph, self._rng)
        if hasattr(self.model, "simulate"):
            outcome = self.model.simulate(
                self.graph, self.probabilities, seeds, self._rng
            )
            return Cascade(outcome.times, infectors=outcome.infectors)
        times = self.model.run(self.graph, self.probabilities, seeds, self._rng)
        return Cascade(times)

    def run(self, beta: int) -> SimulationResult:
        """Run ``beta`` independent processes."""
        beta = check_positive_int("beta", beta)
        cascades = [self.run_one() for _ in range(beta)]
        return SimulationResult(
            graph=self.graph,
            probabilities=self.probabilities,
            cascades=CascadeSet(self.graph.n_nodes, cascades),
        )
