"""Seed-selection strategies (who is initially infected).

The paper's experiments select ``⌈α · n⌉`` seeds uniformly at random per
process (§V).  The extra strategies support the example applications:
degree-biased seeding models outbreaks that start at hubs, fixed seeding
models a designed marketing campaign.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.digraph import DiffusionGraph
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_fraction

__all__ = [
    "SeedStrategy",
    "uniform_random_seeds",
    "degree_biased_seeds",
    "fixed_seeds",
    "seed_count",
]

#: A seed strategy maps (graph, rng) -> array of seed node ids.
SeedStrategy = Callable[[DiffusionGraph, np.random.Generator], np.ndarray]


def seed_count(n_nodes: int, alpha: float) -> int:
    """Number of seeds for initial-infection ratio ``alpha``: ``⌈α n⌉``,
    at least 1 so every process actually starts."""
    check_fraction("alpha", alpha)
    return max(1, math.ceil(alpha * n_nodes))


def uniform_random_seeds(alpha: float) -> SeedStrategy:
    """Paper default: ``⌈α n⌉`` distinct nodes chosen uniformly."""
    check_fraction("alpha", alpha)

    def strategy(graph: DiffusionGraph, rng: np.random.Generator) -> np.ndarray:
        count = seed_count(graph.n_nodes, alpha)
        return rng.choice(graph.n_nodes, size=count, replace=False)

    return strategy


def degree_biased_seeds(alpha: float, *, use_out_degree: bool = True) -> SeedStrategy:
    """Choose seeds with probability proportional to degree + 1.

    Models epidemics that are first noticed at well-connected nodes.
    """
    check_fraction("alpha", alpha)

    def strategy(graph: DiffusionGraph, rng: np.random.Generator) -> np.ndarray:
        count = seed_count(graph.n_nodes, alpha)
        degrees = graph.out_degrees() if use_out_degree else graph.in_degrees()
        weights = (degrees + 1).astype(np.float64)
        weights /= weights.sum()
        return rng.choice(graph.n_nodes, size=count, replace=False, p=weights)

    return strategy


def fixed_seeds(nodes: Sequence[int]) -> SeedStrategy:
    """Always start from the same node set (designed-campaign scenarios)."""
    chosen = np.array(sorted(set(int(v) for v in nodes)), dtype=np.int64)
    if chosen.size == 0:
        raise ConfigurationError("fixed_seeds requires at least one node")

    def strategy(graph: DiffusionGraph, rng: np.random.Generator) -> np.ndarray:
        if chosen.max() >= graph.n_nodes:
            raise ConfigurationError(
                f"fixed seed {int(chosen.max())} outside graph of {graph.n_nodes} nodes"
            )
        return chosen.copy()

    return strategy
