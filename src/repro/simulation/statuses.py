"""Final-infection-status observations.

A :class:`StatusMatrix` is the ``β × n`` binary matrix ``S`` from the paper
(§III): row ``ℓ`` holds the final infection status of every node at the end
of the ``ℓ``-th diffusion process.  It is the *only* observation TENDS
consumes, so this class also hosts the vectorised marginal/joint counting
helpers the scoring and IMI code build on.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DataError, DataQualityWarning

__all__ = ["StatusMatrix", "StatusAudit", "validate_observations"]


@dataclass(frozen=True)
class StatusAudit:
    """Data-quality findings for one :class:`StatusMatrix`.

    Real observation sets are noisy and incomplete: diffusion processes
    that never took off (all-zero rows), saturated ones (all-one rows),
    and nodes that are never or always infected all carry no pairwise
    signal, which is exactly where the degenerate ``N₁ = 0`` / ``N₂ = 0``
    limits of Eq. 16–17 and the zero-marginal IMI terms of Eq. 24–25
    arise.  The estimators handle those limits gracefully (they
    contribute the documented limit value, never ``-inf``/``nan``), but
    a sweep built on such data deserves a warning — that is what this
    audit provides.

    Attributes
    ----------
    beta / n_nodes:
        Matrix shape.
    empty_processes:
        Indices of all-zero rows (the diffusion never spread).
    saturated_processes:
        Indices of all-one rows (the diffusion reached every node).
    never_infected_nodes:
        Columns that are 0 in every process (``N₂ = 0``).
    always_infected_nodes:
        Columns that are 1 in every process (``N₁ = 0``).
    """

    beta: int
    n_nodes: int
    empty_processes: tuple[int, ...]
    saturated_processes: tuple[int, ...]
    never_infected_nodes: tuple[int, ...]
    always_infected_nodes: tuple[int, ...]

    @property
    def is_degenerate(self) -> bool:
        """True when any finding is present."""
        return bool(
            self.empty_processes
            or self.saturated_processes
            or self.never_infected_nodes
            or self.always_infected_nodes
        )

    def findings(self) -> list[str]:
        """Human-readable description of each finding (empty when clean)."""
        messages: list[str] = []
        for label, items in (
            ("all-zero (never spread) processes", self.empty_processes),
            ("all-one (saturated) processes", self.saturated_processes),
            ("never-infected nodes (N2=0)", self.never_infected_nodes),
            ("always-infected nodes (N1=0)", self.always_infected_nodes),
        ):
            if items:
                head = ", ".join(str(i) for i in items[:8])
                suffix = ", ..." if len(items) > 8 else ""
                messages.append(f"{len(items)} {label}: [{head}{suffix}]")
        return messages


def validate_observations(
    statuses: "StatusMatrix", *, on_degenerate: str = "warn"
) -> StatusAudit:
    """Audit a status matrix for degenerate-but-valid observations.

    Shape, dtype, and NaN/value checks already happen in the
    :class:`StatusMatrix` constructor (malformed data never gets this
    far); this audit flags *statistically* degenerate content.

    Parameters
    ----------
    statuses:
        The observations to audit.
    on_degenerate:
        ``"warn"`` (default) emits one
        :class:`~repro.exceptions.DataQualityWarning` summarising all
        findings; ``"strict"`` raises :class:`~repro.exceptions.DataError`
        instead; ``"ignore"`` only returns the audit.
    """
    if on_degenerate not in ("warn", "strict", "ignore"):
        raise DataError(f"unknown on_degenerate policy: {on_degenerate!r}")
    values = statuses.values
    row_sums = values.sum(axis=1, dtype=np.int64)
    column_sums = values.sum(axis=0, dtype=np.int64)
    audit = StatusAudit(
        beta=statuses.beta,
        n_nodes=statuses.n_nodes,
        empty_processes=tuple(np.nonzero(row_sums == 0)[0].tolist()),
        saturated_processes=tuple(
            np.nonzero(row_sums == statuses.n_nodes)[0].tolist()
        ),
        never_infected_nodes=tuple(np.nonzero(column_sums == 0)[0].tolist()),
        always_infected_nodes=tuple(
            np.nonzero(column_sums == statuses.beta)[0].tolist()
        ),
    )
    if audit.is_degenerate and on_degenerate != "ignore":
        message = (
            f"degenerate observations (beta={audit.beta}, n={audit.n_nodes}): "
            + "; ".join(audit.findings())
        )
        if on_degenerate == "strict":
            raise DataError(message)
        warnings.warn(message, DataQualityWarning, stacklevel=2)
    return audit


class StatusMatrix:
    """Immutable wrapper around a ``(beta, n)`` uint8 array of {0, 1}.

    Parameters
    ----------
    data:
        Array-like of shape ``(beta, n)`` containing only 0/1 values.

    Examples
    --------
    >>> s = StatusMatrix([[1, 0, 1], [0, 0, 1]])
    >>> s.beta, s.n_nodes
    (2, 3)
    >>> s.infection_counts().tolist()
    [1, 0, 2]
    """

    __slots__ = ("_data",)

    def __init__(self, data: Iterable[Sequence[int]] | np.ndarray) -> None:
        array = np.asarray(data)
        if array.ndim != 2:
            raise DataError(f"status matrix must be 2-D (beta, n), got shape {array.shape}")
        if array.size and not np.isin(array, (0, 1)).all():
            raise DataError("status matrix entries must be 0 or 1")
        self._data = np.ascontiguousarray(array, dtype=np.uint8)
        self._data.setflags(write=False)

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Read-only ``(beta, n)`` uint8 view."""
        return self._data

    @property
    def beta(self) -> int:
        """Number of observed diffusion processes (rows)."""
        return self._data.shape[0]

    @property
    def n_nodes(self) -> int:
        """Number of nodes (columns)."""
        return self._data.shape[1]

    def column(self, node: int) -> np.ndarray:
        """Status vector of one node across all processes."""
        return self._data[:, node]

    def process(self, index: int) -> np.ndarray:
        """Status vector of all nodes in one process."""
        return self._data[index, :]

    # ------------------------------------------------------------------
    # counting helpers (used by scoring and IMI)
    # ------------------------------------------------------------------
    def infection_counts(self) -> np.ndarray:
        """Per-node count of processes in which the node ended infected
        (the paper's ``N₂`` per node; ``N₁ = beta - N₂``)."""
        return self._data.sum(axis=0, dtype=np.int64)

    def infection_rates(self) -> np.ndarray:
        """Per-node empirical infection probability ``P̂(X_i = 1)``."""
        if self.beta == 0:
            raise DataError("cannot compute rates from zero processes")
        return self.infection_counts() / self.beta

    def joint_counts(self) -> dict[str, np.ndarray]:
        """All four pairwise joint counts as ``(n, n)`` int64 matrices.

        Keys ``"11"``, ``"10"``, ``"01"``, ``"00"`` give
        ``count(X_i = a ∧ X_j = b)`` at ``[i, j]``.  Computed with two
        matrix products, which is what makes the IMI stage ``O(β n²)`` with
        a tiny constant.
        """
        ones = self._data.astype(np.int64)
        zeros = 1 - ones
        n11 = ones.T @ ones
        n10 = ones.T @ zeros
        n01 = zeros.T @ ones
        n00 = zeros.T @ zeros
        return {"11": n11, "10": n10, "01": n01, "00": n00}

    def pattern_counts(self, columns: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
        """Group rows by the joint pattern of ``columns`` (dense variant).

        Returns ``(codes, counts)`` where ``codes`` assigns each process a
        pattern id (the binary number formed by the selected columns) and
        ``counts[c]`` is the number of processes showing pattern ``c``,
        for **every** of the ``2^k`` possible patterns.  This is the
        ``N_ij`` machinery of Eq. (3): patterns with zero count are exactly
        the paper's non-existent combinations ``φ``.

        The dense layout materialises ``2^k`` cells, so it is capped at 20
        columns; the scoring code uses :meth:`observed_pattern_counts`,
        which scales to the bit-packing limit.
        """
        cols = list(columns)
        if len(cols) == 0:
            codes = np.zeros(self.beta, dtype=np.int64)
            return codes, np.array([self.beta], dtype=np.int64)
        if len(cols) > 20:
            raise DataError(
                f"dense pattern_counts materialises 2^{len(cols)} cells; "
                "use observed_pattern_counts for wide column sets"
            )
        weights = (1 << np.arange(len(cols), dtype=np.int64))
        codes = self._data[:, cols].astype(np.int64) @ weights
        counts = np.bincount(codes, minlength=1 << len(cols)).astype(np.int64)
        return codes, counts

    def observed_pattern_counts(
        self, columns: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Group rows by the joint pattern of ``columns`` (sparse variant).

        Returns ``(pattern_ids, inverse, counts)``: the **observed**
        pattern ids in ascending order, each row's index into them, and
        the per-pattern counts.  Memory is ``O(beta)`` regardless of the
        number of columns, which matters because the Theorem-2 size bound
        is self-satisfying for large parent sets (``φ`` grows like
        ``2^|F|``), so the literal Algorithm-1 search can reach parent
        sets far beyond dense-counting territory.
        """
        cols = list(columns)
        if len(cols) > 62:
            raise DataError(f"too many columns for bit-packing: {len(cols)}")
        if len(cols) == 0:
            return (
                np.zeros(1, dtype=np.int64),
                np.zeros(self.beta, dtype=np.int64),
                np.array([self.beta], dtype=np.int64),
            )
        weights = (1 << np.arange(len(cols), dtype=np.int64))
        codes = self._data[:, cols].astype(np.int64) @ weights
        pattern_ids, inverse, counts = np.unique(
            codes, return_inverse=True, return_counts=True
        )
        return pattern_ids, inverse.astype(np.int64), counts.astype(np.int64)

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def subset(self, processes: Sequence[int] | np.ndarray) -> "StatusMatrix":
        """New matrix containing only the selected process rows."""
        return StatusMatrix(self._data[np.asarray(processes, dtype=np.int64), :])

    def select_nodes(self, nodes: Sequence[int] | np.ndarray) -> "StatusMatrix":
        """New matrix containing only the selected node columns (in the
        given order) — the partial-observation scenario where some nodes
        are never monitored.  Node ``nodes[i]`` becomes column ``i``."""
        index = np.asarray(nodes, dtype=np.int64)
        if index.size != np.unique(index).size:
            raise DataError("selected nodes must be distinct")
        return StatusMatrix(self._data[:, index])

    def with_flip_noise(self, flip_probability: float, *, seed=None) -> "StatusMatrix":
        """Return a copy where each entry is flipped independently with the
        given probability (observation-noise robustness experiments)."""
        from repro.utils.rng import as_generator
        from repro.utils.validation import check_probability

        check_probability("flip_probability", flip_probability)
        rng = as_generator(seed)
        flips = rng.random(self._data.shape) < flip_probability
        return StatusMatrix(np.where(flips, 1 - self._data, self._data))

    # ------------------------------------------------------------------
    # dunders
    # ------------------------------------------------------------------
    def __getstate__(self) -> np.ndarray:
        # Slots classes need explicit pickle support; the array is the
        # whole state.  Used by the process execution backend, which ships
        # one StatusMatrix per worker (repro.core.executor).
        return self._data

    def __setstate__(self, state: np.ndarray) -> None:
        data = np.ascontiguousarray(state, dtype=np.uint8)
        data.setflags(write=False)  # unpickling drops the read-only flag
        object.__setattr__(self, "_data", data)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StatusMatrix):
            return NotImplemented
        return self._data.shape == other._data.shape and bool(
            (self._data == other._data).all()
        )

    def __hash__(self) -> int:
        return hash((self._data.shape, self._data.tobytes()))

    def __repr__(self) -> str:
        return f"StatusMatrix(beta={self.beta}, n_nodes={self.n_nodes})"
