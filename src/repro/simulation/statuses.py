"""Final-infection-status observations.

A :class:`StatusMatrix` is the ``β × n`` binary matrix ``S`` from the paper
(§III): row ``ℓ`` holds the final infection status of every node at the end
of the ``ℓ``-th diffusion process.  It is the *only* observation TENDS
consumes, so this class also hosts the vectorised marginal/joint counting
helpers the scoring and IMI code build on.

Real observation sets are incomplete as well as noisy, so a matrix may
carry an optional **observation mask**: a boolean ``β × n`` array whose
``True`` entries mark statuses that were actually observed.  Missing
entries are encoded explicitly in the mask — never silently as 0 or 1 —
and the estimators (``repro.core.imi``, ``repro.core.scoring``) switch to
pairwise-complete counting whenever unobserved entries are present.  A
matrix without a mask (or with an all-``True`` mask) behaves exactly as
before; every clean-data code path is unchanged.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DataError, DataQualityWarning

__all__ = ["StatusMatrix", "StatusAudit", "validate_observations"]


@dataclass(frozen=True)
class StatusAudit:
    """Data-quality findings for one :class:`StatusMatrix`.

    Real observation sets are noisy and incomplete: diffusion processes
    that never took off (all-zero rows), saturated ones (all-one rows),
    and nodes that are never or always infected all carry no pairwise
    signal, which is exactly where the degenerate ``N₁ = 0`` / ``N₂ = 0``
    limits of Eq. 16–17 and the zero-marginal IMI terms of Eq. 24–25
    arise.  The estimators handle those limits gracefully (they
    contribute the documented limit value, never ``-inf``/``nan``), but
    a sweep built on such data deserves a warning — that is what this
    audit provides.

    Attributes
    ----------
    beta / n_nodes:
        Matrix shape.
    empty_processes:
        Indices of all-zero rows (the diffusion never spread).
    saturated_processes:
        Indices of all-one rows (the diffusion reached every node).
    never_infected_nodes:
        Columns that are 0 in every process (``N₂ = 0``).
    always_infected_nodes:
        Columns that are 1 in every process (``N₁ = 0``).
    missing_fraction:
        Fraction of entries the observation mask marks unobserved
        (0.0 for unmasked matrices).
    unobserved_nodes:
        Columns with **no** observed entry at all — such a node can never
        contribute pairwise signal under any missing-data policy.
    unobserved_processes:
        Rows with no observed entry at all (the diffusion process was
        recorded but every status is missing).
    """

    beta: int
    n_nodes: int
    empty_processes: tuple[int, ...]
    saturated_processes: tuple[int, ...]
    never_infected_nodes: tuple[int, ...]
    always_infected_nodes: tuple[int, ...]
    missing_fraction: float = 0.0
    unobserved_nodes: tuple[int, ...] = ()
    unobserved_processes: tuple[int, ...] = ()

    #: Missing-entry fraction above which the audit flags mask density
    #: itself as a finding (pairwise-complete estimates then rest on less
    #: than half the processes per pair).
    DENSITY_WARNING_FRACTION = 0.5

    @property
    def is_degenerate(self) -> bool:
        """True when any finding is present."""
        return bool(
            self.empty_processes
            or self.saturated_processes
            or self.never_infected_nodes
            or self.always_infected_nodes
            or self.unobserved_nodes
            or self.unobserved_processes
            or self.missing_fraction > self.DENSITY_WARNING_FRACTION
        )

    def findings(self) -> list[str]:
        """Human-readable description of each finding (empty when clean)."""
        messages: list[str] = []
        for label, items in (
            ("all-zero (never spread) processes", self.empty_processes),
            ("all-one (saturated) processes", self.saturated_processes),
            ("never-infected nodes (N2=0)", self.never_infected_nodes),
            ("always-infected nodes (N1=0)", self.always_infected_nodes),
            ("fully-unobserved nodes", self.unobserved_nodes),
            ("fully-unobserved processes", self.unobserved_processes),
        ):
            if items:
                head = ", ".join(str(i) for i in items[:8])
                suffix = ", ..." if len(items) > 8 else ""
                messages.append(f"{len(items)} {label}: [{head}{suffix}]")
        if self.missing_fraction > self.DENSITY_WARNING_FRACTION:
            messages.append(
                f"{self.missing_fraction:.1%} of entries unobserved "
                "(pairwise-complete estimates rest on a minority of processes)"
            )
        return messages


def validate_observations(
    statuses: "StatusMatrix", *, on_degenerate: str = "warn"
) -> StatusAudit:
    """Audit a status matrix for degenerate-but-valid observations.

    Shape, dtype, and NaN/value checks already happen in the
    :class:`StatusMatrix` constructor (malformed data never gets this
    far); this audit flags *statistically* degenerate content, including
    observation-mask density: the overall missing fraction is always
    reported, and fully-unobserved nodes/processes or a majority-missing
    mask count as findings.

    Parameters
    ----------
    statuses:
        The observations to audit.
    on_degenerate:
        ``"warn"`` (default) emits one
        :class:`~repro.exceptions.DataQualityWarning` summarising all
        findings; ``"strict"`` raises :class:`~repro.exceptions.DataError`
        instead; ``"ignore"`` only returns the audit.
    """
    if on_degenerate not in ("warn", "strict", "ignore"):
        raise DataError(f"unknown on_degenerate policy: {on_degenerate!r}")
    values = statuses.values
    row_sums = values.sum(axis=1, dtype=np.int64)
    column_sums = values.sum(axis=0, dtype=np.int64)
    mask = statuses.mask
    if mask is None:
        missing_fraction = 0.0
        unobserved_nodes: tuple[int, ...] = ()
        unobserved_processes: tuple[int, ...] = ()
    else:
        observed = int(mask.sum())
        total = mask.size
        missing_fraction = 1.0 - (observed / total) if total else 0.0
        unobserved_nodes = tuple(np.nonzero(~mask.any(axis=0))[0].tolist())
        unobserved_processes = tuple(np.nonzero(~mask.any(axis=1))[0].tolist())
    audit = StatusAudit(
        beta=statuses.beta,
        n_nodes=statuses.n_nodes,
        empty_processes=tuple(np.nonzero(row_sums == 0)[0].tolist()),
        saturated_processes=tuple(
            np.nonzero(row_sums == statuses.n_nodes)[0].tolist()
        ),
        never_infected_nodes=tuple(np.nonzero(column_sums == 0)[0].tolist()),
        always_infected_nodes=tuple(
            np.nonzero(column_sums == statuses.beta)[0].tolist()
        ),
        missing_fraction=missing_fraction,
        unobserved_nodes=unobserved_nodes,
        unobserved_processes=unobserved_processes,
    )
    if audit.is_degenerate and on_degenerate != "ignore":
        message = (
            f"degenerate observations (beta={audit.beta}, n={audit.n_nodes}): "
            + "; ".join(audit.findings())
        )
        if on_degenerate == "strict":
            raise DataError(message)
        warnings.warn(message, DataQualityWarning, stacklevel=2)
    return audit


def _describe_invalid_rows(array: np.ndarray) -> str:
    """Name the first cascade rows whose entries are not 0/1 (NaN included)."""
    valid = np.isin(array, (0, 1))
    bad_rows = np.nonzero(~valid.all(axis=1))[0]
    samples: list[str] = []
    for row in bad_rows[:3].tolist():
        column = int(np.nonzero(~valid[row])[0][0])
        samples.append(f"row {row} column {column} = {array[row, column]!r}")
    suffix = ", ..." if bad_rows.size > 3 else ""
    return (
        f"status matrix entries must be 0 or 1; "
        f"{bad_rows.size} offending cascade row(s): "
        + "; ".join(samples)
        + suffix
    )


class StatusMatrix:
    """Immutable wrapper around a ``(beta, n)`` uint8 array of {0, 1}.

    Parameters
    ----------
    data:
        Array-like of shape ``(beta, n)`` containing only 0/1 values.
    mask:
        Optional boolean array of the same shape; ``True`` marks entries
        that were actually observed.  ``None`` (default) means fully
        observed.  An all-``True`` mask is normalised to ``None`` so that
        equality, hashing, and the estimator fast paths treat "no mask"
        and "nothing missing" identically.

    Examples
    --------
    >>> s = StatusMatrix([[1, 0, 1], [0, 0, 1]])
    >>> s.beta, s.n_nodes
    (2, 3)
    >>> s.infection_counts().tolist()
    [1, 0, 2]
    """

    __slots__ = ("_data", "_mask")

    def __init__(
        self,
        data: Iterable[Sequence[int]] | np.ndarray,
        mask: np.ndarray | None = None,
    ) -> None:
        array = np.asarray(data)
        if array.ndim != 2:
            raise DataError(f"status matrix must be 2-D (beta, n), got shape {array.shape}")
        if array.size and not np.isin(array, (0, 1)).all():
            raise DataError(_describe_invalid_rows(array))
        self._data = np.ascontiguousarray(array, dtype=np.uint8)
        self._data.setflags(write=False)
        self._mask = self._normalise_mask(mask, self._data.shape)

    @staticmethod
    def _normalise_mask(
        mask: np.ndarray | None, shape: tuple[int, int]
    ) -> np.ndarray | None:
        if mask is None:
            return None
        mask_array = np.asarray(mask)
        if mask_array.shape != shape:
            raise DataError(
                f"observation mask shape {mask_array.shape} does not match "
                f"status matrix shape {shape}"
            )
        if mask_array.dtype != np.bool_:
            if mask_array.size and not np.isin(mask_array, (0, 1)).all():
                raise DataError("observation mask entries must be boolean (0/1)")
            mask_array = mask_array.astype(np.bool_)
        if mask_array.all():
            return None  # fully observed == unmasked
        mask_array = np.ascontiguousarray(mask_array)
        mask_array.setflags(write=False)
        return mask_array

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Read-only ``(beta, n)`` uint8 view.

        For masked matrices, unobserved entries hold the stored
        placeholder value (0 for corruption-produced matrices) — consult
        :attr:`mask` before treating them as observations.
        """
        return self._data

    @property
    def mask(self) -> np.ndarray | None:
        """Read-only boolean observation mask (``True`` = observed), or
        ``None`` when every entry was observed."""
        return self._mask

    @property
    def has_missing(self) -> bool:
        """True when an observation mask marks at least one entry missing."""
        return self._mask is not None

    @property
    def beta(self) -> int:
        """Number of observed diffusion processes (rows)."""
        return self._data.shape[0]

    @property
    def n_nodes(self) -> int:
        """Number of nodes (columns)."""
        return self._data.shape[1]

    def column(self, node: int) -> np.ndarray:
        """Status vector of one node across all processes."""
        return self._data[:, node]

    def process(self, index: int) -> np.ndarray:
        """Status vector of all nodes in one process."""
        return self._data[index, :]

    # ------------------------------------------------------------------
    # mask helpers
    # ------------------------------------------------------------------
    def with_mask(self, mask: np.ndarray | None) -> "StatusMatrix":
        """New matrix with the given observation mask over the same data.

        Entries the mask marks unobserved are zeroed in the stored data,
        so no stale placeholder value can leak through ``values``.
        """
        if mask is None:
            return StatusMatrix(self._data)
        normalised = self._normalise_mask(np.asarray(mask), self._data.shape)
        if normalised is None:
            return StatusMatrix(self._data)
        return StatusMatrix(np.where(normalised, self._data, 0), normalised)

    def filled(self, value: int = 0) -> "StatusMatrix":
        """Unmasked copy with unobserved entries replaced by ``value``
        (the explicit, auditable form of the ``zero-fill`` policy)."""
        if value not in (0, 1):
            raise DataError(f"fill value must be 0 or 1, got {value!r}")
        if self._mask is None:
            return self
        return StatusMatrix(np.where(self._mask, self._data, value))

    def observed_counts(self) -> np.ndarray:
        """Per-node count of processes in which the node was observed
        (``beta`` everywhere for unmasked matrices)."""
        if self._mask is None:
            return np.full(self.n_nodes, self.beta, dtype=np.int64)
        return self._mask.sum(axis=0, dtype=np.int64)

    def complete_rows(self, columns: Sequence[int]) -> np.ndarray:
        """Indices of processes in which **every** given column was
        observed — the pairwise/family-complete row set the missing-data
        estimators count over."""
        if self._mask is None:
            return np.arange(self.beta, dtype=np.int64)
        cols = list(columns)
        if not cols:
            return np.arange(self.beta, dtype=np.int64)
        return np.nonzero(self._mask[:, cols].all(axis=1))[0].astype(np.int64)

    # ------------------------------------------------------------------
    # counting helpers (used by scoring and IMI)
    # ------------------------------------------------------------------
    def infection_counts(self) -> np.ndarray:
        """Per-node count of processes in which the node ended infected
        (the paper's ``N₂`` per node; ``N₁ = beta - N₂``).

        Masked matrices count only observed infections (unobserved
        entries are stored as 0)."""
        return self._data.sum(axis=0, dtype=np.int64)

    def infection_rates(self) -> np.ndarray:
        """Per-node empirical infection probability ``P̂(X_i = 1)``."""
        if self.beta == 0:
            raise DataError("cannot compute rates from zero processes")
        return self.infection_counts() / self.beta

    def joint_counts(self) -> dict[str, np.ndarray]:
        """All four pairwise joint counts as ``(n, n)`` int64 matrices.

        Keys ``"11"``, ``"10"``, ``"01"``, ``"00"`` give
        ``count(X_i = a ∧ X_j = b)`` at ``[i, j]``.  Computed with two
        matrix products, which is what makes the IMI stage ``O(β n²)`` with
        a tiny constant.
        """
        ones = self._data.astype(np.int64)
        zeros = 1 - ones
        n11 = ones.T @ ones
        n10 = ones.T @ zeros
        n01 = zeros.T @ ones
        n00 = zeros.T @ zeros
        return {"11": n11, "10": n10, "01": n01, "00": n00}

    def pairwise_complete_counts(self) -> dict[str, np.ndarray]:
        """Joint counts over pairwise-complete processes only.

        Like :meth:`joint_counts`, but each pair ``(i, j)`` is counted
        only over the processes in which **both** statuses were observed;
        the extra key ``"obs"`` holds the per-pair effective process
        count ``β_ij``.  For unmasked matrices this equals
        :meth:`joint_counts` with ``obs ≡ beta``.  Cost is four
        ``(n × β) @ (β × n)`` products — the same ``O(β n²)`` stage.
        """
        if self._mask is None:
            counts = self.joint_counts()
            counts["obs"] = np.full(
                (self.n_nodes, self.n_nodes), self.beta, dtype=np.int64
            )
            return counts
        observed = self._mask.astype(np.int64)
        ones = self._data.astype(np.int64) * observed
        zeros = (1 - self._data.astype(np.int64)) * observed
        return {
            "11": ones.T @ ones,
            "10": ones.T @ zeros,
            "01": zeros.T @ ones,
            "00": zeros.T @ zeros,
            "obs": observed.T @ observed,
        }

    def pattern_counts(self, columns: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
        """Group rows by the joint pattern of ``columns`` (dense variant).

        Returns ``(codes, counts)`` where ``codes`` assigns each process a
        pattern id (the binary number formed by the selected columns) and
        ``counts[c]`` is the number of processes showing pattern ``c``,
        for **every** of the ``2^k`` possible patterns.  This is the
        ``N_ij`` machinery of Eq. (3): patterns with zero count are exactly
        the paper's non-existent combinations ``φ``.

        The dense layout materialises ``2^k`` cells, so it is capped at 20
        columns; the scoring code uses :meth:`observed_pattern_counts`,
        which scales to the bit-packing limit.
        """
        cols = list(columns)
        if len(cols) == 0:
            codes = np.zeros(self.beta, dtype=np.int64)
            return codes, np.array([self.beta], dtype=np.int64)
        if len(cols) > 20:
            raise DataError(
                f"dense pattern_counts materialises 2^{len(cols)} cells; "
                "use observed_pattern_counts for wide column sets"
            )
        weights = (1 << np.arange(len(cols), dtype=np.int64))
        codes = self._data[:, cols].astype(np.int64) @ weights
        counts = np.bincount(codes, minlength=1 << len(cols)).astype(np.int64)
        return codes, counts

    def observed_pattern_counts(
        self, columns: Sequence[int], rows: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Group rows by the joint pattern of ``columns`` (sparse variant).

        Returns ``(pattern_ids, inverse, counts)``: the **observed**
        pattern ids in ascending order, each row's index into them, and
        the per-pattern counts.  Memory is ``O(beta)`` regardless of the
        number of columns, which matters because the Theorem-2 size bound
        is self-satisfying for large parent sets (``φ`` grows like
        ``2^|F|``), so the literal Algorithm-1 search can reach parent
        sets far beyond dense-counting territory.

        ``rows`` restricts the grouping to the given process indices —
        the missing-data scoring path passes the family-complete row set
        (:meth:`complete_rows`) here.
        """
        cols = list(columns)
        if len(cols) > 62:
            raise DataError(f"too many columns for bit-packing: {len(cols)}")
        data = self._data if rows is None else self._data[rows, :]
        n_rows = data.shape[0]
        if len(cols) == 0:
            return (
                np.zeros(1, dtype=np.int64),
                np.zeros(n_rows, dtype=np.int64),
                np.array([n_rows], dtype=np.int64),
            )
        weights = (1 << np.arange(len(cols), dtype=np.int64))
        codes = data[:, cols].astype(np.int64) @ weights
        pattern_ids, inverse, counts = np.unique(
            codes, return_inverse=True, return_counts=True
        )
        if pattern_ids.size == 0:  # zero rows selected
            pattern_ids = np.zeros(1, dtype=np.int64)
            counts = np.zeros(1, dtype=np.int64)
        return (
            pattern_ids.astype(np.int64),
            inverse.astype(np.int64).reshape(-1),
            counts.astype(np.int64),
        )

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def append(self, other: "StatusMatrix") -> "StatusMatrix":
        """New matrix with ``other``'s processes appended after this one's.

        The streaming primitive behind :meth:`repro.core.tends.Tends.partial_fit`:
        row order is preserved (this matrix's processes first), so appending
        batches one at a time reproduces the matrix a one-shot observer
        would have recorded.  Observation masks travel along — a fully
        observed side contributes an all-``True`` block, and the result is
        unmasked only when neither side has missing entries.
        """
        if not isinstance(other, StatusMatrix):
            other = StatusMatrix(other)
        if other.n_nodes != self.n_nodes:
            raise DataError(
                f"cannot append a {other.n_nodes}-node batch to a "
                f"{self.n_nodes}-node status matrix"
            )
        data = np.concatenate([self._data, other._data], axis=0)
        if self._mask is None and other._mask is None:
            return StatusMatrix(data)
        blocks = [
            matrix._mask
            if matrix._mask is not None
            else np.ones(matrix._data.shape, dtype=np.bool_)
            for matrix in (self, other)
        ]
        return StatusMatrix(data, np.concatenate(blocks, axis=0))

    @classmethod
    def concat(cls, matrices: Sequence["StatusMatrix"]) -> "StatusMatrix":
        """Concatenate status matrices along the process axis.

        Equivalent to folding :meth:`append` over ``matrices`` (masks are
        handled the same way) but validated up front; at least one matrix
        is required so the node count is well defined.
        """
        batches = [
            matrix if isinstance(matrix, cls) else cls(matrix)
            for matrix in matrices
        ]
        if not batches:
            raise DataError("concat needs at least one status matrix")
        result = batches[0]
        for batch in batches[1:]:
            result = result.append(batch)
        return result

    def subset(self, processes: Sequence[int] | np.ndarray) -> "StatusMatrix":
        """New matrix containing only the selected process rows (the
        observation mask, when present, travels with them)."""
        index = np.asarray(processes, dtype=np.int64)
        mask = None if self._mask is None else self._mask[index, :]
        return StatusMatrix(self._data[index, :], mask)

    def select_nodes(self, nodes: Sequence[int] | np.ndarray) -> "StatusMatrix":
        """New matrix containing only the selected node columns (in the
        given order) — the partial-observation scenario where some nodes
        are never monitored.  Node ``nodes[i]`` becomes column ``i``."""
        index = np.asarray(nodes, dtype=np.int64)
        if index.size != np.unique(index).size:
            raise DataError("selected nodes must be distinct")
        mask = None if self._mask is None else self._mask[:, index]
        return StatusMatrix(self._data[:, index], mask)

    def with_flip_noise(self, flip_probability: float, *, seed=None) -> "StatusMatrix":
        """Return a copy where each entry is flipped independently with the
        given probability (observation-noise robustness experiments).

        Kept for API compatibility; :func:`repro.robustness.flip_noise`
        is the richer form (asymmetric rates, corruption metadata).
        """
        from repro.utils.rng import as_generator
        from repro.utils.validation import check_probability

        check_probability("flip_probability", flip_probability)
        rng = as_generator(seed)
        flips = rng.random(self._data.shape) < flip_probability
        return StatusMatrix(np.where(flips, 1 - self._data, self._data), self._mask)

    # ------------------------------------------------------------------
    # dunders
    # ------------------------------------------------------------------
    def __getstate__(self) -> tuple[np.ndarray, np.ndarray | None]:
        # Slots classes need explicit pickle support; the array (and the
        # optional mask) is the whole state.  Used by the process
        # execution backend, which ships one StatusMatrix per worker
        # (repro.core.executor).
        return (self._data, self._mask)

    def __setstate__(self, state) -> None:
        if isinstance(state, tuple):
            data, mask = state
        else:  # pre-mask pickles carried the bare array
            data, mask = state, None
        data = np.ascontiguousarray(data, dtype=np.uint8)
        data.setflags(write=False)  # unpickling drops the read-only flag
        if mask is not None:
            mask = np.ascontiguousarray(mask, dtype=np.bool_)
            mask.setflags(write=False)
        object.__setattr__(self, "_data", data)
        object.__setattr__(self, "_mask", mask)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StatusMatrix):
            return NotImplemented
        if self._data.shape != other._data.shape:
            return False
        if not bool((self._data == other._data).all()):
            return False
        if (self._mask is None) != (other._mask is None):
            return False
        if self._mask is None:
            return True
        return bool((self._mask == other._mask).all())

    def __hash__(self) -> int:
        mask_bytes = b"" if self._mask is None else self._mask.tobytes()
        return hash((self._data.shape, self._data.tobytes(), mask_bytes))

    def __repr__(self) -> str:
        if self._mask is None:
            return f"StatusMatrix(beta={self.beta}, n_nodes={self.n_nodes})"
        missing = 1.0 - self._mask.mean()
        return (
            f"StatusMatrix(beta={self.beta}, n_nodes={self.n_nodes}, "
            f"missing={missing:.1%})"
        )
