"""Diffusion process models.

The paper's generator is the discrete-time Independent Cascade (IC) model:
"each infected node tries to infect its uninfected child nodes with a given
propagation probability" (§V-A) — in IC, each infector gets exactly one
attempt per edge, in the round after it becomes infected.

:class:`SusceptibleInfectedModel` is a supported extension in which
infected nodes keep attempting every round until a horizon; it produces
denser infections and is used by the epidemic example and the robustness
benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol

import numpy as np

from repro.exceptions import SimulationError
from repro.graphs.digraph import DiffusionGraph
from repro.utils.validation import check_positive_int

__all__ = [
    "ProcessOutcome",
    "DiffusionModel",
    "IndependentCascadeModel",
    "SusceptibleInfectedModel",
    "LinearThresholdModel",
]

EdgeProbabilities = Mapping[tuple[int, int], float]


@dataclass(frozen=True)
class ProcessOutcome:
    """Everything one diffusion process produced.

    Attributes
    ----------
    times:
        Infection round per infected node; seeds at 0.0.
    infectors:
        The node credited with each non-seed infection — the parent whose
        attempt succeeded (IC/SI) or whose contribution crossed the
        threshold (LT; attribution there is to the final contributor).
        Seeds have no infector.  This ground-truth attribution powers the
        PATH baseline's diffusion-path extraction and white-box tests.
    """

    times: dict[int, float]
    infectors: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for child, parent in self.infectors.items():
            if child not in self.times:
                raise SimulationError(f"infector recorded for uninfected node {child}")
            if parent not in self.times:
                raise SimulationError(f"infector {parent} of {child} is uninfected")


class DiffusionModel(Protocol):
    """Protocol for diffusion process models.

    ``simulate`` turns (graph, edge probabilities, seed set, rng) into a
    :class:`ProcessOutcome`; ``run`` is the times-only convenience wrapper.
    """

    def simulate(
        self,
        graph: DiffusionGraph,
        probabilities: EdgeProbabilities,
        seeds: np.ndarray,
        rng: np.random.Generator,
    ) -> ProcessOutcome:
        ...

    def run(
        self,
        graph: DiffusionGraph,
        probabilities: EdgeProbabilities,
        seeds: np.ndarray,
        rng: np.random.Generator,
    ) -> dict[int, float]:
        ...


class IndependentCascadeModel:
    """Discrete-round Independent Cascade.

    Every node infected in round ``t`` makes a single infection attempt on
    each currently uninfected out-neighbour in round ``t + 1``; the attempt
    succeeds with the edge's propagation probability.  The process ends
    when a round produces no new infections (guaranteed because attempts
    are never repeated).

    Parameters
    ----------
    max_rounds:
        Safety valve; the process cannot run longer than ``n`` rounds
        anyway, so the default is generous.
    """

    def __init__(self, max_rounds: int = 10_000) -> None:
        self.max_rounds = check_positive_int("max_rounds", max_rounds)

    def simulate(
        self,
        graph: DiffusionGraph,
        probabilities: EdgeProbabilities,
        seeds: np.ndarray,
        rng: np.random.Generator,
    ) -> ProcessOutcome:
        times: dict[int, float] = {}
        infectors: dict[int, int] = {}
        frontier: list[int] = []
        for seed in np.asarray(seeds, dtype=np.int64).tolist():
            if seed not in times:
                times[seed] = 0.0
                frontier.append(seed)
        round_index = 0
        while frontier:
            round_index += 1
            if round_index > self.max_rounds:
                raise SimulationError(
                    f"IC process exceeded max_rounds={self.max_rounds}"
                )
            next_frontier: list[int] = []
            for source in frontier:
                for target in graph.successors(source).tolist():
                    if target in times:
                        continue
                    p = probabilities.get((source, target))
                    if p is None:
                        raise SimulationError(
                            f"missing propagation probability for edge ({source}, {target})"
                        )
                    if rng.random() < p:
                        times[target] = float(round_index)
                        infectors[target] = source
                        next_frontier.append(target)
            frontier = next_frontier
        return ProcessOutcome(times=times, infectors=infectors)

    def run(
        self,
        graph: DiffusionGraph,
        probabilities: EdgeProbabilities,
        seeds: np.ndarray,
        rng: np.random.Generator,
    ) -> dict[int, float]:
        """Times-only wrapper around :meth:`simulate`."""
        return self.simulate(graph, probabilities, seeds, rng).times

    def __repr__(self) -> str:
        return f"IndependentCascadeModel(max_rounds={self.max_rounds})"


class SusceptibleInfectedModel:
    """Discrete-round SI process with persistent infection attempts.

    Unlike IC, an infected node re-attempts every uninfected out-neighbour
    each round, so the process only stops at the horizon (or when everyone
    reachable is infected).  With per-round probability ``p`` an edge fires
    within ``h`` rounds with probability ``1 - (1 - p)^h``, so SI runs are
    a denser, more saturated observation regime than IC.

    Parameters
    ----------
    horizon:
        Number of rounds to simulate.
    """

    def __init__(self, horizon: int = 10) -> None:
        self.horizon = check_positive_int("horizon", horizon)

    def simulate(
        self,
        graph: DiffusionGraph,
        probabilities: EdgeProbabilities,
        seeds: np.ndarray,
        rng: np.random.Generator,
    ) -> ProcessOutcome:
        times: dict[int, float] = {}
        infectors: dict[int, int] = {}
        infected: list[int] = []
        for seed in np.asarray(seeds, dtype=np.int64).tolist():
            if seed not in times:
                times[seed] = 0.0
                infected.append(seed)
        for round_index in range(1, self.horizon + 1):
            newly: list[int] = []
            for source in infected:
                for target in graph.successors(source).tolist():
                    if target in times:
                        continue
                    p = probabilities.get((source, target))
                    if p is None:
                        raise SimulationError(
                            f"missing propagation probability for edge ({source}, {target})"
                        )
                    if rng.random() < p:
                        times[target] = float(round_index)
                        infectors[target] = source
                        newly.append(target)
            infected.extend(newly)
            if len(times) == graph.n_nodes:
                break
        return ProcessOutcome(times=times, infectors=infectors)

    def run(
        self,
        graph: DiffusionGraph,
        probabilities: EdgeProbabilities,
        seeds: np.ndarray,
        rng: np.random.Generator,
    ) -> dict[int, float]:
        """Times-only wrapper around :meth:`simulate`."""
        return self.simulate(graph, probabilities, seeds, rng).times

    def __repr__(self) -> str:
        return f"SusceptibleInfectedModel(horizon={self.horizon})"


class LinearThresholdModel:
    """Discrete-round Linear Threshold diffusion (Kempe et al., KDD 2003).

    Each node ``v`` draws a private threshold ``θ_v ~ U(0, 1)`` per
    process; ``v`` becomes infected in the first round where the summed
    influence weight of its infected in-neighbours reaches ``θ_v``.  Edge
    influence weights are the supplied per-edge "probabilities" normalised
    by each node's weighted in-degree (the standard LT construction, which
    guarantees Σ_u w(u, v) ≤ 1).

    This model is *not* the paper's generator — it exists so the
    robustness benches can measure how TENDS (whose scoring assumes only
    that infections are caused by infected parents, not IC semantics)
    behaves under generative-model mismatch.

    Parameters
    ----------
    max_rounds:
        Safety valve; LT terminates within ``n`` rounds on its own.
    """

    def __init__(self, max_rounds: int = 10_000) -> None:
        self.max_rounds = check_positive_int("max_rounds", max_rounds)

    def simulate(
        self,
        graph: DiffusionGraph,
        probabilities: EdgeProbabilities,
        seeds: np.ndarray,
        rng: np.random.Generator,
    ) -> ProcessOutcome:
        n = graph.n_nodes
        # Normalise incoming weights per node so they sum to at most 1.
        weights: dict[tuple[int, int], float] = {}
        for node in range(n):
            parents = graph.predecessors(node).tolist()
            if not parents:
                continue
            raw = []
            for parent in parents:
                p = probabilities.get((parent, node))
                if p is None:
                    raise SimulationError(
                        f"missing influence weight for edge ({parent}, {node})"
                    )
                raw.append(p)
            total = sum(raw)
            scale = 1.0 / total if total > 1.0 else 1.0
            for parent, p in zip(parents, raw):
                weights[(parent, node)] = p * scale

        thresholds = rng.random(n)
        times: dict[int, float] = {}
        infectors: dict[int, int] = {}
        frontier: list[int] = []
        for seed in np.asarray(seeds, dtype=np.int64).tolist():
            if seed not in times:
                times[seed] = 0.0
                frontier.append(seed)
        accumulated = np.zeros(n)
        round_index = 0
        while frontier:
            round_index += 1
            if round_index > self.max_rounds:
                raise SimulationError(
                    f"LT process exceeded max_rounds={self.max_rounds}"
                )
            next_frontier: list[int] = []
            # Add the newly infected nodes' influence to their children...
            touched: dict[int, int] = {}
            for source in frontier:
                for target in graph.successors(source).tolist():
                    if target in times:
                        continue
                    accumulated[target] += weights[(source, target)]
                    touched[target] = source  # last contributor this round
            # ...then fire every child whose threshold is now reached.
            for target, last_contributor in touched.items():
                if target not in times and accumulated[target] >= thresholds[target]:
                    times[target] = float(round_index)
                    infectors[target] = last_contributor
                    next_frontier.append(target)
            frontier = next_frontier
        return ProcessOutcome(times=times, infectors=infectors)

    def run(
        self,
        graph: DiffusionGraph,
        probabilities: EdgeProbabilities,
        seeds: np.ndarray,
        rng: np.random.Generator,
    ) -> dict[int, float]:
        """Times-only wrapper around :meth:`simulate`."""
        return self.simulate(graph, probabilities, seeds, rng).times

    def __repr__(self) -> str:
        return f"LinearThresholdModel(max_rounds={self.max_rounds})"
