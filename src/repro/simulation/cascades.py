"""Cascade observations (timestamped infection sequences).

TENDS itself never looks at timestamps, but the paper's comparison
baselines do: NetRate, MulTree and NetInf consume cascades; LIFT consumes
the seed sets.  The simulator therefore records, for every diffusion
process, each infected node's infection *round* (seeds are round 0).

A :class:`Cascade` stores ``(node, time)`` pairs; a :class:`CascadeSet`
bundles the cascades of all ``β`` processes plus the node count and the
observation horizon, and can project itself down to the status matrix or
the seed sets, guaranteeing every algorithm in a comparison sees views of
the *same* underlying diffusions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import DataError
from repro.simulation.statuses import StatusMatrix

__all__ = ["Cascade", "CascadeSet"]


@dataclass(frozen=True)
class Cascade:
    """One diffusion process: infection times for the infected nodes.

    Attributes
    ----------
    times:
        Mapping from node id to infection time (float rounds; seeds at 0.0).
        Nodes absent from the mapping were never infected.
    infectors:
        Optional ground-truth attribution: for each non-seed infected node,
        the node that caused its infection.  Populated by the simulator;
        absent (``None``) for observations that only carry timestamps.
        Required by the PATH baseline's diffusion-path extraction.
    """

    times: Mapping[int, float]
    infectors: Mapping[int, int] | None = None

    def __post_init__(self) -> None:
        for node, time in self.times.items():
            if time < 0:
                raise DataError(f"negative infection time {time} for node {node}")
        if self.infectors is not None:
            for child, parent in self.infectors.items():
                if child not in self.times or parent not in self.times:
                    raise DataError(
                        f"infector pair ({parent} -> {child}) mentions uninfected nodes"
                    )
                if not self.times[parent] < self.times[child]:
                    raise DataError(
                        f"infector {parent} not infected before its child {child}"
                    )

    def infection_paths(self, length: int) -> list[tuple[int, ...]]:
        """All ground-truth diffusion paths of exactly ``length`` nodes.

        Walks each infected node's infector chain backwards; returns the
        ordered node tuples (earliest infection first).  Requires the
        cascade to carry attribution (:attr:`infectors`).
        """
        if length < 2:
            raise DataError(f"path length must be at least 2, got {length}")
        if self.infectors is None:
            raise DataError("cascade has no infector attribution; paths unavailable")
        paths: list[tuple[int, ...]] = []
        for node in self.times:
            chain = [node]
            current = node
            while len(chain) < length and current in self.infectors:
                current = self.infectors[current]
                chain.append(current)
            if len(chain) == length:
                paths.append(tuple(reversed(chain)))
        return paths

    @property
    def infected(self) -> frozenset[int]:
        """Set of infected node ids."""
        return frozenset(self.times)

    @property
    def seeds(self) -> frozenset[int]:
        """Nodes infected at the earliest time (the initially infected set)."""
        if not self.times:
            return frozenset()
        first = min(self.times.values())
        return frozenset(node for node, t in self.times.items() if t == first)

    def time_of(self, node: int) -> float:
        """Infection time of ``node``; ``math.inf`` if never infected."""
        return self.times.get(node, float("inf"))

    def ordered(self) -> list[tuple[int, float]]:
        """Infections sorted by (time, node id)."""
        return sorted(self.times.items(), key=lambda item: (item[1], item[0]))

    def potential_parents(self, node: int) -> list[int]:
        """Nodes infected strictly before ``node`` (candidate infectors)."""
        own = self.time_of(node)
        if own == float("inf"):
            return []
        return [other for other, t in self.times.items() if t < own]

    def __len__(self) -> int:
        return len(self.times)


class CascadeSet:
    """The cascades of ``β`` diffusion processes over ``n`` nodes.

    Parameters
    ----------
    n_nodes:
        Number of nodes in the underlying network.
    cascades:
        One :class:`Cascade` per observed process.
    horizon:
        Observation window length ``T`` used by survival-likelihood
        baselines; defaults to one round past the latest infection.
    """

    __slots__ = ("_n", "_cascades", "_horizon")

    def __init__(
        self,
        n_nodes: int,
        cascades: Iterable[Cascade],
        *,
        horizon: float | None = None,
    ) -> None:
        self._n = int(n_nodes)
        self._cascades = list(cascades)
        for cascade in self._cascades:
            for node in cascade.times:
                if not 0 <= node < self._n:
                    raise DataError(f"cascade mentions node {node} outside [0, {self._n})")
        if horizon is None:
            latest = max(
                (max(c.times.values()) for c in self._cascades if c.times),
                default=0.0,
            )
            horizon = latest + 1.0
        if self._cascades and horizon < max(
            (max(c.times.values()) for c in self._cascades if c.times), default=0.0
        ):
            raise DataError("horizon earlier than the latest observed infection")
        self._horizon = float(horizon)

    @property
    def n_nodes(self) -> int:
        return self._n

    @property
    def beta(self) -> int:
        """Number of cascades."""
        return len(self._cascades)

    @property
    def horizon(self) -> float:
        """Observation window ``T``."""
        return self._horizon

    def __iter__(self) -> Iterator[Cascade]:
        return iter(self._cascades)

    def __len__(self) -> int:
        return len(self._cascades)

    def __getitem__(self, index: int) -> Cascade:
        return self._cascades[index]

    # ------------------------------------------------------------------
    # projections
    # ------------------------------------------------------------------
    def to_status_matrix(self) -> StatusMatrix:
        """Forget timestamps: the ``β × n`` final-status matrix."""
        data = np.zeros((len(self._cascades), self._n), dtype=np.uint8)
        for row, cascade in enumerate(self._cascades):
            infected = list(cascade.times)
            if infected:
                data[row, infected] = 1
        return StatusMatrix(data)

    def seed_sets(self) -> list[frozenset[int]]:
        """The initially infected node set of each process (LIFT's input)."""
        return [cascade.seeds for cascade in self._cascades]

    def time_matrix(self) -> np.ndarray:
        """``(β, n)`` float matrix of infection times, ``inf`` = uninfected.

        The dense layout the vectorised NetRate solver consumes.
        """
        matrix = np.full((len(self._cascades), self._n), np.inf)
        for row, cascade in enumerate(self._cascades):
            for node, time in cascade.times.items():
                matrix[row, node] = time
        return matrix

    def with_time_noise(self, fraction: float, *, max_shift: int = 2, seed=None) -> "CascadeSet":
        """Corrupt a fraction of (non-seed) infection timestamps.

        Models the paper's §I/§II-A observation that monitored timestamps
        are unreliable (incubation periods, reporting lag): each selected
        infection's time is shifted by a uniform ±``max_shift`` rounds
        (clamped at 0.5 so corrupted nodes never masquerade as seeds).
        Final statuses are untouched, so status-only methods are immune by
        construction while cascade-based methods see scrambled orderings.
        """
        from repro.utils.rng import as_generator
        from repro.utils.validation import check_positive_int, check_probability

        check_probability("fraction", fraction)
        check_positive_int("max_shift", max_shift)
        rng = as_generator(seed)
        noisy: list[Cascade] = []
        for cascade in self._cascades:
            seeds = cascade.seeds
            times: dict[int, float] = {}
            for node, time in cascade.times.items():
                if node not in seeds and rng.random() < fraction:
                    shift = float(rng.integers(-max_shift, max_shift + 1))
                    times[node] = max(0.5, time + shift)
                else:
                    times[node] = time
            noisy.append(Cascade(times))
        latest = max(
            (max(c.times.values()) for c in noisy if c.times), default=0.0
        )
        return CascadeSet(self._n, noisy, horizon=max(self._horizon, latest + 1.0))

    def drop_timestamps_fraction(self, fraction: float, *, seed=None) -> "CascadeSet":
        """Remove a random fraction of (non-seed) infections entirely —
        the missing-observation robustness scenario from §II-A."""
        from repro.utils.rng import as_generator
        from repro.utils.validation import check_probability

        check_probability("fraction", fraction)
        rng = as_generator(seed)
        trimmed: list[Cascade] = []
        for cascade in self._cascades:
            seeds = cascade.seeds
            kept = {
                node: time
                for node, time in cascade.times.items()
                if node in seeds or rng.random() >= fraction
            }
            trimmed.append(Cascade(kept))
        return CascadeSet(self._n, trimmed, horizon=self._horizon)

    def __repr__(self) -> str:
        return f"CascadeSet(beta={self.beta}, n_nodes={self._n}, horizon={self._horizon})"
