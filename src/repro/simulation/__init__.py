"""Diffusion simulation substrate.

Generates the observations every inference algorithm consumes:

* :class:`~repro.simulation.statuses.StatusMatrix` — final infection
  statuses (the only input TENDS needs),
* :class:`~repro.simulation.cascades.CascadeSet` — timestamped infection
  sequences (consumed by the NetRate / MulTree / NetInf baselines),
* seed sets per process (consumed by LIFT).
"""

from repro.simulation.cascades import Cascade, CascadeSet
from repro.simulation.engine import DiffusionSimulator, SimulationResult
from repro.simulation.models import (
    IndependentCascadeModel,
    LinearThresholdModel,
    ProcessOutcome,
    SusceptibleInfectedModel,
)
from repro.simulation.probabilities import (
    constant_probabilities,
    gaussian_probabilities,
    uniform_probabilities,
)
from repro.simulation.seeds import (
    degree_biased_seeds,
    fixed_seeds,
    uniform_random_seeds,
)
from repro.simulation.statuses import StatusMatrix
from repro.simulation import io

__all__ = [
    "io",
    "Cascade",
    "CascadeSet",
    "DiffusionSimulator",
    "SimulationResult",
    "IndependentCascadeModel",
    "LinearThresholdModel",
    "ProcessOutcome",
    "SusceptibleInfectedModel",
    "gaussian_probabilities",
    "constant_probabilities",
    "uniform_probabilities",
    "uniform_random_seeds",
    "degree_biased_seeds",
    "fixed_seeds",
    "StatusMatrix",
]
