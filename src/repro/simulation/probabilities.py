"""Per-edge propagation probabilities.

The paper (§V-A) draws each edge's propagation probability from a Gaussian
with mean ``μ`` "and variance 0.05, to ensure that more than 95 % of all
propagation probabilities are within the range from μ − 0.1 to μ + 0.1".
A Gaussian has 95 % of its mass within ±1.96 standard deviations, so the
stated range implies a *standard deviation* of ≈ 0.05 (variance 0.0025);
we follow the 95 %-range statement, which is the operative constraint, and
use ``sigma = 0.05``.  Draws are clipped away from {0, 1} so that every
edge can both fire and fail.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.digraph import DiffusionGraph
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_fraction, check_non_negative

__all__ = [
    "gaussian_probabilities",
    "constant_probabilities",
    "uniform_probabilities",
    "PROBABILITY_FLOOR",
    "PROBABILITY_CEIL",
]

#: Clipping bounds: probabilities of exactly 0 or 1 would make edges
#: unobservable or deterministic, which the diffusion model excludes.
PROBABILITY_FLOOR = 0.01
PROBABILITY_CEIL = 0.99


def gaussian_probabilities(
    graph: DiffusionGraph,
    mu: float,
    sigma: float = 0.05,
    *,
    seed: RandomState = None,
) -> dict[tuple[int, int], float]:
    """Draw one clipped ``N(mu, sigma²)`` probability per directed edge.

    Returns a dict keyed by ``(source, target)``, the layout the simulator
    consumes.  Deterministic for a fixed seed and graph edge order.
    """
    check_fraction("mu", mu)
    check_non_negative("sigma", sigma)
    rng = as_generator(seed)
    edges = list(graph.edges())
    draws = rng.normal(mu, sigma, size=len(edges))
    clipped = np.clip(draws, PROBABILITY_FLOOR, PROBABILITY_CEIL)
    return {edge: float(p) for edge, p in zip(edges, clipped)}


def constant_probabilities(
    graph: DiffusionGraph, probability: float
) -> dict[tuple[int, int], float]:
    """Assign the same probability to every edge (ablation/testing)."""
    check_fraction("probability", probability)
    return {edge: probability for edge in graph.edges()}


def uniform_probabilities(
    graph: DiffusionGraph,
    low: float,
    high: float,
    *,
    seed: RandomState = None,
) -> dict[tuple[int, int], float]:
    """Draw each edge's probability uniformly from ``[low, high]``."""
    check_fraction("low", low)
    check_fraction("high", high)
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    rng = as_generator(seed)
    edges = list(graph.edges())
    draws = rng.uniform(low, high, size=len(edges))
    return {edge: float(p) for edge, p in zip(edges, draws)}
