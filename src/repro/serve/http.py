"""Minimal stdlib HTTP frontend for :class:`~repro.serve.service.IngestService`.

Endpoints (all JSON):

``POST /ingest``
    Body: ``{"batch": {...}}`` (an :func:`~repro.serve.journal.encode_statuses`
    payload) or ``{"statuses": [[0,1,...], ...]}`` (a raw 0/1 matrix).
    Replies ``202 {"seq": N}`` once the batch is durably journaled.
    ``429`` when backpressure rejects it, ``503`` while draining,
    ``400`` for malformed payloads.
``GET /health``
    Liveness summary; ``200`` while serving or degraded, ``503`` once
    draining/stopped — the shape a load balancer wants.  With
    ``?strict=1`` a ``degraded`` service also answers ``503`` (opt-in
    for probes that should eject a lagging replica).
``GET /stats``
    Full :class:`~repro.serve.service.ServiceStats` snapshot.
``GET /edges``
    Current edge set and per-edge IMI/threshold confidence margins.
``GET /metrics``
    Prometheus exposition text (``text/plain; version=0.0.4``) of the
    service's :class:`~repro.obs.metrics.MetricsRegistry` — scrapeable
    as-is.  ``?format=json`` returns the raw snapshot dict instead.
``GET /debug/trace``
    The flight recorder's retained spans and events (see
    :meth:`~repro.serve.service.IngestService.debug_trace`) — the
    post-incident "what just happened" surface.
``GET /debug/profile?seconds=N&hz=H``
    Run the sampling profiler over the live process for ``N`` seconds
    (default 1, capped at 30) and return the collapsed-stack profile
    (:meth:`~repro.obs.profiler.Profile.to_dict`).

The server is a ``ThreadingHTTPServer``: every reader gets its own
thread, which is exactly the concurrent-reader scenario the service's
copy-on-write model publication exists for.  This is an ops/debug
surface, not an internet-facing one — bind it to localhost.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.exceptions import CheckpointError, ConfigurationError, ServiceError
from repro.obs.export import prometheus_text
from repro.obs.profiler import profile_for
from repro.serve.journal import decode_statuses
from repro.serve.service import IngestService
from repro.simulation.statuses import StatusMatrix
from repro.utils.logging import get_logger

__all__ = ["ServeHandler", "start_http_server"]

_LOGGER = get_logger("serve.http")


class ServeHandler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`IngestService` via the server."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> IngestService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        _LOGGER.debug("%s %s", self.address_string(), format % args)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(
        self, status: int, text: str, content_type: str
    ) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        try:
            if parsed.path == "/health":
                health = self.service.health()
                strict = query.get("strict", ["0"])[-1] not in ("", "0", "false")
                passing = ("serving",) if strict else ("serving", "degraded")
                self._reply(
                    200 if health["status"] in passing else 503, health
                )
            elif parsed.path == "/stats":
                self._reply(200, self.service.stats().as_dict())
            elif parsed.path == "/edges":
                confidence = self.service.edge_confidence()
                self._reply(
                    200,
                    {
                        "edges": sorted(self.service.edges()),
                        "confidence": {
                            f"{parent}->{child}": round(value, 6)
                            for (parent, child), value in sorted(
                                confidence.items()
                            )
                        },
                    },
                )
            elif parsed.path == "/metrics":
                snapshot = self.service.metrics.snapshot()
                if query.get("format", [""])[-1] == "json":
                    self._reply(200, snapshot)
                else:
                    self._reply_text(
                        200,
                        prometheus_text(snapshot),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
            elif parsed.path == "/debug/trace":
                self._reply(200, self.service.debug_trace())
            elif parsed.path == "/debug/profile":
                try:
                    seconds = float(query.get("seconds", ["1"])[-1])
                    hz = float(query.get("hz", ["97"])[-1])
                except ValueError as exc:
                    self._reply(400, {"error": f"bad query parameter: {exc}"})
                    return
                # Bound the sampling window: the request thread blocks for
                # its duration, and this is a debug surface.
                seconds = min(max(seconds, 0.05), 30.0)
                hz = min(max(hz, 1.0), 1000.0)
                try:
                    profile = profile_for(seconds, hz=hz)
                except ConfigurationError as exc:
                    self._reply(409, {"error": str(exc)})
                    return
                self._reply(200, profile.to_dict())
            else:
                self._reply(404, {"error": f"unknown path {parsed.path}"})
        except Exception as exc:  # pragma: no cover - defensive
            _LOGGER.exception("GET %s failed", self.path)
            self._reply(500, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802
        if self.path != "/ingest":
            self._reply(404, {"error": f"unknown path {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            document = json.loads(self.rfile.read(length) or b"{}")
            statuses = _parse_batch(document)
        except (ValueError, TypeError, KeyError, CheckpointError) as exc:
            self._reply(400, {"error": f"malformed ingest body: {exc}"})
            return
        try:
            seq = self.service.submit(statuses)
        except ServiceError as exc:
            message = str(exc)
            draining = "shutting down" in message
            self._reply(503 if draining else 429, {"error": message})
            return
        except Exception as exc:  # pragma: no cover - defensive
            _LOGGER.exception("POST /ingest failed")
            self._reply(500, {"error": str(exc)})
            return
        self._reply(202, {"seq": seq})


def _parse_batch(document: dict) -> StatusMatrix:
    if "batch" in document:
        return decode_statuses(document["batch"])
    if "statuses" in document:
        return StatusMatrix(np.asarray(document["statuses"], dtype=np.uint8))
    raise ValueError("body must carry 'batch' (packed) or 'statuses' (raw)")


def start_http_server(
    service: IngestService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Start the frontend on a daemon thread; returns the (already
    serving) server — read the bound port off ``server.server_address``.
    Call ``server.shutdown()`` to stop it."""
    server = ThreadingHTTPServer((host, port), ServeHandler)
    server.service = service  # type: ignore[attr-defined]
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="serve-http", daemon=True
    )
    thread.start()
    _LOGGER.info("serving HTTP on %s:%d", *server.server_address[:2])
    return server
