"""Crash-safe streaming ingest for the TENDS estimator.

The paper's status-only observation model makes diffusion inference a
natural *streaming* workload: cascades arrive as final-status vectors
(no timestamps to reconcile), and PR 5's cached sufficient statistics
make absorbing them an ``O(Δβ · n²)`` update instead of a refit.  This
package wraps that capability in a long-running service engineered
around failure as the default case:

* :class:`~repro.serve.journal.IngestJournal` — a durable write-ahead
  journal (fsync + per-record CRC32) every accepted batch lands in
  *before* it is queued, so a crash at any instant loses nothing that
  was acknowledged;
* :class:`~repro.serve.policy.BoundedQueue` /
  :class:`~repro.serve.policy.BatchPolicy` — bounded buffering with
  explicit ``block`` / ``reject`` / ``shed`` backpressure and an
  absorb-every-*k*-cascades-or-*t*-seconds debounce;
* :class:`~repro.serve.service.IngestService` — the absorb loop
  (jittered retries, per-batch quarantine on permanent failure, a
  watchdog that restarts a hung loop), copy-on-write model serving to
  concurrent readers, crash-atomic snapshots, graceful SIGTERM/SIGINT
  drain, and health/stats surfaces on the :mod:`repro.obs` registry;
* :mod:`repro.serve.http` — an optional stdlib HTTP frontend
  (``POST /ingest``, ``GET /edges`` / ``/health`` / ``/stats`` /
  ``/metrics``, plus ``/debug/trace`` and ``/debug/profile``);
* :class:`~repro.serve.recorder.FlightRecorder` — a bounded ring of
  the most recent spans and absorb outcomes, always available when an
  incident needs a post-hoc look.

The absorb loop can additionally run the per-pair drift detector
(:mod:`repro.core.drift`) after every absorb and respond per the
``drift=`` policy — log-only, self-healing adaptation, or
snapshot-before-adapt — with detection points deterministic across
crash/replay cycles (see docs/ROBUSTNESS.md, "Drift and
non-stationarity").

Recovery guarantee (held by ``tests/faults/test_serve_crash.py``): kill
the process at any point, reopen the directory, and the replayed model
is **bit-identical** (fingerprint match) to an uninterrupted run over
the same acknowledged batch sequence.  See docs/SERVING.md.
"""

from repro.serve.journal import (
    IngestJournal,
    IngestRecord,
    QuarantineStore,
    decode_statuses,
    encode_statuses,
)
from repro.serve.policy import BACKPRESSURE_POLICIES, BatchPolicy, BoundedQueue
from repro.serve.recorder import FlightRecorder
from repro.serve.service import DRIFT_POLICIES, IngestService, ServiceStats

__all__ = [
    "BACKPRESSURE_POLICIES",
    "DRIFT_POLICIES",
    "BatchPolicy",
    "BoundedQueue",
    "FlightRecorder",
    "IngestJournal",
    "IngestRecord",
    "IngestService",
    "QuarantineStore",
    "ServiceStats",
    "decode_statuses",
    "encode_statuses",
]
