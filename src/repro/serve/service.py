"""The crash-safe streaming ingest service.

:class:`IngestService` owns a service directory::

    <directory>/
        ingest.jsonl        write-ahead journal of acknowledged batches
        quarantine.jsonl    sequences the service gave up on (and why)
        model-<seq>.npz     crash-atomic model snapshots (newest two kept)

and runs three cooperating pieces:

* **submit path** (any producer thread) — journal the batch durably,
  then enqueue it under the backpressure policy.  The WAL write *is* the
  acknowledgement: once :meth:`IngestService.submit` returns a sequence
  number, the batch survives any crash.
* **absorb loop** (daemon thread) — waits for the
  :class:`~repro.serve.policy.BatchPolicy` debounce (k cascades or t
  seconds), takes the pending run of batches, absorbs them through
  ``Tends.partial_fit`` with jittered
  :class:`~repro.core.executor.RetryPolicy` retries, and publishes the
  new copy-on-write :class:`~repro.core.tends.TendsModel` atomically.
  A batch that keeps failing is **quarantined** (with the observation
  audit's findings attached — degenerate data is the usual culprit) and
  the loop moves on: readers keep being served the last good model.
* **watchdog** (daemon thread) — when the absorb loop stops heartbeating
  mid-work for ``hang_timeout`` seconds, the loop is declared hung: its
  generation is retired (a late result from the stuck thread can never
  publish), its in-flight batches are re-queued at the front, and a
  fresh loop resumes from the last good model.

Ordering and bit-identity
-------------------------
Submits are serialised, so journal order == queue order == absorb order.
The final model state is a pure function of the absorbed history (see
docs/INCREMENTAL.md), so however the live run grouped batches — and
however many crash/replay cycles happened — the recovered model's
:meth:`~repro.core.tends.TendsModel.fingerprint` matches an
uninterrupted run over the same acknowledged sequence.  Readers always
see a complete model: publication is a single reference swap under a
lock, never an in-place mutation.
"""

from __future__ import annotations

import signal
import threading
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence, Union

from repro.core.drift import DriftConfig, DriftReport
from repro.core.executor import RetryPolicy
from repro.core.tends import Tends, TendsModel, TendsResult
from repro.exceptions import (
    CheckpointError,
    JournalCorruptionWarning,
    ServiceError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.serve.journal import IngestJournal, IngestRecord, QuarantineStore
from repro.serve.recorder import DEFAULT_CAPACITY, FlightRecorder
from repro.serve.policy import BatchPolicy, BoundedQueue, QueueItem
from repro.simulation.statuses import StatusMatrix, validate_observations
from repro.utils.logging import get_logger

__all__ = ["DRIFT_POLICIES", "IngestService", "ServiceStats", "SNAPSHOT_KEEP"]

PathLike = Union[str, Path]

_LOGGER = get_logger("serve.service")

JOURNAL_NAME = "ingest.jsonl"
QUARANTINE_NAME = "quarantine.jsonl"
SNAPSHOT_PREFIX = "model-"
SNAPSHOT_SUFFIX = ".npz"

#: Snapshots retained on disk: the newest plus one fallback, so a crash
#: mid-save (or a snapshot damaged at rest) always leaves a loadable
#: predecessor whose missing suffix replays from the journal.
SNAPSHOT_KEEP = 2

#: Pre-adaptation model archives written by the ``snapshot-adapt`` drift
#: policy.  Deliberately OUTSIDE the recovery glob (``model-*``): recovery
#: must replay to the post-adapt state deterministically, while these
#: keep the pre-drift model around for forensic diffing / rollback.
PREADAPT_PREFIX = "preadapt-"

#: Drift response policies of the absorb loop (``drift=`` ctor knob):
#: ``off`` (no detector), ``detect`` (log + metrics only), ``adapt``
#: (self-heal via :meth:`~repro.core.tends.Tends.apply_drift_adaptation`),
#: ``snapshot-adapt`` (archive the pre-drift model first, then adapt).
DRIFT_POLICIES = ("off", "detect", "adapt", "snapshot-adapt")

#: Absorb-loop wake granularity while waiting out the debounce window.
_TICK_SECONDS = 0.05


def snapshot_path(directory: Path, seq: int) -> Path:
    return directory / f"{SNAPSHOT_PREFIX}{seq:012d}{SNAPSHOT_SUFFIX}"


def snapshot_seq(path: Path) -> int:
    return int(path.name[len(SNAPSHOT_PREFIX) : -len(SNAPSHOT_SUFFIX)])


@dataclass(frozen=True)
class ServiceStats:
    """One consistent snapshot of the service's counters and gauges."""

    status: str
    absorbed_seq: int
    journal_seq: int
    queue_depth: int
    queue_cascades: int
    submitted_batches: int
    absorbed_batches: int
    absorbed_cascades: int
    quarantined: int
    shed: int
    rejected: int
    retries: int
    watchdog_restarts: int
    snapshots_written: int
    model_beta: int
    model_edges: int
    seconds_since_absorb: float | None
    drift_mode: str = "off"
    drift_checks: int = 0
    drift_detections: int = 0
    drift_adaptations: int = 0
    drift_last_nodes: int = 0
    quarantine_entries: int = 0
    quarantine_evicted: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class IngestService:
    """Long-running, crash-safe cascade ingest around a TENDS model.

    Parameters
    ----------
    directory:
        Service state directory (created if missing).  Reopening a
        directory replays its journal — see :meth:`recovered_batches`.
    model:
        Bootstrap :class:`~repro.core.tends.TendsModel`, required the
        first time a directory is opened; ignored afterwards (the
        snapshot + journal are authoritative).
    batch_policy, queue_capacity, backpressure:
        Debounce and backpressure knobs (see :mod:`repro.serve.policy`).
        ``queue_capacity`` is in pending *cascades*.
    retry:
        :class:`~repro.core.executor.RetryPolicy` for failed absorbs;
        the default retries 3× with seeded-jitter exponential backoff.
    snapshot_every:
        Crash-atomic model snapshot cadence, in absorbed batches (the
        journal bounds replay work between snapshots).
    hang_timeout / watchdog_interval:
        Absorb-loop heartbeat staleness that triggers a watchdog
        restart, and how often the watchdog checks.
    flight_recorder:
        Capacity of the bounded span/event ring behind ``GET
        /debug/trace`` (:class:`~repro.serve.recorder.FlightRecorder`);
        ``None`` or ``0`` disables it.  When no ``tracer`` is supplied
        the recorder doubles as the service tracer, so the most recent
        absorb spans are always inspectable at O(capacity) memory.
    estimator_overrides:
        Execution/observability ``TendsConfig`` overrides for the
        resuming estimator (executor, n_jobs, kernel, ...); algorithm
        fields are refused by :meth:`~repro.core.tends.Tends.from_model`.
    drift, drift_window, drift_config:
        Drift response policy (one of :data:`DRIFT_POLICIES`), the
        recent-window size in processes the detector compares against the
        rest of the history (default: each absorbed batch), and the
        detector's sensitivity knobs
        (:class:`~repro.core.drift.DriftConfig`).  Any active policy
        absorbs record by record — live and during replay — so detection
        and adaptation points are a deterministic function of the
        acknowledged sequence, keeping recovery fingerprint-identical.
    quarantine_limit:
        Retention cap on quarantine verdicts; beyond it the store is
        durably compacted after each snapshot (``None`` disables).  Only
        sequences older than the oldest retained snapshot are evicted.
    degraded_window:
        How long (seconds) after a watchdog restart :meth:`health` keeps
        reporting ``degraded``.
    """

    def __init__(
        self,
        directory: PathLike,
        model: TendsModel | None = None,
        *,
        batch_policy: BatchPolicy | None = None,
        queue_capacity: int = 1024,
        backpressure: str = "block",
        retry: RetryPolicy | None = None,
        snapshot_every: int = 8,
        hang_timeout: float = 30.0,
        watchdog_interval: float = 0.5,
        metrics: MetricsRegistry | None = None,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        flight_recorder: int | None = DEFAULT_CAPACITY,
        estimator_overrides: Mapping | None = None,
        clock: Callable[[], float] = time.monotonic,
        drift: str = "off",
        drift_window: int | None = None,
        drift_config: DriftConfig | None = None,
        quarantine_limit: int | None = 1024,
        degraded_window: float = 600.0,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.batch_policy = batch_policy or BatchPolicy()
        self.retry = retry or RetryPolicy(backoff_seconds=0.05, jitter=0.5)
        if snapshot_every < 1:
            raise ServiceError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        if drift not in DRIFT_POLICIES:
            raise ServiceError(
                f"unknown drift policy {drift!r} "
                f"(choose from {', '.join(DRIFT_POLICIES)})"
            )
        if drift_window is not None and drift_window < 1:
            raise ServiceError(
                f"drift_window must be >= 1, got {drift_window}"
            )
        if quarantine_limit is not None and quarantine_limit < 1:
            raise ServiceError(
                f"quarantine_limit must be >= 1, got {quarantine_limit}"
            )
        self.snapshot_every = snapshot_every
        self.hang_timeout = hang_timeout
        self.watchdog_interval = watchdog_interval
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Flight recorder: a bounded span/event ring for /debug/trace.
        # When the caller supplies no tracer of their own, the recorder
        # doubles as the service tracer so absorb spans land in the ring;
        # a caller-supplied FlightRecorder is reused; any other explicit
        # tracer wins and the recorder keeps only its event ring.
        self.recorder: FlightRecorder | None = None
        if flight_recorder:
            if isinstance(tracer, FlightRecorder):
                self.recorder = tracer
            else:
                self.recorder = FlightRecorder(flight_recorder)
                if isinstance(tracer, NullTracer):
                    tracer = self.recorder
        self.tracer = tracer
        self._clock = clock
        self._overrides = dict(estimator_overrides or {})
        self.drift = drift
        self.drift_window = drift_window
        self.drift_config = drift_config
        self.quarantine_limit = quarantine_limit
        self.degraded_window = degraded_window

        self._queue: BoundedQueue[IngestRecord] = BoundedQueue(
            queue_capacity, backpressure, clock=clock
        )
        self._quarantine_lock = threading.Lock()
        self._quarantine = QuarantineStore(self.directory / QUARANTINE_NAME)
        self._quarantined_seqs = set(
            QuarantineStore.load(self.directory / QUARANTINE_NAME)
        )
        self._quarantine_evicted = 0

        # Drift state — initialised before journal replay, which applies
        # the same drift policy the live loop does (replay determinism).
        self._drift_checks = 0
        self._drift_detections = 0
        self._drift_adaptations = 0
        self._drift_last_report: DriftReport | None = None
        self._last_watchdog_restart_at: float | None = None

        # --- recovery: newest good snapshot + journal replay ----------
        self._model_lock = threading.RLock()
        self._submit_lock = threading.Lock()
        model, absorbed_seq = self._load_latest_snapshot(model)
        self._estimator = Tends.from_model(model, **self._overrides)
        self._model: TendsModel = self._estimator.model
        self._last_result: TendsResult | None = None
        self._absorbed_seq = absorbed_seq
        self._absorbed_batches = 0
        self._recovered = self._replay_journal()

        self._journal = IngestJournal(self.directory / JOURNAL_NAME)

        # --- runtime state --------------------------------------------
        self._generation = 0
        self._inflight: list[QueueItem[IngestRecord]] = []
        self._heartbeat = self._clock()
        self._last_absorb_at: float | None = None
        self._since_snapshot = 0
        self._stopping = False
        self._closed = False
        self._shutdown_requested = threading.Event()
        self._absorb_thread: threading.Thread | None = None
        self._watchdog_thread: threading.Thread | None = None
        self._submitted = 0
        self._quarantined_total = 0
        self._retries_total = 0
        self._watchdog_restarts = 0
        self._snapshots_written = 0

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _snapshot_paths(self) -> list[Path]:
        paths = []
        for path in self.directory.glob(f"{SNAPSHOT_PREFIX}*{SNAPSHOT_SUFFIX}"):
            try:
                snapshot_seq(path)
            except ValueError:
                continue
            paths.append(path)
        return sorted(paths, key=snapshot_seq)

    def _load_latest_snapshot(
        self, bootstrap: TendsModel | None
    ) -> tuple[TendsModel, int]:
        for path in reversed(self._snapshot_paths()):
            try:
                return TendsModel.load(path), snapshot_seq(path)
            except CheckpointError as exc:
                warnings.warn(
                    f"{path}: snapshot unusable, falling back to an older "
                    f"one ({exc})",
                    JournalCorruptionWarning,
                    stacklevel=3,
                )
        if bootstrap is None:
            raise ServiceError(
                f"{self.directory} holds no loadable model snapshot and no "
                "bootstrap model was supplied; fit one and pass it as "
                "IngestService(directory, model=...)"
            )
        # First open: persist the bootstrap before accepting traffic, so
        # a crash during the very first batches still has a base to
        # replay against.
        bootstrap.save(snapshot_path(self.directory, 0))
        return bootstrap, 0

    def _replay_journal(self) -> int:
        """Absorb journaled-but-unsnapshotted batches; returns how many."""
        records = IngestJournal.replay(
            self.directory / JOURNAL_NAME, after_seq=self._absorbed_seq
        )
        replayed = 0
        for record in records:
            if record.seq in self._quarantined_seqs:
                continue
            self._absorb_one(record, during_replay=True)
            replayed += 1
        return replayed

    @property
    def recovered_batches(self) -> int:
        """Batches replayed from the journal when this service opened."""
        return self._recovered

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "IngestService":
        """Start the absorb loop and watchdog; idempotent."""
        if self._closed:
            raise ServiceError("service is closed")
        if self._absorb_thread is None or not self._absorb_thread.is_alive():
            self._spawn_absorb_loop()
        if self._watchdog_thread is None or not self._watchdog_thread.is_alive():
            self._watchdog_thread = threading.Thread(
                target=self._watchdog_loop, name="serve-watchdog", daemon=True
            )
            self._watchdog_thread.start()
        return self

    def _spawn_absorb_loop(self) -> None:
        generation = self._generation
        estimator = self._estimator
        self._absorb_thread = threading.Thread(
            target=self._absorb_loop,
            args=(generation, estimator),
            name=f"serve-absorb-{generation}",
            daemon=True,
        )
        self._heartbeat = self._clock()
        self._absorb_thread.start()

    def __enter__(self) -> "IngestService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def handle_signals(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain-and-snapshot stop
        (main thread only; the handler just sets a flag)."""

        def _request_shutdown(signum, frame):  # pragma: no cover - signal
            _LOGGER.warning(
                "received %s: draining queue and snapshotting",
                signal.Signals(signum).name,
            )
            self._shutdown_requested.set()

        signal.signal(signal.SIGTERM, _request_shutdown)
        signal.signal(signal.SIGINT, _request_shutdown)

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown_requested.is_set()

    def wait_for_shutdown(self, timeout: float | None = None) -> bool:
        return self._shutdown_requested.wait(timeout)

    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service: refuse new submissions, optionally drain the
        queue through the absorb loop, snapshot, and release the journal.

        With ``drain=False`` pending batches stay journaled (not lost —
        the next open replays them); with ``drain=True`` (the default,
        and what the SIGTERM path uses) the absorb loop finishes the
        queue first, so the final snapshot covers every acknowledged
        batch.
        """
        if self._closed:
            return
        self._stopping = True
        if not drain:
            self._generation += 1  # retire the loop without waiting
        self._queue.close()
        thread = self._absorb_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
            if thread.is_alive():
                _LOGGER.warning(
                    "absorb loop did not drain within %.3gs; pending batches "
                    "remain journaled for replay", timeout or 0.0
                )
        self._closed = True
        watchdog = self._watchdog_thread
        if watchdog is not None and watchdog.is_alive():
            watchdog.join(self.watchdog_interval * 4)
        with self._model_lock:
            self._save_snapshot()
        self._journal.close()
        self._quarantine.close()

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # submit path
    # ------------------------------------------------------------------
    def submit(
        self, statuses: StatusMatrix, *, timeout: float | None = None
    ) -> int:
        """Durably accept one batch; returns its journal sequence number.

        The batch is journaled (fsync + CRC) before it is queued, so a
        returned sequence number survives any crash.  Under the
        ``reject`` policy a full queue raises
        :class:`~repro.exceptions.ServiceError` — the batch is journaled
        but durably quarantined as rejected, so replay will not
        resurrect it.  Under ``shed``, accepting this batch may drop the
        oldest pending ones (also durably quarantined).  Under ``block``
        the call waits for space, up to ``timeout`` seconds.
        """
        if self._stopping or self._closed:
            raise ServiceError("service is shutting down; submission refused")
        if not isinstance(statuses, StatusMatrix):
            statuses = StatusMatrix(statuses)
        if statuses.n_nodes != self._model.n_nodes:
            raise ServiceError(
                f"batch covers {statuses.n_nodes} nodes, service model "
                f"covers {self._model.n_nodes}"
            )
        if statuses.beta == 0:
            raise ServiceError("empty batch (beta=0) submitted")
        started = time.perf_counter()
        try:
            with self._submit_lock:
                record = self._journal.append(statuses)
                self._submitted += 1
                self.metrics.inc("serve_submitted_batches_total")
                self.metrics.inc("serve_submitted_cascades_total", statuses.beta)
                try:
                    shed = self._queue.put(
                        record, weight=statuses.beta, timeout=timeout
                    )
                except ServiceError:
                    self._quarantine_record(
                        record, reason="rejected",
                        error="bounded queue full (backpressure policy)",
                    )
                    raise
                for dropped in shed:
                    self._quarantine_record(
                        dropped, reason="shed",
                        error="dropped by shed backpressure under overload",
                    )
        finally:
            # Journal append + enqueue (including any backpressure wait):
            # the latency a producer actually experiences.
            self.metrics.observe(
                "serve_submit_seconds", time.perf_counter() - started
            )
        self._record_event("submit", seq=record.seq, cascades=statuses.beta)
        return record.seq

    def _record_event(self, kind: str, **fields) -> None:
        """Append one discrete outcome to the flight recorder's event
        ring (no-op when the recorder is disabled)."""
        recorder = self.recorder
        if recorder is not None:
            recorder.record(kind, **fields)

    def _quarantine_record(
        self,
        record: IngestRecord,
        *,
        reason: str,
        error: str | None,
        findings: list[str] | None = None,
    ) -> None:
        with self._quarantine_lock:
            self._quarantine.add(
                record.seq, reason=reason, error=error, findings=findings
            )
            self._quarantined_seqs.add(record.seq)
        self._quarantined_total += 1
        self.metrics.inc("serve_quarantined_total", reason=reason)
        self._record_event("quarantine", seq=record.seq, reason=reason)
        _LOGGER.warning(
            "quarantined batch seq=%d (%s): %s", record.seq, reason, error
        )

    # ------------------------------------------------------------------
    # absorb loop
    # ------------------------------------------------------------------
    def _absorb_loop(self, generation: int, estimator: Tends) -> None:
        while True:
            if self._generation != generation:
                return  # retired by the watchdog or a no-drain close
            self._heartbeat = self._clock()
            if not self._queue.wait_for_items(_TICK_SECONDS):
                if self._stopping:
                    return  # drained
                continue
            # Debounce: fire on k pending cascades or the oldest waiting
            # t seconds; when stopping, drain immediately.
            if not self._stopping and not self.batch_policy.ready(
                self._queue.weight, self._queue.oldest_age()
            ):
                budget = self.batch_policy.wait_budget(self._queue.oldest_age())
                time.sleep(min(_TICK_SECONDS, max(budget, 0.001)))
                continue
            items = self._queue.take()
            if not items:
                continue
            self._inflight = items
            try:
                self._absorb_items(items, generation, estimator)
            finally:
                if self._generation == generation:
                    self._inflight = []

    def _absorb_items(
        self,
        items: Sequence[QueueItem[IngestRecord]],
        generation: int,
        estimator: Tends,
    ) -> None:
        records = [item.payload for item in items]
        if self.drift != "off" and len(records) > 1:
            # Active drift policy: absorb record by record so window
            # boundaries — and therefore detection and adaptation points —
            # are a deterministic function of the acknowledged sequence,
            # identical live and on replay, regardless of queue grouping.
            for record in records:
                with self.tracer.span(
                    "serve.absorb", batches=1, cascades=record.statuses.beta
                ):
                    result = self._try_absorb(
                        estimator,
                        record.statuses,
                        token=record.seq,
                        generation=generation,
                    )
                if result is not None:
                    self._publish(estimator, result, [record], generation)
                else:
                    self._quarantine_failed(record, generation)
            return
        batch = (
            records[0].statuses
            if len(records) == 1
            else StatusMatrix.concat([r.statuses for r in records])
        )
        with self.tracer.span(
            "serve.absorb", batches=len(records), cascades=batch.beta
        ):
            result = self._try_absorb(
                estimator, batch, token=records[0].seq, generation=generation
            )
        if result is not None:
            self._publish(estimator, result, records, generation)
            return
        if len(records) == 1:
            self._quarantine_failed(records[0], generation)
            return
        # The group failed permanently; isolate the poison pill by
        # absorbing record by record (copy-on-write means the failed
        # group attempt left the estimator untouched).
        _LOGGER.warning(
            "group of %d batches failed to absorb; retrying batch by batch",
            len(records),
        )
        for record in records:
            with self.tracer.span(
                "serve.absorb", batches=1, cascades=record.statuses.beta
            ):
                result = self._try_absorb(
                    estimator,
                    record.statuses,
                    token=record.seq,
                    generation=generation,
                )
            if result is not None:
                self._publish(estimator, result, [record], generation)
            else:
                self._quarantine_failed(record, generation)

    def _try_absorb(
        self,
        estimator: Tends,
        batch: StatusMatrix,
        *,
        token: int,
        generation: int,
    ) -> TendsResult | None:
        """``partial_fit`` with jittered retries; None = gave up."""
        failures = 0
        while True:
            if self._generation != generation:
                return None  # retired mid-retry
            try:
                self._heartbeat = self._clock()
                started = time.perf_counter()
                result = self._absorb_step(
                    estimator, batch, seq=token, during_replay=False
                )
                self.metrics.observe(
                    "serve_absorb_seconds", time.perf_counter() - started
                )
                return result
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                failures += 1
                self.metrics.inc("serve_absorb_failures_total")
                if failures >= self.retry.max_attempts:
                    _LOGGER.error(
                        "absorb failed permanently after %d attempt(s): %s",
                        failures, exc,
                    )
                    self._last_absorb_error = str(exc)
                    return None
                self._retries_total += 1
                self.metrics.inc("serve_absorb_retries_total")
                delay = self.retry.delay(failures, token=token)
                _LOGGER.warning(
                    "absorb attempt %d/%d failed: %s; retrying after %.3gs",
                    failures, self.retry.max_attempts, exc, delay,
                )
                self._heartbeat = self._clock()
                time.sleep(delay)

    _last_absorb_error: str | None = None

    def _absorb_step(
        self,
        estimator: Tends,
        batch: StatusMatrix,
        *,
        seq: int,
        during_replay: bool,
    ) -> TendsResult:
        """One ``partial_fit`` under the configured drift policy.

        ``drift="off"`` is byte-for-byte the plain incremental absorb.
        Otherwise the batch is absorbed with detection on, and a drift
        verdict is routed through :meth:`_handle_drift` — identically
        during live absorbs and startup replay, so the recovered model is
        fingerprint-identical to the uninterrupted run.
        """
        if self.drift == "off":
            return estimator.partial_fit(batch)
        result = estimator.partial_fit(
            batch,
            drift="detect",
            drift_window=self.drift_window,
            drift_config=self.drift_config,
        )
        return self._handle_drift(
            estimator, result, seq=seq, during_replay=during_replay
        )

    def _handle_drift(
        self,
        estimator: Tends,
        result: TendsResult,
        *,
        seq: int,
        during_replay: bool,
    ) -> TendsResult:
        """Apply the drift response policy to one absorb's verdict."""
        report = result.drift
        self._drift_checks += 1
        self.metrics.inc("serve_drift_checks_total")
        if report is None or not report.drifted:
            return result
        self._drift_detections += 1
        self._drift_last_report = report
        self.metrics.inc("serve_drift_detected_total")
        self.metrics.inc("serve_drift_pairs_flagged_total", report.n_flagged)
        self.metrics.set_gauge(
            "serve_drift_nodes_affected", float(len(report.affected_nodes))
        )
        _LOGGER.warning("seq=%d: %s", seq, report.summary())
        if self.drift == "detect":
            return result
        with self.tracer.span(
            "serve.drift",
            policy=self.drift,
            pairs=report.n_flagged,
            nodes=len(report.affected_nodes),
        ):
            if self.drift == "snapshot-adapt" and not during_replay:
                # Archive the pre-drift model for forensics/rollback —
                # outside the recovery glob, so replay still converges on
                # the post-adapt state (see PREADAPT_PREFIX).
                self._save_preadapt_snapshot(estimator.model, seq)
            try:
                adapted = estimator.apply_drift_adaptation(report)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                # Degrade to detect-only: the un-adapted model is still a
                # valid (if stale-biased) estimate, and raising here would
                # re-absorb the already-installed batch on retry.
                self.metrics.inc("serve_drift_adapt_failures_total")
                _LOGGER.error(
                    "drift adaptation failed; serving un-adapted model: %s",
                    exc,
                )
                return result
        self._drift_adaptations += 1
        self.metrics.inc("serve_drift_adaptations_total")
        _LOGGER.warning(
            "seq=%d: drift adaptation applied — rebased onto newest %d "
            "process(es), re-searched %d node(s)",
            seq, report.recent_beta, len(report.affected_nodes),
        )
        return adapted

    def _save_preadapt_snapshot(self, model: TendsModel, seq: int) -> Path:
        path = self.directory / f"{PREADAPT_PREFIX}{seq:012d}{SNAPSHOT_SUFFIX}"
        model.save(path)
        self.metrics.inc("serve_preadapt_snapshots_total")
        stale = sorted(
            self.directory.glob(f"{PREADAPT_PREFIX}*{SNAPSHOT_SUFFIX}")
        )[:-SNAPSHOT_KEEP]
        for old in stale:
            old.unlink(missing_ok=True)
        return path

    def _quarantine_failed(self, record: IngestRecord, generation: int) -> None:
        if self._generation != generation:
            return
        try:
            audit = validate_observations(
                record.statuses, on_degenerate="ignore"
            )
            findings = audit.findings()
        except Exception:  # pragma: no cover - audit must never mask
            findings = []
        self._quarantine_record(
            record,
            reason="absorb-failed",
            error=self._last_absorb_error,
            findings=findings,
        )

    def _publish(
        self,
        estimator: Tends,
        result: TendsResult,
        records: Sequence[IngestRecord],
        generation: int,
    ) -> None:
        """Atomically install the new model for readers and advance the
        absorbed watermark — only if this loop generation is still
        current (a hung loop's late result must not clobber its
        replacement's)."""
        with self._model_lock:
            if self._generation != generation:
                _LOGGER.warning(
                    "discarding absorb result from retired loop generation %d",
                    generation,
                )
                return
            self._model = estimator.model
            self._last_result = result
            self._absorbed_seq = max(self._absorbed_seq, records[-1].seq)
            self._absorbed_batches += len(records)
            self._last_absorb_at = self._clock()
            self._since_snapshot += len(records)
            self.metrics.inc("serve_absorbed_batches_total", len(records))
            self.metrics.inc(
                "serve_absorbed_cascades_total",
                sum(r.statuses.beta for r in records),
            )
            self.metrics.set_gauge("serve_model_beta", float(self._model.beta))
            self.metrics.set_gauge(
                "serve_model_edges", float(sum(map(len, self._model.parent_sets)))
            )
            self._record_event(
                "publish",
                seq=self._absorbed_seq,
                batches=len(records),
                model_beta=self._model.beta,
            )
            if self._since_snapshot >= self.snapshot_every:
                self._save_snapshot()

    def _absorb_one(self, record: IngestRecord, *, during_replay: bool) -> None:
        """Synchronous absorb used by startup replay (no queue, no
        retries — a replay failure quarantines immediately, matching
        what the live loop would eventually have done)."""
        try:
            result = self._absorb_step(
                self._estimator,
                record.statuses,
                seq=record.seq,
                during_replay=during_replay,
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            self._last_absorb_error = str(exc)
            self._quarantine_failed(record, self._generation)
            return
        with self._model_lock:
            self._model = self._estimator.model
            self._last_result = result
            self._absorbed_seq = max(self._absorbed_seq, record.seq)
            self._absorbed_batches += 1
            if during_replay:
                self.metrics.inc("serve_replayed_batches_total")

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def _save_snapshot(self) -> Path:
        """Crash-atomic snapshot named by the absorbed watermark; prunes
        all but the newest :data:`SNAPSHOT_KEEP`.  Caller holds the
        model lock."""
        path = snapshot_path(self.directory, self._absorbed_seq)
        self._model.save(path)
        self._since_snapshot = 0
        self._snapshots_written += 1
        self.metrics.inc("serve_snapshots_total")
        for stale in self._snapshot_paths()[:-SNAPSHOT_KEEP]:
            stale.unlink(missing_ok=True)
        self._compact_quarantine()
        return path

    def _compact_quarantine(self) -> None:
        """Bound the quarantine store after a snapshot.  Eviction only
        touches sequences at or below the *oldest* retained snapshot's
        watermark: recovery may fall back to that snapshot and must still
        find the verdict for every sequence it would replay past."""
        if self.quarantine_limit is None:
            return
        snapshots = self._snapshot_paths()
        protect_after = snapshot_seq(snapshots[0]) if snapshots else 0
        with self._quarantine_lock:
            evicted = self._quarantine.compact(
                self.quarantine_limit, protect_after_seq=protect_after
            )
            self._quarantined_seqs.difference_update(evicted)
        if evicted:
            self._quarantine_evicted += len(evicted)
            self.metrics.inc("serve_quarantine_evicted", len(evicted))
            _LOGGER.info(
                "compacted quarantine: evicted %d verdict(s) at or below "
                "snapshot watermark %d", len(evicted), protect_after,
            )

    def snapshot_now(self) -> Path:
        """Force a snapshot of the current model (ops escape hatch)."""
        with self._model_lock:
            return self._save_snapshot()

    # ------------------------------------------------------------------
    # watchdog
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        while not self._closed:
            time.sleep(self.watchdog_interval)
            if self._stopping and not self._inflight:
                continue
            thread = self._absorb_thread
            if thread is None:
                continue
            busy = bool(self._inflight) or len(self._queue) > 0
            stale = self._clock() - self._heartbeat
            if not thread.is_alive() and not self._stopping:
                _LOGGER.error("absorb loop died; restarting")
                self._restart_absorb_loop()
            elif busy and stale > self.hang_timeout:
                _LOGGER.error(
                    "absorb loop hung (no heartbeat for %.3gs > %.3gs); "
                    "restarting from the last good model",
                    stale, self.hang_timeout,
                )
                self._restart_absorb_loop()

    def _restart_absorb_loop(self) -> None:
        with self._model_lock:
            self._generation += 1
            self._watchdog_restarts += 1
            self._last_watchdog_restart_at = self._clock()
            self.metrics.inc("serve_watchdog_restarts_total")
            # Re-deliver whatever the retired loop had taken but not
            # published; the journal still holds every byte, so worst
            # case these absorb twice-attempted but publish once.
            pending, self._inflight = self._inflight, []
            self._queue.requeue_front(pending)
            self._estimator = Tends.from_model(self._model, **self._overrides)
        self._spawn_absorb_loop()

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    @property
    def model(self) -> TendsModel:
        """The last good model (never partially updated — publication is
        a reference swap)."""
        with self._model_lock:
            return self._model

    @property
    def last_result(self) -> TendsResult | None:
        with self._model_lock:
            return self._last_result

    def edges(self) -> list[tuple[int, int]]:
        """Current inferred edge set as (parent, child) pairs."""
        model = self.model
        return [
            (parent, child)
            for child, parents in enumerate(model.parent_sets)
            for parent in parents
        ]

    def edge_confidence(self) -> dict[tuple[int, int], float]:
        """Per-edge IMI-to-threshold margin (``>= 1`` ⇒ the pair cleared
        the pruning threshold).  This is the streaming-updatable
        confidence surface; bootstrap-resampled confidence needs a full
        :meth:`~repro.core.tends.Tends.fit` (docs/SERVING.md §5)."""
        model = self.model
        mi = model.stats.mi_matrix(model.config.mi_kind)
        tau = model.threshold if model.threshold > 0 else 1.0
        return {
            (parent, child): float(mi[parent, child] / tau)
            for child, parents in enumerate(model.parent_sets)
            for parent in parents
        }

    def health(self) -> dict:
        """Liveness summary: ``status`` is ``serving`` (all good),
        ``degraded`` (the quarantine store is non-empty, or a watchdog
        restart happened within the last ``degraded_window`` seconds —
        the last good model is still served), ``draining`` or
        ``stopped``.  Includes the last-absorb age and the drift
        detector's state so probes need no second endpoint."""
        stats = self.stats()
        return {
            "status": stats.status,
            "absorbed_seq": stats.absorbed_seq,
            "journal_seq": stats.journal_seq,
            "queue_depth": stats.queue_depth,
            "quarantined": stats.quarantined,
            "quarantine_entries": stats.quarantine_entries,
            "watchdog_restarts": stats.watchdog_restarts,
            "model_beta": stats.model_beta,
            "model_edges": stats.model_edges,
            "last_absorb_age_seconds": stats.seconds_since_absorb,
            "drift": {
                "mode": stats.drift_mode,
                "checks": stats.drift_checks,
                "detections": stats.drift_detections,
                "adaptations": stats.drift_adaptations,
                "last_nodes_affected": stats.drift_last_nodes,
            },
        }

    def debug_trace(self) -> dict:
        """The ``GET /debug/trace`` payload: the flight recorder's
        retained spans and events plus the service status, or an empty
        shell (``enabled: false``) when the recorder is disabled."""
        if self.recorder is None:
            payload: dict = {
                "enabled": False,
                "capacity": 0,
                "spans": [],
                "events": [],
            }
        else:
            payload = {"enabled": True, **self.recorder.snapshot()}
        stats = self.stats()
        payload["status"] = stats.status
        payload["absorbed_seq"] = stats.absorbed_seq
        return payload

    def _degraded(self) -> bool:
        """Honest degradation: quarantined work is sitting in the store,
        or the watchdog had to restart the absorb loop recently (within
        ``degraded_window`` seconds) — either way the served model may
        lag the acknowledged sequence."""
        if len(self._quarantine) > 0:
            return True
        restarted = self._last_watchdog_restart_at
        return (
            restarted is not None
            and self._clock() - restarted <= self.degraded_window
        )

    def stats(self) -> ServiceStats:
        with self._model_lock:
            if self._closed:
                status = "stopped"
            elif self._stopping:
                status = "draining"
            elif self._degraded():
                status = "degraded"
            else:
                status = "serving"
            last = self._last_absorb_at
            report = self._drift_last_report
            return ServiceStats(
                status=status,
                absorbed_seq=self._absorbed_seq,
                journal_seq=self._journal.next_seq - 1,
                queue_depth=len(self._queue),
                queue_cascades=self._queue.weight,
                submitted_batches=self._submitted,
                absorbed_batches=self._absorbed_batches,
                absorbed_cascades=self._model.beta,
                quarantined=self._quarantined_total,
                shed=self._queue.shed_total,
                rejected=self._queue.rejected_total,
                retries=self._retries_total,
                watchdog_restarts=self._watchdog_restarts,
                snapshots_written=self._snapshots_written,
                model_beta=self._model.beta,
                model_edges=sum(map(len, self._model.parent_sets)),
                seconds_since_absorb=(
                    None if last is None else self._clock() - last
                ),
                drift_mode=self.drift,
                drift_checks=self._drift_checks,
                drift_detections=self._drift_detections,
                drift_adaptations=self._drift_adaptations,
                drift_last_nodes=(
                    0 if report is None else len(report.affected_nodes)
                ),
                quarantine_entries=len(self._quarantine),
                quarantine_evicted=self._quarantine_evicted,
            )

    @property
    def last_drift_report(self) -> DriftReport | None:
        """The most recent drifted verdict the absorb loop saw (``None``
        until one flags)."""
        with self._model_lock:
            return self._drift_last_report
