"""The serve flight recorder: a bounded ring of recent spans and events.

A long-running :class:`~repro.serve.service.IngestService` cannot keep
an unbounded span list (the fit tracer's model), so the recorder is a
:class:`~repro.obs.trace.Tracer` whose span store is a ``deque`` with a
fixed capacity — old spans fall off the back as new ones land — plus a
second bounded ring of discrete *events* (absorb outcomes, publishes,
quarantines) stamped with wall-clock time.

``GET /debug/trace`` serves :meth:`FlightRecorder.snapshot`; the data is
always there when an incident happens, at O(capacity) memory forever.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Iterator

from repro.exceptions import ConfigurationError
from repro.obs.trace import Span, Tracer

__all__ = ["FlightRecorder", "DEFAULT_CAPACITY"]

#: Default ring capacity (spans and events each).
DEFAULT_CAPACITY = 256


class FlightRecorder(Tracer):
    """A tracer that keeps only the newest ``capacity`` spans.

    Inherits the whole tracing contract (nested :meth:`span`, worker
    :meth:`adopt`, thread-safety); only the storage is bounded.

    >>> recorder = FlightRecorder(capacity=2)
    >>> for k in range(3):
    ...     with recorder.span("step", k=k):
    ...         pass
    >>> [s.attrs["k"] for s in recorder.finished()]
    [1, 2]
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"flight recorder capacity must be >= 1, got {capacity}"
            )
        super().__init__()
        self.capacity = capacity
        # Every Tracer method touches _spans only via append/extend and
        # tuple(), all of which a bounded deque supports.
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._events: deque[dict] = deque(maxlen=capacity)

    # ------------------------------------------------------------------
    def record(self, kind: str, **fields) -> dict:
        """Append one discrete event (absorb outcome, publish, ...) to
        the event ring and return it."""
        event = {"kind": kind, "unix_time": time.time(), **fields}
        with self._lock:
            self._events.append(event)
        return event

    def events(self) -> tuple[dict, ...]:
        """The retained events, oldest first."""
        with self._lock:
            return tuple(dict(event) for event in self._events)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The ``GET /debug/trace`` payload: retained spans (exported
        dicts, oldest first), retained events, and ring metadata."""
        with self._lock:
            spans = [span.to_dict() for span in self._spans]
            events = [dict(event) for event in self._events]
        return {
            "capacity": self.capacity,
            "epoch_offset": self.epoch_offset,
            "spans": spans,
            "events": events,
        }

    def __iter__(self) -> Iterator[Span]:
        return iter(self.finished())
