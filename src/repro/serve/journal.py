"""The ingest write-ahead journal and the quarantine store.

Every batch the service acknowledges is appended here — fsynced, CRC32-
stamped, sequence-numbered — *before* it enters the absorb queue, so the
journal is the source of truth for what the service has promised to
absorb.  Restart recovery is a pure replay: load the newest good model
snapshot, then re-absorb every journaled batch with ``seq`` greater than
the snapshot's, skipping sequences the quarantine store recorded as
rejected or shed.  Because ``partial_fit`` is bit-identical to a refit
on the concatenated history (docs/INCREMENTAL.md), the replayed model is
bit-identical to the uninterrupted one regardless of how the live run
grouped batches.

Journal damage follows the :mod:`repro.evaluation.checkpoint` contract:
a torn final line is the partial-write signature of a crash and is
dropped silently; damage anywhere else (bit flips caught by CRC,
malformed payloads, duplicated sequence numbers) is skipped with a
:class:`~repro.exceptions.JournalCorruptionWarning` and the surviving
records still replay deterministically.

Status payloads travel as base64-encoded ``np.packbits`` words plus an
explicit shape, which keeps journal lines ~8× smaller than digit lists
and round-trips the matrix (and its observation mask) bit-exactly.
"""

from __future__ import annotations

import base64
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Union

import numpy as np

from repro.evaluation.checkpoint import DurableJsonlWriter, scan_journal
from repro.exceptions import CheckpointError, JournalCorruptionWarning
from repro.simulation.statuses import StatusMatrix

__all__ = [
    "BATCH_FORMAT",
    "QUARANTINE_FORMAT",
    "IngestJournal",
    "IngestRecord",
    "QuarantineStore",
    "decode_statuses",
    "encode_statuses",
]

PathLike = Union[str, Path]

BATCH_FORMAT = "repro.ingest_batch"
QUARANTINE_FORMAT = "repro.ingest_quarantine"


# ----------------------------------------------------------------------
# status payload codec
# ----------------------------------------------------------------------

def _encode_bits(array: np.ndarray) -> str:
    return base64.b64encode(np.packbits(array, axis=None).tobytes()).decode("ascii")


def _decode_bits(payload: str, shape: tuple[int, int], dtype) -> np.ndarray:
    raw = np.frombuffer(base64.b64decode(payload.encode("ascii")), dtype=np.uint8)
    count = int(shape[0]) * int(shape[1])
    bits = np.unpackbits(raw, count=count)
    return bits.reshape(shape).astype(dtype)


def encode_statuses(statuses: StatusMatrix) -> dict:
    """JSON-safe payload for one status matrix (values + optional mask)."""
    payload = {
        "shape": [statuses.beta, statuses.n_nodes],
        "bits": _encode_bits(statuses.values),
    }
    if statuses.mask is not None:
        payload["mask_bits"] = _encode_bits(statuses.mask)
    return payload


def decode_statuses(payload: Mapping) -> StatusMatrix:
    """Inverse of :func:`encode_statuses`; raises
    :class:`~repro.exceptions.CheckpointError` on malformed payloads."""
    try:
        beta, n_nodes = (int(v) for v in payload["shape"])
        values = _decode_bits(payload["bits"], (beta, n_nodes), np.uint8)
        mask = None
        if "mask_bits" in payload:
            mask = _decode_bits(payload["mask_bits"], (beta, n_nodes), np.bool_)
        return StatusMatrix(values, mask)
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed status payload: {exc}") from exc


# ----------------------------------------------------------------------
# write-ahead journal
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class IngestRecord:
    """One replayable journal entry: a batch and its sequence number."""

    seq: int
    statuses: StatusMatrix

    def to_json(self) -> dict:
        return {
            "format": BATCH_FORMAT,
            "seq": self.seq,
            "batch": encode_statuses(self.statuses),
        }

    @classmethod
    def from_json(cls, document: Mapping) -> "IngestRecord":
        if document.get("format") != BATCH_FORMAT:
            raise CheckpointError(
                f"not an ingest record: format={document.get('format')!r}"
            )
        try:
            seq = int(document["seq"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed ingest record: {exc}") from exc
        return cls(seq=seq, statuses=decode_statuses(document["batch"]))


class IngestJournal:
    """Durable, append-only WAL of acknowledged cascade batches.

    :meth:`append` assigns the next sequence number, writes the record
    through :class:`~repro.evaluation.checkpoint.DurableJsonlWriter`
    (fsync + CRC), and only then returns — the acknowledgement *is* the
    durability guarantee.  Usable as a context manager.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._writer = DurableJsonlWriter(path)
        self._next_seq = self._scan_next_seq()

    def _scan_next_seq(self) -> int:
        highest = 0
        for record, _damage in _iter_records(self.path, warn=False):
            if record is not None:
                highest = max(highest, record.seq)
        return highest + 1

    @property
    def next_seq(self) -> int:
        """Sequence number the next :meth:`append` will assign."""
        return self._next_seq

    def append(self, statuses: StatusMatrix) -> IngestRecord:
        """Durably journal one batch; returns the record (with its seq)."""
        record = IngestRecord(seq=self._next_seq, statuses=statuses)
        self._writer.append(record.to_json())
        self._next_seq += 1
        return record

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "IngestJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def replay(path: PathLike, *, after_seq: int = 0) -> list[IngestRecord]:
        """Load every replayable record with ``seq > after_seq``, in
        sequence order.

        Damaged lines are skipped per the module contract (torn tail
        silently, anything else with a
        :class:`~repro.exceptions.JournalCorruptionWarning`); a sequence
        number journaled twice keeps its first occurrence and warns.
        """
        records: dict[int, IngestRecord] = {}
        for record, _damage in _iter_records(Path(path), warn=True):
            if record is None:
                continue
            if record.seq in records:
                warnings.warn(
                    f"{path}: duplicate ingest record for seq {record.seq} "
                    "skipped (crash between fsync and acknowledgement)",
                    JournalCorruptionWarning,
                    stacklevel=2,
                )
                continue
            records[record.seq] = record
        return [records[seq] for seq in sorted(records) if seq > after_seq]


def _iter_records(
    path: Path, *, warn: bool
) -> Iterable[tuple[IngestRecord | None, str | None]]:
    """Yield ``(record, damage)`` per journal line; exactly one is None."""
    for line in scan_journal(path):
        if not line.ok:
            if not line.torn and warn:
                warnings.warn(
                    f"{path}: line {line.number}: corrupt ingest record "
                    f"skipped ({line.error})",
                    JournalCorruptionWarning,
                    stacklevel=3,
                )
            yield None, line.error
            continue
        try:
            yield IngestRecord.from_json(line.document), None
        except CheckpointError as exc:
            if warn:
                warnings.warn(
                    f"{path}: line {line.number}: corrupt ingest record "
                    f"skipped ({exc})",
                    JournalCorruptionWarning,
                    stacklevel=3,
                )
            yield None, str(exc)


# ----------------------------------------------------------------------
# quarantine store
# ----------------------------------------------------------------------

def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of the directory entry, so an ``os.replace``
    rename itself is durable (not just the file contents)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without directory open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on directories
        pass
    finally:
        os.close(fd)


class QuarantineStore:
    """Durable record of batches the service gave up on.

    Two kinds of entry share the file: batches whose absorb failed
    permanently (``reason="absorb-failed"``, carrying the exception and
    the ``audit="strict"``-style data-quality findings that usually
    explain it) and batches dropped by the ``shed`` backpressure policy
    (``reason="shed"``).  Replay skips every quarantined sequence, so a
    poisoned batch cannot wedge recovery in a crash loop — the journal
    keeps the bytes for forensics, the quarantine store keeps the
    verdict.

    On a poisoned or overloaded feed the file would otherwise grow one
    line per rejected batch forever; :meth:`compact` bounds it to the
    newest ``max_entries`` verdicts with the same durable
    temp + fsync + replace dance the model snapshots use.  Eviction is
    only safe for sequences recovery can no longer replay — pass the
    oldest retained snapshot's watermark as ``protect_after_seq`` so a
    verdict is never dropped while some snapshot still needs it to skip
    the batch.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._writer = DurableJsonlWriter(path)
        self._entries: dict[int, dict] = (
            self.load(self.path) if self.path.exists() else {}
        )

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> dict[int, dict]:
        """Live ``{seq: entry}`` view (loaded verdicts + this process's)."""
        return dict(self._entries)

    def add(
        self,
        seq: int,
        *,
        reason: str,
        error: str | None = None,
        findings: list[str] | None = None,
    ) -> None:
        entry = {
            "format": QUARANTINE_FORMAT,
            "seq": int(seq),
            "reason": reason,
            "error": error,
            "findings": findings or [],
        }
        self._writer.append(entry)
        self._entries[int(seq)] = entry

    def compact(
        self, max_entries: int, *, protect_after_seq: int | None = None
    ) -> list[int]:
        """Evict the oldest verdicts beyond ``max_entries``; returns the
        evicted sequence numbers (possibly empty).

        Entries with ``seq > protect_after_seq`` are never evicted even
        over the cap: recovery replays the journal from the oldest
        retained snapshot, and dropping a verdict it still consults
        would resurrect the very batch the service gave up on.  The
        rewrite is crash-atomic — the new file is written to a
        temporary sibling, fsynced, and ``os.replace``d over the old
        one; a crash at any point leaves either the full old file or
        the full new file.
        """
        if max_entries < 1:
            raise CheckpointError(
                f"quarantine max_entries must be >= 1, got {max_entries}"
            )
        if len(self._entries) <= max_entries:
            return []
        evictable = sorted(
            seq
            for seq in self._entries
            if protect_after_seq is None or seq <= protect_after_seq
        )
        excess = len(self._entries) - max_entries
        evicted = evictable[:excess]
        if not evicted:
            return []
        for seq in evicted:
            del self._entries[seq]
        # Rewrite through a temp sibling so the store is never torn.
        self._writer.close()
        tmp_path = self.path.with_name(self.path.name + ".compact.tmp")
        with DurableJsonlWriter(tmp_path) as writer:
            for seq in sorted(self._entries):
                entry = dict(self._entries[seq])
                entry.pop("crc", None)
                writer.append(entry)
        os.replace(tmp_path, self.path)
        _fsync_directory(self.path.parent)
        self._writer = DurableJsonlWriter(self.path)
        return evicted

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "QuarantineStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def load(path: PathLike) -> dict[int, dict]:
        """``{seq: entry}`` of every quarantined sequence (damaged lines
        skipped per the journal contract; last verdict wins)."""
        entries: dict[int, dict] = {}
        for line in scan_journal(Path(path)):
            if not line.ok:
                if not line.torn:
                    warnings.warn(
                        f"{path}: line {line.number}: corrupt quarantine "
                        f"record skipped ({line.error})",
                        JournalCorruptionWarning,
                        stacklevel=2,
                    )
                continue
            document = line.document
            if document.get("format") != QUARANTINE_FORMAT:
                continue
            try:
                entries[int(document["seq"])] = dict(document)
            except (KeyError, TypeError, ValueError):
                continue
        return entries
