"""Batching/debounce and backpressure policy for the ingest service.

Two small, independently-testable pieces:

* :class:`BatchPolicy` — *when* to absorb: as soon as ``max_cascades``
  are pending, or once the oldest pending batch has waited
  ``max_delay_seconds`` (whichever fires first).  The absorb loop wakes
  on either condition; neither requires a busy poll.
* :class:`BoundedQueue` — *what happens when the producer outruns the
  absorber*.  The queue is bounded by pending **cascades** (not batch
  count — batches vary wildly in size) and enforces one of three
  explicit policies at the full mark:

  ``block``
      The submitting thread waits for space (optionally up to a
      timeout).  Lossless; pushes the backpressure into the producer.
  ``reject``
      ``put`` raises :class:`~repro.exceptions.ServiceError`
      immediately.  The producer owns the retry; nothing is journaled.
  ``shed``
      The *oldest* pending batches are dropped to make room for the
      newest.  Lossy by design — the service stays live and current
      under overload; shed batches are reported to the caller so they
      can be quarantined durably (replay must not resurrect them).

All three policies are exercised against a producer 10× faster than the
consumer in ``tests/faults/test_serve_backpressure.py``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Generic, TypeVar

from repro.exceptions import ConfigurationError, ServiceError

__all__ = ["BACKPRESSURE_POLICIES", "BatchPolicy", "BoundedQueue", "QueueItem"]

#: Recognised full-queue behaviours.
BACKPRESSURE_POLICIES = ("block", "reject", "shed")

ItemT = TypeVar("ItemT")


@dataclass(frozen=True)
class BatchPolicy:
    """Absorb every ``max_cascades`` cascades or ``max_delay_seconds``
    seconds, whichever comes first.

    Attributes
    ----------
    max_cascades:
        Pending-cascade count that triggers an immediate absorb.
    max_delay_seconds:
        Longest a pending batch may wait before an absorb triggers
        anyway — bounds staleness of the served model under a trickle.
    """

    max_cascades: int = 64
    max_delay_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_cascades < 1:
            raise ConfigurationError(
                f"max_cascades must be >= 1, got {self.max_cascades}"
            )
        if self.max_delay_seconds <= 0:
            raise ConfigurationError(
                f"max_delay_seconds must be positive, got {self.max_delay_seconds}"
            )

    def ready(self, pending_cascades: int, oldest_age_seconds: float) -> bool:
        """Should the absorb loop fire now?"""
        if pending_cascades <= 0:
            return False
        return (
            pending_cascades >= self.max_cascades
            or oldest_age_seconds >= self.max_delay_seconds
        )

    def wait_budget(self, oldest_age_seconds: float) -> float:
        """How long the absorb loop may sleep before the delay bound
        would fire for the current oldest batch."""
        return max(0.0, self.max_delay_seconds - oldest_age_seconds)


@dataclass(frozen=True)
class QueueItem(Generic[ItemT]):
    """One queued batch: the payload, its weight (cascades), arrival time."""

    payload: ItemT
    weight: int
    enqueued_at: float


class BoundedQueue(Generic[ItemT]):
    """Thread-safe bounded queue of weighted items with explicit
    backpressure.

    Capacity is in total weight (pending cascades).  A single item
    heavier than the whole capacity is accepted when the queue is empty
    — refusing it would deadlock ``block`` forever — but still counts
    its full weight, so nothing else fits alongside it.
    """

    def __init__(
        self,
        capacity: int,
        policy: str = "block",
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if policy not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"unknown backpressure policy {policy!r}; "
                f"available: {BACKPRESSURE_POLICIES}"
            )
        self.capacity = capacity
        self.policy = policy
        self._clock = clock
        self._items: deque[QueueItem[ItemT]] = deque()
        self._weight = 0
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.shed_total = 0
        self.rejected_total = 0
        self.blocked_total = 0

    # ------------------------------------------------------------------
    @property
    def weight(self) -> int:
        """Total pending weight (cascades)."""
        with self._lock:
            return self._weight

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def oldest_age(self) -> float:
        """Seconds the oldest pending item has waited (0 when empty)."""
        with self._lock:
            if not self._items:
                return 0.0
            return self._clock() - self._items[0].enqueued_at

    # ------------------------------------------------------------------
    def put(
        self, payload: ItemT, weight: int, *, timeout: float | None = None
    ) -> list[ItemT]:
        """Enqueue one item under the configured policy.

        Returns the list of items *shed* to make room (always empty for
        ``block`` / ``reject``).  Raises
        :class:`~repro.exceptions.ServiceError` when the queue is full
        under ``reject``, when a ``block`` wait exceeds ``timeout``, or
        when the queue is closed.
        """
        if weight < 1:
            raise ConfigurationError(f"item weight must be >= 1, got {weight}")
        deadline = None if timeout is None else self._clock() + timeout
        with self._lock:
            self._raise_if_closed()
            shed: list[ItemT] = []
            while self._weight + weight > self.capacity and self._items:
                if self.policy == "reject":
                    self.rejected_total += 1
                    raise ServiceError(
                        f"ingest queue full ({self._weight}/{self.capacity} "
                        "cascades pending) and backpressure policy is 'reject'"
                    )
                if self.policy == "shed":
                    oldest = self._items.popleft()
                    self._weight -= oldest.weight
                    self.shed_total += 1
                    shed.append(oldest.payload)
                    continue
                # block
                self.blocked_total += 1
                remaining = (
                    None if deadline is None else deadline - self._clock()
                )
                if remaining is not None and remaining <= 0:
                    raise ServiceError(
                        f"timed out after {timeout:.3g}s waiting for ingest "
                        "queue space (policy 'block')"
                    )
                if not self._not_full.wait(remaining):
                    raise ServiceError(
                        f"timed out after {timeout:.3g}s waiting for ingest "
                        "queue space (policy 'block')"
                    )
                self._raise_if_closed()
            self._items.append(
                QueueItem(payload, weight, self._clock())
            )
            self._weight += weight
            self._not_empty.notify_all()
            return shed

    def _raise_if_closed(self) -> None:
        if self._closed:
            raise ServiceError("ingest queue is closed")

    # ------------------------------------------------------------------
    def take(self, max_weight: int | None = None) -> list[QueueItem[ItemT]]:
        """Dequeue from the front up to ``max_weight`` (at least one item
        when non-empty, whatever its weight)."""
        with self._lock:
            taken: list[QueueItem[ItemT]] = []
            total = 0
            while self._items:
                item = self._items[0]
                if taken and max_weight is not None and total + item.weight > max_weight:
                    break
                self._items.popleft()
                self._weight -= item.weight
                taken.append(item)
                total += item.weight
            if taken:
                self._not_full.notify_all()
            return taken

    def requeue_front(self, items: list[QueueItem[ItemT]]) -> None:
        """Push items back to the *front* in order (watchdog re-delivery
        of an interrupted group); capacity is deliberately ignored — the
        items already passed admission once."""
        with self._lock:
            for item in reversed(items):
                self._items.appendleft(item)
                self._weight += item.weight
            if items:
                self._not_empty.notify_all()

    def wait_for_items(self, timeout: float | None = None) -> bool:
        """Block until the queue is non-empty (or closed); True when
        items are pending."""
        with self._lock:
            if self._items:
                return True
            if self._closed:
                return False
            self._not_empty.wait(timeout)
            return bool(self._items)

    def close(self) -> None:
        """Refuse further puts; pending items remain takeable (drain)."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
