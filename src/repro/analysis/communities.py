"""Community detection via label propagation, plus modularity.

A dependency-light community detector used to (a) validate that the LFR
generator actually produces modular structure and (b) compare the
community structure of an inferred network against the truth.  The
algorithm is synchronous-free label propagation (Raghavan et al., 2007)
over the *undirected projection* of the diffusion graph, with ties broken
by the smallest label so runs are deterministic for a fixed seed.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.graphs.digraph import DiffusionGraph
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["label_propagation_communities", "modularity"]


def _undirected_neighbours(graph: DiffusionGraph) -> list[np.ndarray]:
    neighbours: list[set[int]] = [set() for _ in graph.nodes()]
    for u, v in graph.edges():
        neighbours[u].add(v)
        neighbours[v].add(u)
    return [
        np.fromiter(sorted(s), dtype=np.int64, count=len(s)) for s in neighbours
    ]


def label_propagation_communities(
    graph: DiffusionGraph,
    *,
    max_iterations: int = 100,
    seed: RandomState = None,
) -> np.ndarray:
    """Partition nodes into communities by asynchronous label propagation.

    Returns an ``(n,)`` int64 array of community labels, renumbered to
    ``0..c-1`` in order of first appearance.  Isolated nodes end up in
    singleton communities.
    """
    check_positive_int("max_iterations", max_iterations)
    rng = as_generator(seed)
    n = graph.n_nodes
    labels = np.arange(n, dtype=np.int64)
    if n == 0:
        return labels
    neighbours = _undirected_neighbours(graph)
    order = np.arange(n)
    for _ in range(max_iterations):
        rng.shuffle(order)
        changed = 0
        for node in order.tolist():
            adjacent = neighbours[node]
            if adjacent.size == 0:
                continue
            counts = Counter(labels[adjacent].tolist())
            best_count = max(counts.values())
            best_label = min(
                label for label, count in counts.items() if count == best_count
            )
            if labels[node] != best_label:
                labels[node] = best_label
                changed += 1
        if changed == 0:
            break
    # Renumber labels to 0..c-1 by first appearance.
    remap: dict[int, int] = {}
    for label in labels.tolist():
        if label not in remap:
            remap[label] = len(remap)
    return np.array([remap[label] for label in labels.tolist()], dtype=np.int64)


def modularity(graph: DiffusionGraph, labels: np.ndarray) -> float:
    """Newman modularity of a partition over the undirected projection.

    ``Q = Σ_c (e_c / m − (d_c / 2m)²)`` with ``e_c`` the intra-community
    undirected edge count, ``d_c`` the community's total degree, and ``m``
    the undirected edge count.  Returns 0.0 for an edgeless graph.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (graph.n_nodes,):
        raise ValueError(
            f"labels shape {labels.shape} does not match node count {graph.n_nodes}"
        )
    undirected = {tuple(sorted(edge)) for edge in graph.edges()}
    m = len(undirected)
    if m == 0:
        return 0.0
    intra = Counter()
    degree = Counter()
    for u, v in undirected:
        degree[int(labels[u])] += 1
        degree[int(labels[v])] += 1
        if labels[u] == labels[v]:
            intra[int(labels[u])] += 1
    return sum(
        intra[c] / m - (degree[c] / (2.0 * m)) ** 2 for c in degree
    )
