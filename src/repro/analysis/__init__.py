"""Downstream analysis of (inferred) diffusion networks.

The paper motivates topology reconstruction by what it enables:
"designing effective strategies to promote or prevent future diffusions"
(§I).  This package supplies those downstream tools so the library is
usable end to end:

* :mod:`repro.analysis.influence` — Monte-Carlo spread estimation and
  CELF greedy influence maximisation on a (possibly inferred) network;
* :mod:`repro.analysis.communities` — label-propagation community
  detection (also used to validate the LFR generator's modular structure);
* :mod:`repro.analysis.compare` — structural comparison of an inferred
  topology against a reference (per-node accuracy, degree correlation,
  hub recovery).
"""

from repro.analysis.communities import label_propagation_communities, modularity
from repro.analysis.compare import (
    NodeComparison,
    compare_topologies,
    degree_correlation,
    per_node_metrics,
)
from repro.analysis.influence import (
    estimate_spread,
    greedy_influence_maximization,
)

__all__ = [
    "estimate_spread",
    "greedy_influence_maximization",
    "label_propagation_communities",
    "modularity",
    "compare_topologies",
    "per_node_metrics",
    "degree_correlation",
    "NodeComparison",
]
