"""Structural comparison of an inferred topology against a reference.

Beyond the scalar F-score, a practitioner wants to know *where* an
inference goes wrong: which nodes' neighbourhoods are recovered, whether
hubs survive, and whether the degree structure is preserved.  These
helpers power the error analysis in the examples and give the test suite
sharper probes than a single global number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.metrics import EdgeMetrics, evaluate_edges
from repro.exceptions import DataError
from repro.graphs.digraph import DiffusionGraph

__all__ = [
    "NodeComparison",
    "per_node_metrics",
    "degree_correlation",
    "compare_topologies",
]


@dataclass(frozen=True)
class NodeComparison:
    """Recovery quality of one node's incoming neighbourhood (its parents)."""

    node: int
    true_in_degree: int
    inferred_in_degree: int
    metrics: EdgeMetrics

    @property
    def f_score(self) -> float:
        return self.metrics.f_score


def per_node_metrics(
    truth: DiffusionGraph, inferred: DiffusionGraph
) -> list[NodeComparison]:
    """Parent-set precision/recall/F for every node.

    This is the decomposition TENDS itself optimises (one parent set per
    node), so it localises errors to the exact sub-searches that failed.
    """
    _check_same_nodes(truth, inferred)
    comparisons: list[NodeComparison] = []
    for node in truth.nodes():
        true_parents = set(truth.predecessors(node).tolist())
        inferred_parents = set(inferred.predecessors(node).tolist())
        tp = len(true_parents & inferred_parents)
        metrics = EdgeMetrics(
            true_positives=tp,
            false_positives=len(inferred_parents) - tp,
            false_negatives=len(true_parents) - tp,
        )
        comparisons.append(
            NodeComparison(
                node=node,
                true_in_degree=len(true_parents),
                inferred_in_degree=len(inferred_parents),
                metrics=metrics,
            )
        )
    return comparisons


def degree_correlation(
    truth: DiffusionGraph, inferred: DiffusionGraph, *, kind: str = "total"
) -> float:
    """Pearson correlation between true and inferred node degrees.

    ``kind`` selects ``"in"``, ``"out"`` or ``"total"`` degrees.  Returns
    0.0 when either degree vector is constant (no variance to correlate).
    """
    _check_same_nodes(truth, inferred)
    selectors = {
        "in": lambda g: g.in_degrees(),
        "out": lambda g: g.out_degrees(),
        "total": lambda g: g.in_degrees() + g.out_degrees(),
    }
    if kind not in selectors:
        raise DataError(f"kind must be one of {sorted(selectors)}, got {kind!r}")
    a = selectors[kind](truth).astype(np.float64)
    b = selectors[kind](inferred).astype(np.float64)
    if a.std() == 0.0 or b.std() == 0.0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def compare_topologies(
    truth: DiffusionGraph, inferred: DiffusionGraph, *, top_hub_count: int = 10
) -> dict[str, float]:
    """One-call structural report: global and localized recovery measures.

    Returns a flat dict with the global edge metrics, the undirected
    variants, degree correlations, the fraction of perfectly recovered
    parent sets, and hub recovery (overlap of the ``top_hub_count``
    highest-out-degree nodes).
    """
    _check_same_nodes(truth, inferred)
    global_metrics = evaluate_edges(truth, inferred)
    undirected = evaluate_edges(truth, inferred, undirected=True)
    node_rows = per_node_metrics(truth, inferred)
    exact_nodes = sum(
        1
        for row in node_rows
        if row.metrics.false_positives == 0 and row.metrics.false_negatives == 0
    )
    k = min(top_hub_count, truth.n_nodes)
    true_hubs = set(np.argsort(-truth.out_degrees())[:k].tolist())
    inferred_hubs = set(np.argsort(-inferred.out_degrees())[:k].tolist())
    return {
        "f_score": global_metrics.f_score,
        "precision": global_metrics.precision,
        "recall": global_metrics.recall,
        "undirected_f_score": undirected.f_score,
        "in_degree_correlation": degree_correlation(truth, inferred, kind="in"),
        "out_degree_correlation": degree_correlation(truth, inferred, kind="out"),
        "exact_parent_set_fraction": exact_nodes / max(truth.n_nodes, 1),
        "hub_overlap": len(true_hubs & inferred_hubs) / max(k, 1),
    }


def _check_same_nodes(truth: DiffusionGraph, inferred: DiffusionGraph) -> None:
    if truth.n_nodes != inferred.n_nodes:
        raise DataError(
            f"node counts differ: truth {truth.n_nodes}, inferred {inferred.n_nodes}"
        )
