"""Influence estimation and maximisation on diffusion networks.

Once a topology has been inferred (and optionally parameterised via
:func:`repro.core.edge_probabilities.estimate_edge_probabilities`), the
classic downstream question is *who to seed*: which ``k`` nodes maximise
the expected number of infected nodes under the Independent Cascade
process.  The expected-spread function is monotone submodular (Kempe et
al., KDD 2003), so the CELF lazy greedy achieves the standard
``1 − 1/e`` approximation; spread itself is #P-hard, so it is estimated
by Monte-Carlo simulation.

These utilities power the viral-marketing example and the seed-selection
end of the epidemic scenario (inverting the objective: the *best* seeds
are also the nodes most worth vaccinating).
"""

from __future__ import annotations

import heapq
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.digraph import DiffusionGraph
from repro.simulation.models import IndependentCascadeModel
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = ["estimate_spread", "greedy_influence_maximization"]


def _resolve_probabilities(
    graph: DiffusionGraph,
    probabilities: Mapping[tuple[int, int], float] | float,
) -> dict[tuple[int, int], float]:
    if isinstance(probabilities, (int, float)):
        p = float(probabilities)
        if not 0.0 < p < 1.0:
            raise ConfigurationError(f"uniform probability must be in (0, 1), got {p}")
        return {edge: p for edge in graph.edges()}
    resolved = dict(probabilities)
    missing = [edge for edge in graph.edges() if edge not in resolved]
    if missing:
        raise ConfigurationError(
            f"missing probabilities for {len(missing)} edges, e.g. {missing[0]}"
        )
    return resolved


def estimate_spread(
    graph: DiffusionGraph,
    seeds: Sequence[int],
    probabilities: Mapping[tuple[int, int], float] | float = 0.3,
    *,
    n_samples: int = 200,
    seed: RandomState = None,
) -> float:
    """Monte-Carlo estimate of the expected IC spread of ``seeds``.

    Parameters
    ----------
    graph:
        The diffusion network (inferred or known).
    seeds:
        Initially infected nodes.
    probabilities:
        Per-edge probability mapping, or a single float applied uniformly.
    n_samples:
        Number of simulated processes; the estimator's standard error
        shrinks as ``1/sqrt(n_samples)``.

    Returns
    -------
    float
        Expected number of infected nodes (including the seeds).
    """
    check_positive_int("n_samples", n_samples)
    seed_array = np.array(sorted(set(int(v) for v in seeds)), dtype=np.int64)
    if seed_array.size == 0:
        return 0.0
    resolved = _resolve_probabilities(graph, probabilities)
    rng = as_generator(seed)
    model = IndependentCascadeModel()
    total = 0
    for _ in range(n_samples):
        total += len(model.run(graph, resolved, seed_array, rng))
    return total / n_samples


def greedy_influence_maximization(
    graph: DiffusionGraph,
    k: int,
    probabilities: Mapping[tuple[int, int], float] | float = 0.3,
    *,
    n_samples: int = 200,
    seed: RandomState = None,
) -> tuple[list[int], float]:
    """CELF lazy-greedy selection of ``k`` seeds maximising expected spread.

    Returns ``(seeds, estimated_spread)``.  Uses common random numbers
    per evaluation batch so marginal-gain comparisons are low-variance.

    Notes
    -----
    The marginal gains are Monte-Carlo estimates, so the lazy-evaluation
    invariant holds only approximately; with the default sample budget the
    selected sets match full greedy on the library's test networks.
    """
    check_positive_int("k", k)
    if k > graph.n_nodes:
        raise ConfigurationError(f"k ({k}) exceeds node count ({graph.n_nodes})")
    resolved = _resolve_probabilities(graph, probabilities)
    rng = as_generator(seed)

    def spread(nodes: list[int], evaluation_seed: int) -> float:
        return estimate_spread(
            graph,
            nodes,
            resolved,
            n_samples=n_samples,
            seed=np.random.default_rng(evaluation_seed),
        )

    # CELF: heap of (-gain, evaluated_at, node) where evaluated_at is the
    # |chosen| at which the gain was computed.  A popped entry whose gain
    # is up to date (evaluated against the current chosen set) is selected
    # immediately; stale entries are re-evaluated and re-queued.
    base_seed = int(rng.integers(2**31))
    chosen: list[int] = []
    current_spread = 0.0
    heap: list[tuple[float, int, int]] = []
    for node in graph.nodes():
        gain = spread([node], base_seed)
        heapq.heappush(heap, (-gain, 0, node))

    while heap and len(chosen) < k:
        negative_gain, evaluated_at, node = heapq.heappop(heap)
        if evaluated_at == len(chosen):
            chosen.append(node)
            current_spread += -negative_gain
            continue
        fresh = (
            spread(chosen + [node], base_seed + len(chosen) + 1) - current_spread
        )
        heapq.heappush(heap, (-fresh, len(chosen), node))
    return chosen, current_spread
