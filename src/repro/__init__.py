"""repro — reproduction of *Statistical Estimation of Diffusion Network
Topologies* (TENDS, ICDE 2020).

Quickstart
----------
>>> from repro import DiffusionSimulator, Tends, erdos_renyi_digraph
>>> truth = erdos_renyi_digraph(40, 0.06, seed=1)
>>> observations = DiffusionSimulator(truth, mu=0.3, alpha=0.15, seed=1).run(beta=150)
>>> inferred = Tends().fit(observations.statuses).graph

See README.md for the full tour and DESIGN.md for the paper mapping.
"""

from repro._version import __version__
from repro.analysis import (
    compare_topologies,
    estimate_spread,
    greedy_influence_maximization,
    label_propagation_communities,
    modularity,
)
from repro.baselines import (
    CorrelationRanker,
    InferenceOutput,
    Lift,
    MulTree,
    NetInf,
    NetRate,
    NetworkInferrer,
    Observations,
    TendsInferrer,
)
from repro.core import (
    SufficientStats,
    Tends,
    TendsConfig,
    TendsModel,
    TendsResult,
    TiledSufficientStats,
    UpdateInfo,
    estimate_edge_probabilities,
    merge_results,
)
from repro.evaluation import (
    ExperimentResult,
    ExperimentSpec,
    best_threshold_metrics,
    evaluate_edges,
    figure_spec,
    run_experiment,
)
from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    DataError,
    GraphError,
    InferenceError,
    ReproError,
    SimulationError,
)
from repro.graphs import (
    DiffusionGraph,
    LFRParams,
    barabasi_albert_digraph,
    core_periphery_digraph,
    dunf,
    erdos_renyi_digraph,
    lfr_benchmark_graph,
    netsci,
    random_tree_digraph,
    summarize_graph,
    watts_strogatz_digraph,
)
from repro.simulation import (
    Cascade,
    CascadeSet,
    DiffusionSimulator,
    IndependentCascadeModel,
    SimulationResult,
    StatusMatrix,
    SusceptibleInfectedModel,
)

__all__ = [
    "__version__",
    # core
    "Tends",
    "TendsConfig",
    "TendsModel",
    "TendsResult",
    "UpdateInfo",
    "SufficientStats",
    "TiledSufficientStats",
    "merge_results",
    "estimate_edge_probabilities",
    # graphs
    "DiffusionGraph",
    "LFRParams",
    "lfr_benchmark_graph",
    "erdos_renyi_digraph",
    "barabasi_albert_digraph",
    "watts_strogatz_digraph",
    "random_tree_digraph",
    "core_periphery_digraph",
    "netsci",
    "dunf",
    "summarize_graph",
    # simulation
    "DiffusionSimulator",
    "SimulationResult",
    "IndependentCascadeModel",
    "SusceptibleInfectedModel",
    "StatusMatrix",
    "Cascade",
    "CascadeSet",
    # baselines
    "Observations",
    "InferenceOutput",
    "NetworkInferrer",
    "TendsInferrer",
    "NetRate",
    "MulTree",
    "NetInf",
    "Lift",
    "CorrelationRanker",
    # analysis
    "compare_topologies",
    "estimate_spread",
    "greedy_influence_maximization",
    "label_propagation_communities",
    "modularity",
    # evaluation
    "evaluate_edges",
    "best_threshold_metrics",
    "ExperimentSpec",
    "ExperimentResult",
    "run_experiment",
    "figure_spec",
    # errors
    "ReproError",
    "ConfigurationError",
    "DataError",
    "GraphError",
    "SimulationError",
    "InferenceError",
    "ConvergenceError",
]
