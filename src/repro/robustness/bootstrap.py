"""Bootstrap uncertainty quantification for the IMI matrix.

The IMI estimates behind TENDS's candidate pruning are point estimates
from ``β`` diffusion processes; near the threshold ``τ`` their sampling
noise decides which pairs survive.  :func:`bootstrap_imi` resamples the
processes with replacement ``B`` times, recomputes the IMI matrix on each
resample, and summarises the distribution as per-pair confidence
intervals and stability scores.  These back two estimator features:

* ``Tends(threshold="stable")`` keeps only pairs whose CI lower bound
  clears the fixed-zero 2-means τ — pairs whose CI straddles τ are
  pruned as unstable;
* ``TendsResult.edge_confidence`` reports, per inferred edge, the
  fraction of resamples in which the pair's IMI exceeded τ.

Resample streams are spawned from one seed via ``SeedSequence``
(:func:`repro.utils.rng.spawn_generators`), so results are bit-identical
across platforms and execution backends for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.simulation.statuses import StatusMatrix
from repro.utils.rng import RandomState, spawn_generators

__all__ = ["ImiBootstrap", "bootstrap_imi"]


@dataclass(frozen=True)
class ImiBootstrap:
    """Bootstrap distribution of the pairwise IMI matrix.

    Attributes
    ----------
    point:
        The ``(n, n)`` IMI matrix estimated from the full observation set
        (the value TENDS thresholds).
    samples:
        ``(B, n, n)`` stack of resampled IMI matrices.
    ci_level:
        Nominal two-sided confidence level of :meth:`ci` (e.g. 0.95).
    seed:
        The seed the resampling ran under (``None`` if entropy-seeded).
    """

    point: np.ndarray
    samples: np.ndarray
    ci_level: float
    seed: int | None = None

    @property
    def n_samples(self) -> int:
        """Number of bootstrap resamples ``B``."""
        return self.samples.shape[0]

    def ci(self, level: float | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Per-pair percentile confidence interval ``(lower, upper)``.

        ``level`` defaults to :attr:`ci_level`; both bounds are ``(n, n)``
        matrices aligned with :attr:`point`.
        """
        level = self.ci_level if level is None else level
        if not 0.0 < level < 1.0:
            raise DataError(f"ci level must be in (0, 1), got {level}")
        tail = (1.0 - level) / 2.0
        lower = np.quantile(self.samples, tail, axis=0)
        upper = np.quantile(self.samples, 1.0 - tail, axis=0)
        return lower, upper

    def exceed_fraction(self, threshold: float) -> np.ndarray:
        """Per-pair fraction of resamples with IMI strictly above
        ``threshold`` — the stability/confidence score used for
        ``TendsResult.edge_confidence``."""
        return (self.samples > threshold).mean(axis=0)

    def stable_above(self, threshold: float, level: float | None = None) -> np.ndarray:
        """Boolean ``(n, n)`` matrix: pairs whose CI lower bound clears
        ``threshold`` (the ``threshold="stable"`` screening rule).  A pair
        whose interval straddles ``threshold`` is *not* stable."""
        lower, _ = self.ci(level)
        return lower > threshold


def bootstrap_imi(
    statuses: StatusMatrix,
    n_samples: int = 100,
    *,
    seed: RandomState = None,
    ci_level: float = 0.95,
    mi_kind: str = "infection",
) -> ImiBootstrap:
    """Bootstrap the IMI matrix by resampling diffusion processes.

    Parameters
    ----------
    statuses:
        The observations (mask-aware: resampled rows carry their mask
        entries, and each resample uses the same pairwise-complete
        estimation the point estimate does).
    n_samples:
        Number of bootstrap resamples ``B``.
    seed:
        Seed-like input; one independent stream per resample is spawned
        from it, so the result is reproducible and platform-independent.
    ci_level:
        Default confidence level stored on the result.
    mi_kind:
        ``"infection"`` (Eq. 25, the TENDS measure) or ``"traditional"``.
    """
    from repro.core.imi import infection_mi_matrix, traditional_mi_matrix

    if n_samples < 1:
        raise DataError(f"n_samples must be >= 1, got {n_samples}")
    if not 0.0 < ci_level < 1.0:
        raise DataError(f"ci_level must be in (0, 1), got {ci_level}")
    if mi_kind == "infection":
        mi_fn = infection_mi_matrix
    elif mi_kind == "traditional":
        mi_fn = traditional_mi_matrix
    else:
        raise DataError(f"unknown mi_kind: {mi_kind!r}")
    if statuses.beta == 0:
        raise DataError("cannot bootstrap zero diffusion processes")

    point = mi_fn(statuses)
    streams = spawn_generators(seed, n_samples)
    samples = np.empty((n_samples, statuses.n_nodes, statuses.n_nodes))
    for index, stream in enumerate(streams):
        rows = stream.integers(0, statuses.beta, size=statuses.beta)
        samples[index] = mi_fn(statuses.subset(rows))
    return ImiBootstrap(
        point=point,
        samples=samples,
        ci_level=ci_level,
        seed=seed if isinstance(seed, int) else None,
    )
