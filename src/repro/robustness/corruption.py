"""Seed-deterministic corruption models for status observations.

Each model maps a clean :class:`~repro.simulation.statuses.StatusMatrix`
to a :class:`CorruptedObservations` record: the corrupted matrix (with an
observation mask where entries went missing), the clean reference, and
metadata describing exactly what was done.  The models compose — apply
one to the ``.statuses`` of another's record, or hand a whole recipe to
:func:`apply_corruptions`, which derives one independent stream per step
from a single seed via ``SeedSequence`` spawning (platform- and
executor-independent).

The four models mirror the observation-error taxonomy of the
uncertain-diffusion literature:

========================  ====================================================
:func:`flip_noise`        reporting errors — observed statuses are wrong
                          (symmetric rate, or asymmetric false-positive /
                          false-negative rates)
:func:`missing_at_random` sensor gaps — individual statuses unobserved,
                          encoded in the mask (never silently as 0/1)
:func:`node_dropout`      unmonitored nodes — whole columns unobserved
:func:`cascade_subsample` lost processes — whole rows removed
========================  ====================================================

>>> from repro.simulation.statuses import StatusMatrix
>>> clean = StatusMatrix([[1, 0, 1], [0, 1, 1], [1, 1, 0], [0, 0, 0]])
>>> record = missing_at_random(clean, 0.25, seed=7)
>>> record.kind, record.rate
('missing', 0.25)
>>> record.statuses.has_missing
True
>>> record == missing_at_random(clean, 0.25, seed=7)   # deterministic
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import DataError
from repro.simulation.statuses import StatusMatrix
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.validation import check_probability

__all__ = [
    "CORRUPTION_KINDS",
    "CorruptedObservations",
    "apply_corruptions",
    "cascade_subsample",
    "corrupt",
    "flip_noise",
    "missing_at_random",
    "node_dropout",
]


@dataclass(frozen=True)
class CorruptedObservations:
    """One corruption step applied to a status matrix.

    Attributes
    ----------
    statuses:
        The corrupted observations (mask included when entries went
        missing) — what an estimator under test gets to see.
    clean:
        The matrix the corruption was applied to, untouched.  For chained
        corruptions this is the *input* of this step, so the original
        observations are reachable by walking the chain.
    kind:
        Registry name of the model (``"flip"``, ``"missing"``,
        ``"dropout"``, ``"subsample"``).
    rate:
        The headline corruption rate (meaning depends on ``kind`` — see
        each model's docstring).
    seed:
        The seed the step ran under (``None`` if entropy-seeded).
    details:
        Model-specific metadata: realised corruption counts, asymmetric
        rates, dropped node/process indices — everything needed to audit
        or reproduce the step without re-running it.
    """

    statuses: StatusMatrix
    clean: StatusMatrix
    kind: str
    rate: float
    seed: int | None = None
    details: Mapping[str, object] = field(default_factory=dict)

    @property
    def mask(self) -> np.ndarray | None:
        """Observation mask of the corrupted matrix (``None`` = complete)."""
        return self.statuses.mask

    @property
    def realised_fraction(self) -> float:
        """Fraction of entries the step actually corrupted/removed."""
        value = self.details.get("realised_fraction")
        return float(value) if value is not None else 0.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CorruptedObservations):
            return NotImplemented
        return (
            self.statuses == other.statuses
            and self.clean == other.clean
            and self.kind == other.kind
            and self.rate == other.rate
            and self.seed == other.seed
            and dict(self.details) == dict(other.details)
        )


def _seed_of(seed: RandomState) -> int | None:
    """Record-keeping form of a seed-like input (ints only; streams are
    position-dependent so their state is not meaningfully recordable)."""
    return seed if isinstance(seed, int) else None


def flip_noise(
    statuses: StatusMatrix,
    rate: float | None = None,
    *,
    rate_01: float | None = None,
    rate_10: float | None = None,
    seed: RandomState = None,
) -> CorruptedObservations:
    """Flip observed statuses independently at random (reporting noise).

    Parameters
    ----------
    rate:
        Symmetric flip probability applied to every observed entry.
        Mutually exclusive with the asymmetric pair.
    rate_01 / rate_10:
        Asymmetric rates: ``rate_01`` is the false-positive probability
        (a true 0 reported as 1), ``rate_10`` the false-negative
        probability (a true 1 reported as 0).  Either may be given alone
        (the other defaults to 0).
    seed:
        Seed-like input (``repro.utils.rng`` conventions).

    Entries an existing observation mask marks missing are left missing —
    noise applies to what was observed, not to what wasn't.
    """
    if rate is not None and (rate_01 is not None or rate_10 is not None):
        raise DataError("pass either rate= or rate_01=/rate_10=, not both")
    if rate is None and rate_01 is None and rate_10 is None:
        raise DataError("flip_noise needs rate= or rate_01=/rate_10=")
    p01 = rate if rate is not None else (rate_01 or 0.0)
    p10 = rate if rate is not None else (rate_10 or 0.0)
    check_probability("rate_01", p01)
    check_probability("rate_10", p10)
    rng = as_generator(seed)
    draws = rng.random(statuses.values.shape)
    flip_probability = np.where(statuses.values == 1, p10, p01)
    flips = draws < flip_probability
    if statuses.mask is not None:
        flips &= statuses.mask  # only observed entries can be misreported
    corrupted = StatusMatrix(
        np.where(flips, 1 - statuses.values, statuses.values), statuses.mask
    )
    observed = statuses.mask.sum() if statuses.mask is not None else statuses.values.size
    return CorruptedObservations(
        statuses=corrupted,
        clean=statuses,
        kind="flip",
        rate=float(rate if rate is not None else max(p01, p10)),
        seed=_seed_of(seed),
        details={
            "rate_01": float(p01),
            "rate_10": float(p10),
            "n_flipped": int(flips.sum()),
            "realised_fraction": float(flips.sum() / observed) if observed else 0.0,
        },
    )


def missing_at_random(
    statuses: StatusMatrix, rate: float, *, seed: RandomState = None
) -> CorruptedObservations:
    """Mark entries unobserved independently with probability ``rate``.

    Missingness is encoded in the observation mask — the corrupted
    matrix's ``values`` hold 0 at missing entries but its ``mask`` says
    they were never seen, and the mask-aware estimators
    (``missing="pairwise"``) count accordingly.  Composes with an
    existing mask (already-missing entries stay missing).
    """
    check_probability("rate", rate)
    rng = as_generator(seed)
    missing = rng.random(statuses.values.shape) < rate
    mask = ~missing
    if statuses.mask is not None:
        mask &= statuses.mask
    corrupted = StatusMatrix(np.where(mask, statuses.values, 0), mask)
    return CorruptedObservations(
        statuses=corrupted,
        clean=statuses,
        kind="missing",
        rate=float(rate),
        seed=_seed_of(seed),
        details={
            "n_missing": int((~mask).sum()),
            "realised_fraction": float((~mask).mean()),
        },
    )


def node_dropout(
    statuses: StatusMatrix, rate: float, *, seed: RandomState = None
) -> CorruptedObservations:
    """Drop whole nodes from observation (unmonitored sensors).

    Each node is independently unmonitored with probability ``rate``; a
    dropped node's column becomes fully unobserved in the mask.  The
    matrix keeps its shape so node indices stay aligned with the ground
    truth — use :meth:`StatusMatrix.select_nodes` instead if you want the
    columns physically removed.
    """
    check_probability("rate", rate)
    rng = as_generator(seed)
    dropped = rng.random(statuses.n_nodes) < rate
    mask = np.ones(statuses.values.shape, dtype=bool)
    mask[:, dropped] = False
    if statuses.mask is not None:
        mask &= statuses.mask
    corrupted = StatusMatrix(np.where(mask, statuses.values, 0), mask)
    dropped_nodes = tuple(np.nonzero(dropped)[0].tolist())
    return CorruptedObservations(
        statuses=corrupted,
        clean=statuses,
        kind="dropout",
        rate=float(rate),
        seed=_seed_of(seed),
        details={
            "dropped_nodes": dropped_nodes,
            "n_dropped": len(dropped_nodes),
            "realised_fraction": len(dropped_nodes) / statuses.n_nodes
            if statuses.n_nodes
            else 0.0,
        },
    )


def cascade_subsample(
    statuses: StatusMatrix, rate: float, *, seed: RandomState = None
) -> CorruptedObservations:
    """Remove whole diffusion processes (lost cascades).

    Each process row is independently dropped with probability ``rate``;
    the surviving rows keep their original order (and their mask entries,
    if any).  At least one process always survives — an estimator can
    degrade on little data, but zero rows is a different error class and
    the record would be useless.
    """
    check_probability("rate", rate)
    if statuses.beta == 0:
        raise DataError("cannot subsample a matrix with zero processes")
    rng = as_generator(seed)
    keep = rng.random(statuses.beta) >= rate
    if not keep.any():
        keep[int(rng.integers(statuses.beta))] = True
    kept_rows = np.nonzero(keep)[0]
    corrupted = statuses.subset(kept_rows)
    return CorruptedObservations(
        statuses=corrupted,
        clean=statuses,
        kind="subsample",
        rate=float(rate),
        seed=_seed_of(seed),
        details={
            "n_kept": int(kept_rows.size),
            "n_dropped": int(statuses.beta - kept_rows.size),
            "realised_fraction": float(1.0 - kept_rows.size / statuses.beta),
        },
    )


#: Registry of corruption models by kind name (the ``corrupt()`` and CLI
#: vocabulary).
CORRUPTION_KINDS: dict[str, object] = {
    "flip": flip_noise,
    "missing": missing_at_random,
    "dropout": node_dropout,
    "subsample": cascade_subsample,
}


def corrupt(
    statuses: StatusMatrix,
    kind: str,
    rate: float,
    *,
    seed: RandomState = None,
    **kwargs,
) -> CorruptedObservations:
    """Apply one corruption model by registry name.

    ``kind`` is one of :data:`CORRUPTION_KINDS`; extra keyword arguments
    are forwarded to the model (e.g. ``rate_01=`` for asymmetric flips).
    """
    try:
        model = CORRUPTION_KINDS[kind]
    except KeyError:
        raise DataError(
            f"unknown corruption kind {kind!r}; "
            f"expected one of {sorted(CORRUPTION_KINDS)}"
        ) from None
    return model(statuses, rate, seed=seed, **kwargs)


def apply_corruptions(
    statuses: StatusMatrix,
    steps: Sequence[tuple[str, float]],
    *,
    seed: RandomState = None,
) -> list[CorruptedObservations]:
    """Chain corruption steps, each on the previous step's output.

    ``steps`` is a sequence of ``(kind, rate)`` pairs.  One independent
    generator per step is spawned from ``seed`` (``SeedSequence.spawn``),
    so the recipe is deterministic as a whole and editing a later step
    never perturbs an earlier one.  Returns the per-step records in
    order; the final corrupted matrix is ``result[-1].statuses``.
    """
    streams = spawn_generators(seed, len(steps))
    records: list[CorruptedObservations] = []
    current = statuses
    for (kind, rate), stream in zip(steps, streams):
        record = corrupt(current, kind, rate, seed=stream)
        records.append(record)
        current = record.statuses
    return records
