"""Seed-deterministic drift scenarios: graphs that change mid-stream.

The paper's estimator assumes one static network behind every cascade;
the drift machinery (:mod:`repro.core.drift`,
``Tends.partial_fit(drift=...)``) exists for when that assumption fails.
This module generates the failure: a cascade stream whose ground-truth
graph is rewired at scheduled cascade indices, in the style of the
corruption registry — pure functions of ``(inputs, seed)``, bit-identical
on every platform.

>>> from repro.graphs import erdos_renyi_digraph
>>> truth = erdos_renyi_digraph(20, 0.1, seed=3)
>>> stream = simulate_drift_stream(
...     truth, [DriftEvent(at_cascade=100, rewire_fraction=0.1)],
...     beta=200, seed=3,
... )
>>> stream.statuses.beta
200
>>> stream.graph_at(0) is truth, stream.graph_at(150) is truth
(True, False)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.graphs.digraph import DiffusionGraph
from repro.simulation.statuses import StatusMatrix
from repro.utils.rng import RandomState, as_generator, derive_seed

__all__ = [
    "DriftEvent",
    "DriftStream",
    "StreamSegment",
    "rewire_edges",
    "simulate_drift_stream",
]


@dataclass(frozen=True)
class DriftEvent:
    """One scheduled structure change: at cascade ``at_cascade`` (0-based
    index into the stream), ``rewire_fraction`` of the current edges are
    removed and replaced by the same number of fresh random edges."""

    at_cascade: int
    rewire_fraction: float

    def __post_init__(self) -> None:
        if self.at_cascade < 1:
            raise ConfigurationError(
                f"at_cascade must be >= 1, got {self.at_cascade}"
            )
        if not 0.0 < self.rewire_fraction <= 1.0:
            raise ConfigurationError(
                f"rewire_fraction must be in (0, 1], got {self.rewire_fraction}"
            )


@dataclass(frozen=True)
class StreamSegment:
    """A maximal run of cascades generated on one (static) graph."""

    graph: DiffusionGraph
    start: int
    statuses: StatusMatrix

    @property
    def stop(self) -> int:
        return self.start + self.statuses.beta


@dataclass(frozen=True)
class DriftStream:
    """A drift scenario: the full cascade stream plus per-segment truth.

    ``statuses`` is the concatenated stream an estimator consumes;
    :meth:`graph_at` answers "what was the true network when cascade
    ``index`` was generated", which is what detection-latency and
    recovery metrics score against.
    """

    segments: tuple[StreamSegment, ...]
    statuses: StatusMatrix
    seed: int | None

    @property
    def beta(self) -> int:
        return self.statuses.beta

    @property
    def n_nodes(self) -> int:
        return self.statuses.n_nodes

    @property
    def change_points(self) -> tuple[int, ...]:
        """Cascade indices where the ground truth changed."""
        return tuple(segment.start for segment in self.segments[1:])

    def graph_at(self, index: int) -> DiffusionGraph:
        """Ground-truth graph behind cascade ``index``."""
        if not 0 <= index < self.beta:
            raise DataError(
                f"cascade index {index} out of range for a {self.beta}-"
                "cascade stream"
            )
        for segment in reversed(self.segments):
            if index >= segment.start:
                return segment.graph
        raise AssertionError("unreachable: segment 0 starts at 0")

    def final_graph(self) -> DiffusionGraph:
        return self.segments[-1].graph


def rewire_edges(
    graph: DiffusionGraph,
    fraction: float,
    *,
    seed: RandomState = None,
) -> DiffusionGraph:
    """Rewire ``fraction`` of the edges: remove that share (chosen
    uniformly) and add the same number of fresh edges uniformly over the
    absent non-self pairs.  Edge count is preserved exactly; the returned
    graph is frozen.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(
            f"rewire fraction must be in (0, 1], got {fraction}"
        )
    if graph.n_edges == 0:
        raise DataError("cannot rewire a graph with no edges")
    rng = as_generator(seed)
    edges = sorted(graph.edge_set())
    n_rewire = max(1, int(round(fraction * len(edges))))
    removed_idx = rng.choice(len(edges), size=n_rewire, replace=False)
    removed = {edges[i] for i in np.sort(removed_idx)}
    rewired = DiffusionGraph(
        graph.n_nodes, (e for e in edges if e not in removed)
    )
    # Fresh edges: uniform over pairs absent from the intermediate graph.
    # Sampling pair indices (i*n + j) keeps this O(draws), not O(n²).
    n = graph.n_nodes
    added = 0
    while added < n_rewire:
        pair = int(rng.integers(0, n * n))
        source, target = divmod(pair, n)
        if source == target or rewired.has_edge(source, target):
            continue
        rewired.add_edge(source, target)
        added += 1
    return rewired.freeze()


def simulate_drift_stream(
    graph: DiffusionGraph,
    events: "list[DriftEvent] | tuple[DriftEvent, ...]",
    *,
    beta: int,
    mu: float = 0.3,
    alpha: float = 0.15,
    sigma: float = 0.05,
    seed: int = 0,
) -> DriftStream:
    """Generate a ``beta``-cascade stream whose truth rewires at each
    :class:`DriftEvent`.

    Each segment simulates on its own (post-rewire) graph with
    independent, deterministically derived randomness — segment ``k``
    uses ``derive_seed(seed, "drift-segment", k)`` for both the rewire
    and the simulation, so inserting an event never perturbs earlier
    segments.  Events must be strictly increasing and inside the stream.
    """
    from repro.simulation.engine import DiffusionSimulator

    if beta < 1:
        raise ConfigurationError(f"beta must be >= 1, got {beta}")
    schedule = sorted(events, key=lambda e: e.at_cascade)
    cuts = [event.at_cascade for event in schedule]
    if len(set(cuts)) != len(cuts):
        raise ConfigurationError("drift events must have distinct at_cascade")
    if cuts and cuts[-1] >= beta:
        raise ConfigurationError(
            f"drift event at cascade {cuts[-1]} is outside the "
            f"{beta}-cascade stream"
        )
    boundaries = [0, *cuts, beta]
    current = graph if graph.frozen else graph.copy().freeze()
    segments: list[StreamSegment] = []
    for k, (start, stop) in enumerate(zip(boundaries[:-1], boundaries[1:])):
        segment_seed = derive_seed(seed, "drift-segment", k)
        if k > 0:
            current = rewire_edges(
                current,
                schedule[k - 1].rewire_fraction,
                seed=derive_seed(segment_seed, "rewire"),
            )
        simulated = DiffusionSimulator(
            current, mu=mu, alpha=alpha, sigma=sigma, seed=segment_seed
        ).run(beta=stop - start)
        segments.append(
            StreamSegment(
                graph=current, start=start, statuses=simulated.statuses
            )
        )
    statuses = (
        segments[0].statuses
        if len(segments) == 1
        else StatusMatrix.concat([segment.statuses for segment in segments])
    )
    return DriftStream(
        segments=tuple(segments), statuses=statuses, seed=seed
    )
