"""Observation-corruption robustness tools.

TENDS assumes the final-status matrix is observed exactly; real cascade
data is noisy and partially observed.  This package provides the two
halves of coping with that:

* :mod:`repro.robustness.corruption` — composable, seed-deterministic
  corruption models (bit-flip noise, missing-at-random entries, node
  dropout, cascade subsampling) that turn a clean
  :class:`~repro.simulation.statuses.StatusMatrix` into a
  :class:`CorruptedObservations` record carrying the clean reference,
  the observation mask, and the corruption metadata.  Used by the
  degradation benchmark (``repro figure robustness``) and available for
  ad-hoc stress tests.
* :mod:`repro.robustness.bootstrap` — uncertainty quantification:
  bootstrap resampling over diffusion processes yields per-pair IMI
  confidence intervals and per-edge stability scores, which back
  ``Tends(threshold="stable")`` and ``TendsResult.edge_confidence``.
* :mod:`repro.robustness.scenarios` — non-stationarity: drift streams
  whose ground-truth graph rewires at scheduled cascade indices, the
  test bed for the per-pair drift detector and the self-healing
  ``partial_fit(drift="adapt")`` path (``repro figure drift``).

All randomness routes through :mod:`repro.utils.rng` seed sequences, so
the same seed produces bit-identical corruption on every platform and
under every execution backend.
"""

from repro.robustness.bootstrap import ImiBootstrap, bootstrap_imi
from repro.robustness.corruption import (
    CORRUPTION_KINDS,
    CorruptedObservations,
    apply_corruptions,
    cascade_subsample,
    corrupt,
    flip_noise,
    missing_at_random,
    node_dropout,
)
from repro.robustness.scenarios import (
    DriftEvent,
    DriftStream,
    StreamSegment,
    rewire_edges,
    simulate_drift_stream,
)

__all__ = [
    "CORRUPTION_KINDS",
    "CorruptedObservations",
    "DriftEvent",
    "DriftStream",
    "ImiBootstrap",
    "StreamSegment",
    "apply_corruptions",
    "bootstrap_imi",
    "cascade_subsample",
    "corrupt",
    "flip_noise",
    "missing_at_random",
    "node_dropout",
    "rewire_edges",
    "simulate_drift_stream",
]
