"""The TENDS scoring criterion (paper §IV-A, Eq. 3–23).

Given observed statuses ``S`` and a candidate parent set ``F_i`` for node
``v_i``, the paper scores the family with

    g(v_i, F_i) = log2 L(v_i, F_i) − ½ · Σ_j log2(N_ij + 1)          (Eq. 13)

where ``L`` is the maximised multinomial likelihood of the child's status
given each observed parent-status combination ``π_ij``:

    log2 L(v_i, F_i) = Σ_j Σ_k N_ijk · log2(N_ijk / N_ij)            (Eq. 3)

``N_ijk`` counts processes with parent pattern ``π_ij`` and child status
``s_k``; ``N_ij = N_ij1 + N_ij2``.  Combinations that never occur in ``S``
(the paper's ``φ`` non-existent combinations) contribute nothing to either
term because ``N_ij = 0 ⇒ log2(N_ij + 1) = 0``.

Theorem 2 bounds how large a useful parent set can be:

    |F_i| ≤ log2(φ_{F_i} + δ_i)                                      (Eq. 16)
    δ_i   = 2·N₁·log2(β/N₁) + 2·N₂·log2(β/N₂) + log2(β + 1)          (Eq. 17)

with ``N₁``/``N₂`` the child's uninfected/infected process counts (terms
with ``N = 0`` vanish under the same convention).

Everything here is computed from bit-packed parent patterns, giving
``O(β · |F_i|)`` per evaluation as the complexity analysis (§IV-D)
requires.

>>> from repro.simulation.statuses import StatusMatrix
>>> statuses = StatusMatrix([[1, 1], [1, 1], [0, 0], [0, 0], [1, 0], [0, 1]])
>>> counts = family_counts(statuses, child=1, parents=[0])
>>> counts.totals.tolist()      # processes with parent=0 / parent=1
[3, 3]
>>> counts.infected.tolist()    # child infected in each group
[1, 2]
>>> round(local_score(statuses, 1, [0]), 3)   # 2 disagreements in 6 runs:
-7.51
>>> round(empty_set_score(statuses, 1), 3)    # ... the penalty rejects it
-7.404
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.kernels import PackedStatuses, packed_family_counts
from repro.exceptions import DataError
from repro.simulation.statuses import StatusMatrix

__all__ = [
    "FamilyCounts",
    "family_counts",
    "log_likelihood",
    "penalty",
    "local_score",
    "empty_set_score",
    "global_score",
    "delta_i",
    "size_bound",
    "phi_from_counts",
]


@dataclass(frozen=True)
class FamilyCounts:
    """Contingency counts of a (child, parent set) family.

    Counts are stored **sparsely over the observed combinations**: the
    non-existent combinations (the paper's ``φ``) contribute 0 to both the
    likelihood and the penalty, so they never need materialising.  This is
    what keeps the search safe on large parent sets — Theorem 2's bound
    ``|F| ≤ log2(φ + δ)`` is self-satisfying once ``2^|F|`` dwarfs β
    (``φ ≈ 2^|F|``), so the literal Algorithm-1 strategy can legitimately
    reach parent sets for which ``2^|F|`` cells would not fit in memory.

    Attributes
    ----------
    n_parents:
        ``|F_i|``.
    totals:
        ``N_ij`` for every **observed** combination ``j`` (all entries > 0
        whenever there is at least one process).
    infected:
        ``N_ij2`` — processes with parent pattern ``j`` and child infected,
        aligned with ``totals``.
    beta:
        Total number of processes (``Σ_j N_ij``).
    """

    n_parents: int
    totals: np.ndarray
    infected: np.ndarray
    beta: int

    @property
    def uninfected(self) -> np.ndarray:
        """``N_ij1`` — child uninfected per observed combination."""
        return self.totals - self.infected

    @property
    def n_possible(self) -> int:
        """``2^{|F_i|}`` possible parent-status combinations.

        A plain Python int: for wide parent sets this exceeds any fixed
        integer width, and it only ever feeds ``log2`` via ``phi``.
        """
        return 1 << self.n_parents

    @property
    def n_observed(self) -> int:
        """Number of combinations with at least one instance in ``S``."""
        return int(np.count_nonzero(self.totals))

    @property
    def phi(self) -> int:
        """``φ_{F_i}`` — combinations with no instances (paper §IV-A)."""
        return self.n_possible - self.n_observed


def family_counts(
    statuses: StatusMatrix,
    child: int,
    parents: Sequence[int],
    *,
    packed: PackedStatuses | None = None,
) -> FamilyCounts:
    """Count ``N_ij`` / ``N_ijk`` for ``child`` given ``parents``.

    Parent patterns are bit-packed (first parent = least-significant bit);
    only the observed patterns are materialised (see
    :class:`FamilyCounts`).

    When the matrix carries an observation mask with missing entries, the
    counts run over the *family-complete* processes only — the rows in
    which the child and every parent were all observed — so ``beta``
    becomes the family's effective sample size.  A family with no
    complete rows degrades to all-zero counts (score 0, like an empty
    observation set) rather than raising.

    Passing ``packed`` (the bit-packed form of the same matrix) routes
    the counting through :func:`repro.core.kernels.packed_family_counts`
    — identical counts in identical order, computed on 64 processes per
    word instead of row by row.
    """
    parent_list = [int(p) for p in parents]
    if child in parent_list:
        raise DataError(f"node {child} cannot be its own parent")
    if len(set(parent_list)) != len(parent_list):
        raise DataError(f"duplicate parents in {parent_list}")
    if packed is not None:
        totals, infected, beta = packed_family_counts(packed, child, parent_list)
        return FamilyCounts(
            n_parents=len(parent_list),
            totals=totals,
            infected=infected,
            beta=beta,
        )
    if statuses.has_missing:
        rows = statuses.complete_rows([child, *parent_list])
        _, inverse, totals = statuses.observed_pattern_counts(
            parent_list, rows=rows
        )
        child_states = statuses.column(child)[rows].astype(np.float64)
        beta = int(rows.shape[0])
    else:
        _, inverse, totals = statuses.observed_pattern_counts(parent_list)
        child_states = statuses.column(child).astype(np.float64)
        beta = statuses.beta
    infected = np.bincount(
        inverse, weights=child_states, minlength=totals.shape[0]
    ).astype(np.int64)
    return FamilyCounts(
        n_parents=len(parent_list),
        totals=totals,
        infected=infected,
        beta=beta,
    )


def log_likelihood(counts: FamilyCounts) -> float:
    """``log2 L(v_i, F_i)`` (Eq. 3): Σ_j Σ_k N_ijk log2(N_ijk / N_ij).

    Always ≤ 0; equals 0 only when every observed combination determines
    the child's status exactly.
    """
    total = 0.0
    for group in (counts.infected, counts.uninfected):
        mask = group > 0
        if mask.any():
            n_ijk = group[mask].astype(np.float64)
            n_ij = counts.totals[mask].astype(np.float64)
            total += float(np.sum(n_ijk * (np.log2(n_ijk) - np.log2(n_ij))))
    return total


def penalty(counts: FamilyCounts) -> float:
    """The statistical-error penalty ``½ Σ_j log2(N_ij + 1)`` (Eq. 12-13)."""
    observed = counts.totals[counts.totals > 0].astype(np.float64)
    return 0.5 * float(np.sum(np.log2(observed + 1.0)))


def local_score(
    statuses: StatusMatrix,
    child: int,
    parents: Sequence[int],
    *,
    packed: PackedStatuses | None = None,
) -> float:
    """``g(v_i, F_i)`` (Eq. 13) computed from scratch.

    ``packed`` optionally routes the contingency counting through the
    bit-packed kernel (see :func:`family_counts`); the score is
    bit-identical either way.
    """
    counts = family_counts(statuses, child, parents, packed=packed)
    return log_likelihood(counts) - penalty(counts)


def empty_set_score(statuses: StatusMatrix, child: int) -> float:
    """``g(v_i, ∅)`` (Eq. 18) — the baseline every non-empty set must beat."""
    return local_score(statuses, child, [])


def global_score(
    statuses: StatusMatrix, parent_sets: Sequence[Sequence[int]]
) -> float:
    """``g(T)`` (Eq. 12) for a full topology given as per-node parent sets.

    The criterion is decomposable — this is exactly the sum of the local
    scores — which is what turns the reconstruction into ``n`` independent
    parent-set searches.  Provided for whole-topology comparisons (e.g.
    scoring a baseline's output under TENDS's own criterion).
    """
    if len(parent_sets) != statuses.n_nodes:
        raise DataError(
            f"{len(parent_sets)} parent sets for {statuses.n_nodes} nodes"
        )
    return sum(
        local_score(statuses, child, parents)
        for child, parents in enumerate(parent_sets)
    )


def delta_i(statuses: StatusMatrix, child: int) -> float:
    """``δ_i`` from Theorem 2 (Eq. 17).

    Uses the convention ``N · log2(β / N) = 0`` when ``N = 0`` (the child is
    always, or never, infected), consistent with the entropy limits behind
    the derivation.

    Under an observation mask, ``β``/``N₁``/``N₂`` count only the
    processes in which the child was observed; a never-observed child
    gets ``δ_i = log2(0 + 1) = 0`` (no parents allowed) rather than an
    error — missing data degrades the bound, it does not abort inference.
    """
    beta = statuses.beta
    if beta == 0:
        raise DataError("delta_i undefined for zero processes")
    if statuses.has_missing:
        rows = statuses.complete_rows([child])
        beta = int(rows.shape[0])
        if beta == 0:
            return 0.0
        n2 = int(statuses.column(child)[rows].sum())
    else:
        n2 = int(statuses.column(child).sum())
    n1 = beta - n2
    value = math.log2(beta + 1)
    for count in (n1, n2):
        if count > 0:
            value += 2.0 * count * math.log2(beta / count)
    return value


def size_bound(phi: int, delta: float) -> float:
    """The Theorem-2 upper bound ``log2(φ + δ)`` on ``|F_i|``.

    ``φ + δ`` can be < 1 only in pathological tiny-β cases; the bound is
    then 0 (no parents allowed), never negative infinity.
    """
    argument = phi + delta
    if argument < 1.0:
        return 0.0
    return math.log2(argument)


def phi_from_counts(counts: FamilyCounts) -> int:
    """Convenience alias matching the paper's symbol ``φ_{F_i}``."""
    return counts.phi
