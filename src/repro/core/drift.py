"""Per-pair drift detection over windowed sufficient statistics.

The paper assumes one static diffusion network behind every cascade;
real propagation networks mutate while we observe them.  When the graph
changes, the *joint outcome distribution* of the affected node pairs —
the four counts ``(11, 10, 01, 00)`` that feed IMI — shifts between the
pre-change and post-change regimes.  Because the cached
:class:`~repro.core.stats.SufficientStats` are additive, both regimes
are available in ``O(n²)`` without re-reading cascades: a *recent*
window (the newest ``W`` processes) and a *reference* window (everything
before it, via :meth:`~repro.core.stats.SufficientStats.subtracted`).

:func:`detect_drift` runs one two-sample test per eligible pair:

* ``gtest`` (default) — the G-test (likelihood-ratio χ²) on the 2×4
  contingency table *window × joint outcome*, sensitive to any change in
  the pair's joint distribution;
* ``ztest`` — a two-proportion z-test on the co-infection rate
  ``P(both infected)`` alone, cheaper and more interpretable but blind
  to marginal-preserving changes.

With ``n(n-1)/2`` simultaneous tests, raw p-values would flag dozens of
stationary pairs per check, so rejection runs under multiple-testing
control (:attr:`DriftConfig.correction`): Benjamini-Hochberg (default,
controls the false-discovery rate at ``alpha``), Bonferroni (family-wise
error), or ``none`` (per-pair level, for exploration).  On a stationary
stream the probability that a BH- or Bonferroni-corrected check flags
*anything* is at most ``alpha`` — the detector's FPR knob.

The emitted :class:`DriftReport` names the drifted pairs (with
statistics and p-values) and the affected nodes — exactly the dirty-node
set :meth:`repro.core.tends.Tends.partial_fit` re-searches under
``drift="adapt"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.stats import SufficientStats
from repro.exceptions import ConfigurationError, DataError

__all__ = [
    "CORRECTIONS",
    "STATISTICS",
    "DriftConfig",
    "DriftReport",
    "PairDrift",
    "detect_drift",
]

#: Multiple-testing corrections, in documentation order.
CORRECTIONS = ("bh", "bonferroni", "none")

#: Two-sample statistics the detector can run per pair.
STATISTICS = ("gtest", "ztest")

#: The four joint-outcome count keys of a pair's contingency row.
_JOINT_KEYS = ("11", "10", "01", "00")


@dataclass(frozen=True)
class DriftConfig:
    """Sensitivity / false-positive-rate knobs of the drift detector.

    Attributes
    ----------
    alpha:
        Test level.  Under ``correction="bh"`` this bounds the expected
        fraction of falsely-flagged pairs (FDR); under ``"bonferroni"``
        the probability of flagging *any* stationary pair.  Lower =
        fewer false alarms, slower detection.
    correction:
        Multiple-testing control across the ``n(n-1)/2`` pair tests:
        ``"bh"`` (Benjamini-Hochberg), ``"bonferroni"``, or ``"none"``.
    statistic:
        ``"gtest"`` (2×4 likelihood-ratio χ² on the joint outcome
        distribution) or ``"ztest"`` (two-proportion z on the
        co-infection rate).
    min_window_beta:
        Both windows must hold at least this many processes before any
        pair is tested — asymptotic tests on tiny windows are noise.
    min_pair_obs:
        A pair is tested only when both windows observed it at least
        this often (its per-window ``β_ij``); guards the χ² approximation
        against near-empty contingency cells under missing data.
    """

    alpha: float = 0.01
    correction: str = "bh"
    statistic: str = "gtest"
    min_window_beta: int = 25
    min_pair_obs: int = 10

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigurationError(
                f"drift alpha must be in (0, 1), got {self.alpha}"
            )
        if self.correction not in CORRECTIONS:
            raise ConfigurationError(
                f"unknown drift correction {self.correction!r} "
                f"(choose from {', '.join(CORRECTIONS)})"
            )
        if self.statistic not in STATISTICS:
            raise ConfigurationError(
                f"unknown drift statistic {self.statistic!r} "
                f"(choose from {', '.join(STATISTICS)})"
            )
        if self.min_window_beta < 2:
            raise ConfigurationError(
                f"min_window_beta must be >= 2, got {self.min_window_beta}"
            )
        if self.min_pair_obs < 1:
            raise ConfigurationError(
                f"min_pair_obs must be >= 1, got {self.min_pair_obs}"
            )


@dataclass(frozen=True)
class PairDrift:
    """One flagged pair: its test statistic and p-value."""

    i: int
    j: int
    statistic: float
    p_value: float


@dataclass(frozen=True)
class DriftReport:
    """What one drift check concluded.

    ``drifted_pairs`` is sorted most-significant first; ``affected_nodes``
    is the sorted union of their endpoints — the dirty-node set a
    self-healing re-fit re-searches.  ``recent_beta`` records the window
    the check compared against the reference, so an adaptation can rebase
    onto exactly the window that was tested.
    """

    drifted_pairs: tuple[PairDrift, ...]
    affected_nodes: tuple[int, ...]
    n_pairs_tested: int
    alpha: float
    correction: str
    statistic: str
    reference_beta: int
    recent_beta: int
    p_threshold: float | None = None

    @property
    def drifted(self) -> bool:
        """Whether anything was flagged."""
        return bool(self.drifted_pairs)

    @property
    def n_flagged(self) -> int:
        return len(self.drifted_pairs)

    def summary(self) -> str:
        """One human line, for logs and CLI output."""
        if not self.n_pairs_tested:
            return (
                "drift check skipped (windows below "
                f"min_window_beta: reference={self.reference_beta}, "
                f"recent={self.recent_beta})"
            )
        if not self.drifted:
            return (
                f"no drift across {self.n_pairs_tested} pair(s) "
                f"(alpha={self.alpha}, {self.correction}/{self.statistic})"
            )
        return (
            f"drift: {self.n_flagged}/{self.n_pairs_tested} pair(s) flagged, "
            f"{len(self.affected_nodes)} node(s) affected "
            f"(alpha={self.alpha}, {self.correction}/{self.statistic}, "
            f"reference β={self.reference_beta}, recent β={self.recent_beta})"
        )


def _empty_report(
    config: DriftConfig, reference_beta: int, recent_beta: int
) -> DriftReport:
    return DriftReport(
        drifted_pairs=(),
        affected_nodes=(),
        n_pairs_tested=0,
        alpha=config.alpha,
        correction=config.correction,
        statistic=config.statistic,
        reference_beta=reference_beta,
        recent_beta=recent_beta,
        p_threshold=None,
    )


def _g_statistic(
    ref: dict[str, np.ndarray],
    rec: dict[str, np.ndarray],
    ref_tot: np.ndarray,
    rec_tot: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pair G statistic and degrees of freedom over the 2×4 table."""
    grand = ref_tot + rec_tot
    g = np.zeros_like(grand, dtype=np.float64)
    nonzero_columns = np.zeros_like(grand, dtype=np.int64)
    with np.errstate(divide="ignore", invalid="ignore"):
        for key in _JOINT_KEYS:
            column = ref[key] + rec[key]
            nonzero_columns += column > 0
            for observed, row_total in ((ref[key], ref_tot), (rec[key], rec_tot)):
                expected = row_total * column / np.where(grand > 0, grand, 1)
                ratio = observed / np.where(expected > 0, expected, 1)
                term = observed * np.log(np.where(ratio > 0, ratio, 1))
                g += np.where(observed > 0, term, 0.0)
    g *= 2.0
    # dof of an I×J table with empty outcome columns dropped: J' - 1
    # (row count is always 2 here).  Clip to >= 1 so degenerate pairs
    # (single surviving column, G == 0) get p == 1, not a 0-dof error.
    dof = np.maximum(nonzero_columns - 1, 1)
    return g, dof


def _z_statistic(
    ref: dict[str, np.ndarray],
    rec: dict[str, np.ndarray],
    ref_tot: np.ndarray,
    rec_tot: np.ndarray,
) -> np.ndarray:
    """Two-proportion z on the co-infection rate ``counts['11'] / β_ij``."""
    grand = ref_tot + rec_tot
    with np.errstate(divide="ignore", invalid="ignore"):
        p_ref = ref["11"] / np.where(ref_tot > 0, ref_tot, 1)
        p_rec = rec["11"] / np.where(rec_tot > 0, rec_tot, 1)
        pooled = (ref["11"] + rec["11"]) / np.where(grand > 0, grand, 1)
        variance = (
            pooled
            * (1.0 - pooled)
            * (
                1.0 / np.where(ref_tot > 0, ref_tot, 1)
                + 1.0 / np.where(rec_tot > 0, rec_tot, 1)
            )
        )
        z = np.where(
            variance > 0, (p_ref - p_rec) / np.sqrt(np.where(variance > 0, variance, 1)), 0.0
        )
    return z


def detect_drift(
    reference: SufficientStats,
    recent: SufficientStats,
    config: DriftConfig | None = None,
) -> DriftReport:
    """Test every eligible node pair for a reference-vs-recent shift.

    ``reference`` and ``recent`` are two disjoint windows of the same
    stream (typically ``model.stats.subtracted(recent)`` vs. the counts
    of the newest ``W`` processes).  Returns a :class:`DriftReport`; a
    window below :attr:`DriftConfig.min_window_beta` yields an empty
    report (``n_pairs_tested == 0``) rather than noisy verdicts.
    """
    config = config or DriftConfig()
    if not isinstance(reference, SufficientStats) or not isinstance(
        recent, SufficientStats
    ):
        raise DataError("detect_drift needs two SufficientStats windows")
    if reference.n_nodes != recent.n_nodes:
        raise DataError(
            f"cannot compare {reference.n_nodes}-node and "
            f"{recent.n_nodes}-node windows"
        )
    n = reference.n_nodes
    if (
        reference.beta < config.min_window_beta
        or recent.beta < config.min_window_beta
    ):
        return _empty_report(config, reference.beta, recent.beta)

    ref = {
        key: np.asarray(reference.counts[key], dtype=np.float64)
        for key in _JOINT_KEYS
    }
    rec = {
        key: np.asarray(recent.counts[key], dtype=np.float64)
        for key in _JOINT_KEYS
    }
    # Per-pair effective sample sizes: the four joint counts of a pair sum
    # to its observed-process count β_ij (== β when nothing is missing).
    ref_tot = sum(ref[key] for key in _JOINT_KEYS)
    rec_tot = sum(rec[key] for key in _JOINT_KEYS)

    eligible = np.triu(np.ones((n, n), dtype=bool), k=1)
    eligible &= ref_tot >= config.min_pair_obs
    eligible &= rec_tot >= config.min_pair_obs
    rows, cols = np.nonzero(eligible)
    m = int(rows.size)
    if m == 0:
        return _empty_report(config, reference.beta, recent.beta)

    # p-values come from scipy.special (a declared dependency); imported
    # lazily so `import repro.core` stays light for non-drift workloads.
    from scipy.special import chdtrc, erfc

    if config.statistic == "gtest":
        g, dof = _g_statistic(ref, rec, ref_tot, rec_tot)
        statistic = g[rows, cols]
        p_values = np.asarray(chdtrc(dof[rows, cols], statistic), dtype=np.float64)
    else:
        z = _z_statistic(ref, rec, ref_tot, rec_tot)
        statistic = np.abs(z[rows, cols])
        p_values = np.asarray(erfc(statistic / np.sqrt(2.0)), dtype=np.float64)

    if config.correction == "none":
        cutoff = config.alpha
    elif config.correction == "bonferroni":
        cutoff = config.alpha / m
    else:  # Benjamini-Hochberg step-up
        order = np.sort(p_values)
        thresholds = config.alpha * (np.arange(1, m + 1) / m)
        passing = np.nonzero(order <= thresholds)[0]
        cutoff = float(order[passing[-1]]) if passing.size else -np.inf
    rejected = p_values <= cutoff

    flagged = [
        PairDrift(
            i=int(rows[k]),
            j=int(cols[k]),
            statistic=float(statistic[k]),
            p_value=float(p_values[k]),
        )
        for k in np.nonzero(rejected)[0]
    ]
    flagged.sort(key=lambda pair: (pair.p_value, -pair.statistic, pair.i, pair.j))
    affected = sorted({node for pair in flagged for node in (pair.i, pair.j)})
    return DriftReport(
        drifted_pairs=tuple(flagged),
        affected_nodes=tuple(affected),
        n_pairs_tested=m,
        alpha=config.alpha,
        correction=config.correction,
        statistic=config.statistic,
        reference_beta=reference.beta,
        recent_beta=recent.beta,
        p_threshold=float(cutoff) if np.isfinite(cutoff) else None,
    )
