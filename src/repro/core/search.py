"""Greedy parent-set search (paper §IV-A and Algorithm 1, lines 6–20).

Given node ``v_i``'s pruned candidate set ``P_i``, the search grows a
parent set ``F_i`` that (locally) maximises the score ``g(v_i, F_i)``
subject to the Theorem-2 size bound ``|F_i| ≤ log2(φ_{F_i} + δ_i)``.

Two strategies are implemented (see DESIGN.md §1 for why both exist):

``greedy-rescoring``
    The procedure described in the paper's prose: starting from ``F_i = ∅``
    (whose score is Eq. 18), repeatedly evaluate every combination
    ``W ⊆ P_i \\ F_i`` with ``|W| ≤ max_combination_size``, pick the one
    whose union with ``F_i`` yields the highest score, and accept it only
    if it strictly improves on the current score and respects the bound.

``ranked-union``
    The literal Algorithm 1: score each combination **once** against the
    empty set, sort descending, and union combinations into ``F_i`` in
    that order while the bound admits them.

Both run in ``O(iterations · |combinations| · β · |F_i|)`` per node; the
pruning stage is what keeps ``|P_i|`` (the paper's ``κ``) small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from repro.core.config import TendsConfig
from repro.core.kernels import PackedStatuses, resolve_kernel
from repro.core.scoring import (
    FamilyCounts,
    delta_i,
    family_counts,
    log_likelihood,
    penalty,
    size_bound,
)
from repro.obs.trace import current_tracer
from repro.simulation.statuses import StatusMatrix

__all__ = [
    "ParentSearch",
    "SearchDiagnostics",
    "MAX_PARENT_SET_SIZE",
    "prune_candidates",
    "search_chunk",
]

#: Hard cap on |F_i|.  Theorem 2's bound |F| <= log2(phi + delta) is
#: self-satisfying once 2^|F| dwarfs beta (phi ~ 2^|F|), so on weak-signal
#: inputs the literal Algorithm-1 strategy would otherwise grow parent
#: sets without limit; 62 is the bit-packing limit of the contingency
#: counter and far beyond any statistically meaningful parent set.
MAX_PARENT_SET_SIZE = 62


@dataclass
class SearchDiagnostics:
    """Per-node bookkeeping from one parent search.

    Attributes
    ----------
    node:
        The child node searched for.
    n_candidates:
        ``|P_i|`` after pruning.
    n_evaluations:
        Number of (family-counts + score) evaluations performed.
    iterations:
        Greedy acceptance rounds (``greedy-rescoring``) or union steps
        attempted (``ranked-union``).
    final_score:
        ``g(v_i, F_i)`` of the returned parent set.
    empty_score:
        ``g(v_i, ∅)`` baseline.
    bound_hits:
        How many candidate extensions were rejected by the Theorem-2 bound.
    """

    node: int
    n_candidates: int = 0
    n_evaluations: int = 0
    iterations: int = 0
    final_score: float = 0.0
    empty_score: float = 0.0
    bound_hits: int = 0


def prune_candidates(
    mi: np.ndarray,
    node: int,
    threshold: float,
    config: TendsConfig,
    stable_pairs: np.ndarray | None = None,
) -> list[int]:
    """``P_i``: nodes whose MI with ``node`` strictly exceeds ``τ``,
    optionally capped to the strongest ``max_candidates``.  In stable
    mode, candidates must additionally have their bootstrap-CI lower
    bound above ``τ`` (``stable_pairs`` row).

    Module-level (rather than a :class:`~repro.core.tends.Tends` method)
    so the incremental engine can diff candidate sets against a previous
    fit through the exact same code path that produced them.
    """
    row = mi[node]
    above = row > threshold
    if stable_pairs is not None:
        above &= stable_pairs[node]
    candidates = np.nonzero(above)[0]
    candidates = candidates[candidates != node]
    cap = config.max_candidates
    if cap is not None and candidates.size > cap:
        # Stable sort on the negated MI: equal-MI candidates keep their
        # ascending-index order, so the cap is deterministic across
        # numpy versions (plain argsort[::-1] reverses tie order and
        # the default introsort is not even stable to begin with).
        order = np.argsort(-row[candidates], kind="stable")
        candidates = candidates[order[:cap]]
    return sorted(int(c) for c in candidates)


def search_chunk(
    search: "ParentSearch",
    items: Sequence[tuple[int, Sequence[int]]],
) -> list[tuple[list[int], SearchDiagnostics]]:
    """Run :meth:`ParentSearch.find_parents` over a chunk of
    ``(node, candidates)`` pairs, preserving their order.

    Module-level so the process execution backend can ship it to workers
    by reference (see :mod:`repro.core.executor`); the ``search`` context
    travels once per worker, the chunks once per task.

    On a traced run (the executor installs an ambient tracer in its
    worker wrappers — see :func:`repro.obs.trace.current_tracer`) each
    node's search records a ``search.node`` span; untraced runs hit the
    shared null tracer, whose span is a do-nothing context manager.
    """
    tracer = current_tracer()
    results: list[tuple[list[int], SearchDiagnostics]] = []
    for node, candidates in items:
        with tracer.span(
            "search.node", node=node, candidates=len(candidates)
        ) as span:
            parents, diag = search.find_parents(node, candidates)
            span.set(
                n_parents=len(parents),
                evaluations=diag.n_evaluations,
                iterations=diag.iterations,
            )
        results.append((parents, diag))
    return results


class ParentSearch:
    """Search for the most probable parent set of each node.

    Instances are picklable (the status matrix plus the frozen config),
    which is what lets the process execution backend share one search
    object per worker instead of re-serialising it per node.

    Parameters
    ----------
    statuses:
        Observed final infection statuses.
    config:
        TENDS configuration (strategy, combination size, improvement gate).
    """

    def __init__(self, statuses: StatusMatrix, config: TendsConfig) -> None:
        self.statuses = statuses
        self.config = config
        self._kernel = resolve_kernel(config.kernel)
        # Lazy bit-packed cache for the "packed" kernel backend; built on
        # first use so serial fits that never score pay nothing, and
        # dropped from pickles so workers re-pack locally (see
        # __getstate__) instead of shipping the words over the wire.
        self._packed: PackedStatuses | None = None

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_packed"] = None
        return state

    def _family_counts(self, node: int, parents: Sequence[int]) -> FamilyCounts:
        """Contingency counts through the configured kernel backend."""
        if self._kernel == "packed":
            if self._packed is None:
                self._packed = PackedStatuses.from_statuses(self.statuses)
            return family_counts(self.statuses, node, parents, packed=self._packed)
        return family_counts(self.statuses, node, parents)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def find_parents(
        self, node: int, candidates: Sequence[int]
    ) -> tuple[list[int], SearchDiagnostics]:
        """Return ``(parent_list, diagnostics)`` for one child node."""
        diag = SearchDiagnostics(node=node, n_candidates=len(candidates))
        pool = [int(c) for c in candidates if int(c) != node]
        diag.empty_score = self._score(node, [], diag)
        if not pool:
            diag.final_score = diag.empty_score
            return [], diag
        delta = delta_i(self.statuses, node)
        if self.config.search_strategy == "ranked-union":
            parents = self._ranked_union(node, pool, delta, diag)
        else:
            parents = self._greedy_rescoring(node, pool, delta, diag)
        return parents, diag

    # ------------------------------------------------------------------
    # strategies
    # ------------------------------------------------------------------
    def _greedy_rescoring(
        self,
        node: int,
        pool: list[int],
        delta: float,
        diag: SearchDiagnostics,
    ) -> list[int]:
        current_parents: list[int] = []
        current_score = diag.empty_score
        available = set(pool)
        while available:
            best_combo: tuple[int, ...] | None = None
            best_score = -np.inf
            for combo in self._combinations(sorted(available)):
                trial = current_parents + list(combo)
                if len(trial) > MAX_PARENT_SET_SIZE:
                    diag.bound_hits += 1
                    continue
                counts = self._family_counts(node, trial)
                diag.n_evaluations += 1
                if len(trial) > size_bound(counts.phi, delta):
                    diag.bound_hits += 1
                    continue
                score = log_likelihood(counts) - penalty(counts)
                if score > best_score:
                    best_score = score
                    best_combo = combo
            if best_combo is None:
                break
            if best_score <= current_score + self.config.min_improvement:
                break
            diag.iterations += 1
            current_parents.extend(best_combo)
            current_score = best_score
            available.difference_update(best_combo)
        diag.final_score = current_score
        return sorted(current_parents)

    def _ranked_union(
        self,
        node: int,
        pool: list[int],
        delta: float,
        diag: SearchDiagnostics,
    ) -> list[int]:
        scored: list[tuple[float, tuple[int, ...]]] = []
        for combo in self._combinations(pool):
            counts = self._family_counts(node, list(combo))
            diag.n_evaluations += 1
            if len(combo) > size_bound(counts.phi, delta):
                diag.bound_hits += 1
                continue
            score = log_likelihood(counts) - penalty(counts)
            scored.append((score, combo))
        scored.sort(key=lambda item: (-item[0], item[1]))

        parents: set[int] = set()
        for score, combo in scored:
            union = parents | set(combo)
            if union == parents:
                continue
            if len(union) > MAX_PARENT_SET_SIZE:
                diag.bound_hits += 1
                continue
            diag.iterations += 1
            counts = self._family_counts(node, sorted(union))
            diag.n_evaluations += 1
            if len(union) > size_bound(counts.phi, delta):
                diag.bound_hits += 1
                continue
            parents = union
        result = sorted(parents)
        diag.final_score = self._score(node, result, diag)
        return result

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _combinations(self, pool: Sequence[int]) -> Iterable[tuple[int, ...]]:
        """All combinations of ``pool`` up to the configured size."""
        top = min(self.config.max_combination_size, len(pool))
        for size in range(1, top + 1):
            yield from combinations(pool, size)

    def _score(self, node: int, parents: list[int], diag: SearchDiagnostics) -> float:
        counts = self._family_counts(node, parents)
        diag.n_evaluations += 1
        return log_likelihood(counts) - penalty(counts)
