"""Data-driven hyperparameter selection for TENDS (extension).

The reproduction found one regime where the paper's auto-threshold τ is
not enough: when cascades saturate (high α or μ, dense graphs), the IMI
distribution loses its bimodality, the 2-means τ under-prunes, and the
greedy over-selects (EXPERIMENTS.md, honest-deviation register #1).

This module adds the standard statistical remedy — model selection on
held-out data, requiring **no ground truth**:

1. split the β processes into a training and a validation set,
2. fit TENDS on the training split at each candidate ``threshold_scale``,
3. score every fitted topology by the *predictive* log-likelihood of the
   validation processes under Laplace-smoothed CPTs estimated from the
   training split,
4. return the scale with the highest held-out likelihood.

A caveat the bench (``benchmarks/bench_extension_model_selection.py``)
documents honestly: predictive likelihood measures *explanatory* power,
and spurious-but-correlated parents (two-hop neighbours, community
co-members) genuinely help prediction, so the selected scale tracks the
F-optimal scale only loosely.  Measured on NetSci at β = 150 it recovers
part of the oracle's gain in the saturated α = 0.25 regime but can trade
~0.1 F for a more predictive model at the paper's α = 0.15 — use it as a
starting point when no ground truth exists, not as an oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import TendsConfig
from repro.core.stats import SufficientStats
from repro.core.tends import Tends, TendsResult
from repro.exceptions import ConfigurationError, DataError
from repro.simulation.statuses import StatusMatrix
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_fraction

__all__ = [
    "predictive_log_likelihood",
    "ThresholdSelection",
    "select_threshold_scale",
]


def predictive_log_likelihood(
    train: StatusMatrix,
    validation: StatusMatrix,
    parent_sets: Sequence[Sequence[int]],
) -> float:
    """Held-out log2-likelihood of ``validation`` under train-fitted CPTs.

    For each node, the conditional probability table over its parent
    patterns is estimated from ``train`` with Laplace (+1/+2) smoothing;
    validation patterns never seen in training fall back to the node's
    smoothed marginal.
    """
    if train.n_nodes != validation.n_nodes:
        raise DataError(
            f"train covers {train.n_nodes} nodes, validation {validation.n_nodes}"
        )
    if len(parent_sets) != train.n_nodes:
        raise DataError(
            f"{len(parent_sets)} parent sets for {train.n_nodes} nodes"
        )
    total = 0.0
    for child, parents in enumerate(parent_sets):
        parents = list(parents)
        # Smoothed CPT from the training split.
        pattern_ids, inverse, totals = train.observed_pattern_counts(parents)
        child_train = train.column(child).astype(np.float64)
        infected = np.bincount(
            inverse, weights=child_train, minlength=totals.shape[0]
        )
        cpt = {
            int(pattern): (infected[i] + 1.0) / (totals[i] + 2.0)
            for i, pattern in enumerate(pattern_ids.tolist())
        }
        marginal = (float(child_train.sum()) + 1.0) / (train.beta + 2.0)

        # Validation patterns, bit-packed the same way.
        if parents:
            weights = 1 << np.arange(len(parents), dtype=np.int64)
            codes = validation.values[:, parents].astype(np.int64) @ weights
        else:
            codes = np.zeros(validation.beta, dtype=np.int64)
        child_valid = validation.column(child)
        for code, status in zip(codes.tolist(), child_valid.tolist()):
            p_infected = cpt.get(code, marginal)
            p = p_infected if status else 1.0 - p_infected
            total += math.log2(p)
    return total


@dataclass(frozen=True)
class ThresholdSelection:
    """Outcome of :func:`select_threshold_scale`.

    Attributes
    ----------
    best_scale:
        The ``threshold_scale`` with the highest held-out likelihood.
    scores:
        ``{scale: predictive log2-likelihood}`` for every candidate.
    result:
        The final :class:`TendsResult` — refit on **all** processes at the
        selected scale.
    """

    best_scale: float
    scores: dict[float, float]
    result: TendsResult


def select_threshold_scale(
    statuses: StatusMatrix,
    scales: Sequence[float] = (0.6, 0.8, 1.0, 1.5, 2.0),
    *,
    heldout_fraction: float = 0.3,
    config: TendsConfig | None = None,
    seed: RandomState = None,
) -> ThresholdSelection:
    """Pick TENDS's ``threshold_scale`` by held-out predictive likelihood.

    Parameters
    ----------
    statuses:
        All observed processes; a random ``heldout_fraction`` of them is
        reserved for validation during selection.
    scales:
        Candidate multipliers of the auto-selected τ.
    config:
        Base configuration; its own ``threshold_scale`` is overridden by
        each candidate.
    seed:
        Controls the train/validation split.

    Returns
    -------
    ThresholdSelection
        With the winning scale and a final fit on the full data.
    """
    if not scales:
        raise ConfigurationError("provide at least one candidate scale")
    check_fraction("heldout_fraction", heldout_fraction)
    n_valid = max(1, int(round(heldout_fraction * statuses.beta)))
    if n_valid >= statuses.beta:
        raise ConfigurationError(
            f"held-out fraction {heldout_fraction} leaves no training processes"
        )
    rng = as_generator(seed)
    order = rng.permutation(statuses.beta)
    validation = statuses.subset(order[:n_valid])
    train = statuses.subset(order[n_valid:])

    base = config or TendsConfig()
    # Every candidate scale refits the same training split, so count its
    # sufficient statistics once and share them across the fits (stage 1
    # is a pure function of these counts).  Not applicable under
    # zero-fill, where fit() transforms the observations first.
    train_stats: SufficientStats | None = None
    if not (train.has_missing and base.missing == "zero-fill"):
        train_stats = SufficientStats.from_statuses(train)
    scores: dict[float, float] = {}
    for scale in scales:
        fitted = Tends(base.with_overrides(threshold_scale=float(scale))).fit(
            train, stats=train_stats
        )
        scores[float(scale)] = predictive_log_likelihood(
            train, validation, [list(p) for p in fitted.parent_sets]
        )
    best_scale = max(scores, key=lambda s: scores[s])
    final = Tends(base.with_overrides(threshold_scale=best_scale)).fit(statuses)
    return ThresholdSelection(best_scale=best_scale, scores=scores, result=final)
