"""Modified 2-means with one centroid pinned at zero (Algorithm 1, line 5).

TENDS needs a data-driven threshold ``τ`` separating the "essentially
uncorrelated" IMI values (a dense cluster hugging 0) from the significant
positive ones.  The paper runs K-means with ``K = 2`` where one mean is
*fixed at 0 through all iterations*; ``τ`` is the largest value assigned to
the zero cluster.

With one centroid frozen, each iteration reduces to: assign every value to
whichever of {0, c} is closer (i.e. values below ``c / 2`` go to the zero
cluster), then recompute ``c`` as the mean of its cluster.  This is a
monotone fixed-point iteration on a sorted array, so it converges in a
handful of steps.

>>> import numpy as np
>>> values = np.array([0.01, 0.02, 0.015, 0.5, 0.55, 0.6])
>>> result = fixed_zero_two_means(values)
>>> result.threshold
0.02
>>> result.n_upper_cluster
3
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError

__all__ = ["TwoMeansResult", "fixed_zero_two_means"]


@dataclass(frozen=True)
class TwoMeansResult:
    """Outcome of the fixed-zero 2-means clustering.

    Attributes
    ----------
    threshold:
        ``τ`` — the largest value in the zero cluster (0.0 when that
        cluster is empty, meaning nothing gets pruned).
    upper_centroid:
        Final position of the free centroid.
    n_zero_cluster / n_upper_cluster:
        Cluster sizes.
    iterations:
        Number of update iterations until the assignment stabilised.
    """

    threshold: float
    upper_centroid: float
    n_zero_cluster: int
    n_upper_cluster: int
    iterations: int


def fixed_zero_two_means(
    values: np.ndarray,
    *,
    max_iterations: int = 100,
    tolerance: float = 1e-12,
) -> TwoMeansResult:
    """Cluster non-negative 1-D ``values`` into {near-zero, significant}.

    Parameters
    ----------
    values:
        Non-negative observations (negative entries are a caller bug and
        raise :class:`~repro.exceptions.DataError`; the TENDS pipeline
        removes negative IMI values before calling this).
    max_iterations:
        Iteration cap; convergence typically takes < 10 iterations.
    tolerance:
        Centroid-movement threshold for declaring convergence.

    Returns
    -------
    TwoMeansResult
        With ``threshold`` = the largest value in the zero cluster.

    Notes
    -----
    Degenerate inputs are handled explicitly: an empty array or an
    all-equal array yields ``threshold = 0`` and puts everything in the
    upper cluster, so that pruning never removes *all* candidates merely
    because the values are uniform.
    """
    data = np.asarray(values, dtype=np.float64).ravel()
    if data.size and float(data.min()) < 0:
        raise DataError("fixed_zero_two_means expects non-negative values")
    if data.size == 0:
        return TwoMeansResult(0.0, 0.0, 0, 0, 0)
    spread = float(data.max() - data.min())
    if spread <= tolerance:
        # No structure to split: treat every value as significant.
        return TwoMeansResult(0.0, float(data.mean()), 0, int(data.size), 0)

    ordered = np.sort(data)
    centroid = float(ordered[-1])  # free centroid starts at the max
    boundary_index = -1
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # Values below centroid/2 are closer to 0 than to the centroid.
        split = centroid / 2.0
        new_boundary = int(np.searchsorted(ordered, split, side="right"))
        upper = ordered[new_boundary:]
        if upper.size == 0:
            # Centroid collapsed past every point; everything is "zero".
            boundary_index = ordered.size
            break
        new_centroid = float(upper.mean())
        moved = abs(new_centroid - centroid)
        centroid = new_centroid
        if new_boundary == boundary_index and moved <= tolerance:
            break
        boundary_index = new_boundary

    n_zero = boundary_index if boundary_index >= 0 else 0
    n_zero = min(max(n_zero, 0), ordered.size)
    threshold = float(ordered[n_zero - 1]) if n_zero > 0 else 0.0
    return TwoMeansResult(
        threshold=threshold,
        upper_centroid=centroid,
        n_zero_cluster=n_zero,
        n_upper_cluster=int(ordered.size - n_zero),
        iterations=iterations,
    )
