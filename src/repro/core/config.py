"""Configuration for the TENDS estimator."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_non_negative, check_positive_int

__all__ = ["TendsConfig"]

MiKind = Literal["infection", "traditional"]
SearchStrategy = Literal["greedy-rescoring", "ranked-union"]
ExecutorStrategy = Literal["serial", "thread", "process"]


@dataclass(frozen=True)
class TendsConfig:
    """All tunables of the TENDS pipeline, with paper defaults.

    Attributes
    ----------
    mi_kind:
        ``"infection"`` (paper default, Eq. 25) or ``"traditional"``
        (ablation of Fig. 10–11: plain MI, which cannot distinguish
        positive from negative infection correlation).
    threshold:
        Explicit pruning threshold ``τ``.  ``None`` (default) selects it
        with the fixed-zero 2-means of Algorithm 1 line 5.
    threshold_scale:
        Multiplier applied to the auto-selected ``τ`` — the knob of the
        Fig. 10–11 sweeps (0.4τ … 2τ).  Ignored when ``threshold`` is set.
    search_strategy:
        ``"greedy-rescoring"`` (default): re-score every candidate
        extension against the current parent set and stop when no
        extension improves the score — the procedure described in §IV-A's
        prose.  ``"ranked-union"``: score all combinations once up front
        and union them in descending-score order while the Theorem-2 bound
        holds — the literal transcription of Algorithm 1 lines 13–20.
    max_combination_size:
        Largest candidate-combination ``|W|`` enumerated per search step
        (the paper's ``η``).  1 reproduces the paper's accuracy at the
        documented polynomial cost; 2+ explores pairwise extensions.
    max_candidates:
        Optional hard cap on ``|P_i|``: keep only the top-IMI candidates.
        ``None`` disables the cap (paper behaviour).  The cap bounds the
        worst case on dense, high-β inputs where the 2-means threshold
        prunes little.
    min_improvement:
        Minimum score gain required to accept a greedy extension
        (``greedy-rescoring`` only).  0 is the paper behaviour.
    executor:
        Stage-3 execution backend: ``"serial"`` (the reference loop),
        ``"thread"``, or ``"process"`` (see :mod:`repro.core.executor`).
        ``None`` (default) falls back to the ``REPRO_EXECUTOR``
        environment variable, then to ``"serial"``.  All backends produce
        bit-identical results; only wall-clock changes.
    n_jobs:
        Worker count for the parallel backends.  ``-1`` means all CPUs;
        ``None`` (default) falls back to ``REPRO_N_JOBS``, then to 1.
    chunk_size:
        Nodes per parallel task.  ``None`` (default) picks a size that
        oversubscribes each worker ~4× for load balancing.
    max_attempts:
        Execution attempts per parallel chunk before its failure is
        permanent (see :class:`repro.core.executor.RetryPolicy`).
        ``None`` (default) falls back to ``REPRO_MAX_ATTEMPTS``, then 3.
    chunk_timeout:
        Per-chunk wall-clock budget in seconds for the pool backends.
        ``None`` (default) falls back to ``REPRO_CHUNK_TIMEOUT``, then
        unlimited.
    executor_fallback:
        Whether an unusable backend may fall back along
        ``process → thread → serial`` instead of failing the fit.
        ``None`` (default) enables the fallback.
    audit:
        Observation-audit policy applied at the top of :meth:`Tends.fit`:
        ``"warn"`` (default) emits a
        :class:`~repro.exceptions.DataQualityWarning` on degenerate
        observations (all-zero / all-one cascades, never- or
        always-infected nodes), ``"strict"`` raises
        :class:`~repro.exceptions.DataError`, ``"ignore"`` skips the
        audit.
    """

    mi_kind: MiKind = "infection"
    threshold: float | None = None
    threshold_scale: float = 1.0
    search_strategy: SearchStrategy = "greedy-rescoring"
    max_combination_size: int = 1
    max_candidates: int | None = None
    min_improvement: float = 0.0
    executor: ExecutorStrategy | None = None
    n_jobs: int | None = None
    chunk_size: int | None = None
    max_attempts: int | None = None
    chunk_timeout: float | None = None
    executor_fallback: bool | None = None
    audit: Literal["warn", "strict", "ignore"] = "warn"

    def __post_init__(self) -> None:
        if self.mi_kind not in ("infection", "traditional"):
            raise ConfigurationError(f"unknown mi_kind: {self.mi_kind!r}")
        if self.search_strategy not in ("greedy-rescoring", "ranked-union"):
            raise ConfigurationError(f"unknown search_strategy: {self.search_strategy!r}")
        check_positive_int("max_combination_size", self.max_combination_size)
        check_non_negative("threshold_scale", self.threshold_scale)
        check_non_negative("min_improvement", self.min_improvement)
        if self.threshold is not None:
            check_non_negative("threshold", self.threshold)
        if self.max_candidates is not None:
            check_positive_int("max_candidates", self.max_candidates)
        if self.executor is not None and self.executor not in (
            "serial",
            "thread",
            "process",
        ):
            raise ConfigurationError(f"unknown executor: {self.executor!r}")
        if self.n_jobs is not None and self.n_jobs != -1:
            check_positive_int("n_jobs", self.n_jobs)
        if self.chunk_size is not None:
            check_positive_int("chunk_size", self.chunk_size)
        if self.max_attempts is not None:
            check_positive_int("max_attempts", self.max_attempts)
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ConfigurationError(
                f"chunk_timeout must be positive, got {self.chunk_timeout}"
            )
        if self.audit not in ("warn", "strict", "ignore"):
            raise ConfigurationError(f"unknown audit policy: {self.audit!r}")

    def with_overrides(self, **changes) -> "TendsConfig":
        """Functional update helper (dataclass ``replace`` wrapper)."""
        return replace(self, **changes)
