"""Configuration for the TENDS estimator."""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Literal

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_non_negative, check_positive_int

__all__ = ["TendsConfig"]

MiKind = Literal["infection", "traditional"]
SearchStrategy = Literal["greedy-rescoring", "ranked-union"]
ExecutorStrategy = Literal["serial", "thread", "process"]
KernelStrategy = Literal["numpy", "packed"]
MissingPolicy = Literal["pairwise", "refuse", "zero-fill"]


@dataclass(frozen=True)
class TendsConfig:
    """All tunables of the TENDS pipeline, with paper defaults.

    Attributes
    ----------
    mi_kind:
        ``"infection"`` (paper default, Eq. 25) or ``"traditional"``
        (ablation of Fig. 10–11: plain MI, which cannot distinguish
        positive from negative infection correlation).
    threshold:
        Explicit pruning threshold ``τ``.  ``None`` (default) selects it
        with the fixed-zero 2-means of Algorithm 1 line 5.  The string
        ``"stable"`` also auto-selects ``τ`` but additionally
        stability-screens the candidates: bootstrap resampling over the
        diffusion processes yields per-pair IMI confidence intervals, and
        only pairs whose CI **lower bound** clears ``τ`` survive pruning
        (pairs whose interval straddles ``τ`` are too noise-sensitive to
        trust).  See :mod:`repro.robustness.bootstrap`.
    threshold_scale:
        Multiplier applied to the auto-selected ``τ`` — the knob of the
        Fig. 10–11 sweeps (0.4τ … 2τ).  Ignored when ``threshold`` is set.
    search_strategy:
        ``"greedy-rescoring"`` (default): re-score every candidate
        extension against the current parent set and stop when no
        extension improves the score — the procedure described in §IV-A's
        prose.  ``"ranked-union"``: score all combinations once up front
        and union them in descending-score order while the Theorem-2 bound
        holds — the literal transcription of Algorithm 1 lines 13–20.
    max_combination_size:
        Largest candidate-combination ``|W|`` enumerated per search step
        (the paper's ``η``).  1 reproduces the paper's accuracy at the
        documented polynomial cost; 2+ explores pairwise extensions.
    max_candidates:
        Optional hard cap on ``|P_i|``: keep only the top-IMI candidates.
        ``None`` disables the cap (paper behaviour).  The cap bounds the
        worst case on dense, high-β inputs where the 2-means threshold
        prunes little.
    min_improvement:
        Minimum score gain required to accept a greedy extension
        (``greedy-rescoring`` only).  0 is the paper behaviour.
    executor:
        Stage-3 execution backend: ``"serial"`` (the reference loop),
        ``"thread"``, or ``"process"`` (see :mod:`repro.core.executor`).
        ``None`` (default) falls back to the ``REPRO_EXECUTOR``
        environment variable, then to ``"serial"``.  All backends produce
        bit-identical results; only wall-clock changes.
    n_jobs:
        Worker count for the parallel backends.  ``-1`` means all CPUs;
        ``None`` (default) falls back to ``REPRO_N_JOBS``, then to 1.
    chunk_size:
        Nodes per parallel task.  ``None`` (default) picks a size that
        oversubscribes each worker ~4× for load balancing.
    max_attempts:
        Execution attempts per parallel chunk before its failure is
        permanent (see :class:`repro.core.executor.RetryPolicy`).
        ``None`` (default) falls back to ``REPRO_MAX_ATTEMPTS``, then 3.
    chunk_timeout:
        Per-chunk wall-clock budget in seconds for the pool backends.
        ``None`` (default) falls back to ``REPRO_CHUNK_TIMEOUT``, then
        unlimited.
    executor_fallback:
        Whether an unusable backend may fall back along
        ``process → thread → serial`` instead of failing the fit.
        ``None`` (default) enables the fallback.
    kernel:
        Counting-kernel backend for the pair-count and contingency hot
        paths: ``"numpy"`` (the reference dense-matmul estimators) or
        ``"packed"`` (bit-packed popcount kernels, see
        :mod:`repro.core.kernels`).  ``None`` (default) falls back to the
        ``REPRO_KERNEL`` environment variable, then to ``"numpy"``.  Both
        backends produce bit-identical results; only wall-clock changes.
    audit:
        Observation-audit policy applied at the top of :meth:`Tends.fit`:
        ``"warn"`` (default) emits a
        :class:`~repro.exceptions.DataQualityWarning` on degenerate
        observations (all-zero / all-one cascades, never- or
        always-infected nodes), ``"strict"`` raises
        :class:`~repro.exceptions.DataError`, ``"ignore"`` skips the
        audit.
    missing:
        Policy for status matrices whose observation mask marks entries
        unobserved.  ``"pairwise"`` (default): estimate IMI, the scoring
        counts ``N_ij``, and the Theorem-2 bound over pairwise/family-
        complete processes with per-pair effective sample sizes — missing
        data degrades estimates gracefully instead of biasing them.
        ``"zero-fill"``: drop the mask and treat unobserved entries as 0
        (the legacy, biased behaviour, kept for comparison).
        ``"refuse"``: raise :class:`~repro.exceptions.DataError` on any
        missing entry.  Fully-observed matrices take the identical code
        path under every policy.
    bootstrap_samples:
        Number of bootstrap resamples ``B`` for IMI uncertainty
        quantification.  ``None`` (default) disables the bootstrap unless
        ``threshold="stable"`` requires it (then 100 is used).  Setting a
        value always computes per-edge confidence scores
        (:attr:`~repro.core.tends.TendsResult.edge_confidence`).
    bootstrap_seed:
        Seed for the bootstrap resampling streams.  Defaults to 0 so fits
        are deterministic out of the box; pass another int to vary the
        resampling.
    ci_level:
        Two-sided confidence level of the bootstrap intervals used by the
        ``threshold="stable"`` screening (default 0.95).
    trace:
        Observability switch.  ``True`` records nested spans and an
        algorithm-metrics snapshot during :meth:`~repro.core.tends.Tends.fit`
        (including worker spans shipped back from parallel backends) and
        attaches them as :attr:`~repro.core.tends.TendsResult.telemetry`.
        ``False`` (default) runs the zero-overhead no-op instrumentation
        path; inference results are bit-identical either way.  See
        :mod:`repro.obs` and docs/OBSERVABILITY.md.
    memory:
        Per-stage memory attribution switch.  ``True`` runs the fit
        under :class:`~repro.obs.memory.MemoryTracker` (tracemalloc +
        RSS), recording ``alloc_bytes`` / ``peak_alloc_bytes`` /
        ``peak_rss_bytes`` per pipeline stage on the result telemetry
        and in run manifests.  Opt-in separately from ``trace`` because
        tracemalloc taxes every allocation while tracing; inference
        results are bit-identical either way.
    tile_size:
        Side length of the square (i, j) pair-space tiles used by the
        tiled sufficient-statistics layer (:mod:`repro.core.tiles`).
        ``None`` (default) keeps the dense path: full n×n count and IMI
        matrices in memory.  Setting a value makes :meth:`Tends.fit`
        compute stage 1 tile-by-tile (each tile fanned out through the
        stage-3 executor with the same retry/fallback semantics) and
        spill the counts to disk, so peak residency stays
        ~O(n·tile + tile²) instead of O(n²) for the counting stage.
        Both paths are bit-identical; only memory and wall-clock change.
    spill_dir:
        Directory for spilled tiles and the memory-mapped IMI matrix.
        ``None`` (default) uses a private temporary directory that lives
        as long as the fitted statistics.  Pointing it at a persistent
        path makes interrupted fits resumable: tiles already on disk
        with valid checksums are not recomputed.
    max_resident_tiles:
        LRU cap on the number of spilled tiles simultaneously mapped
        into memory while assembling the IMI matrix or streaming the
        stats checksum.  ``None`` (default) keeps a small default cap
        (see :data:`repro.core.tiles.DEFAULT_MAX_RESIDENT_TILES`).
    """

    mi_kind: MiKind = "infection"
    threshold: float | Literal["stable"] | None = None
    threshold_scale: float = 1.0
    search_strategy: SearchStrategy = "greedy-rescoring"
    max_combination_size: int = 1
    max_candidates: int | None = None
    min_improvement: float = 0.0
    executor: ExecutorStrategy | None = None
    n_jobs: int | None = None
    chunk_size: int | None = None
    max_attempts: int | None = None
    chunk_timeout: float | None = None
    executor_fallback: bool | None = None
    kernel: KernelStrategy | None = None
    audit: Literal["warn", "strict", "ignore"] = "warn"
    missing: MissingPolicy = "pairwise"
    bootstrap_samples: int | None = None
    bootstrap_seed: int = 0
    ci_level: float = 0.95
    trace: bool = False
    memory: bool = False
    tile_size: int | None = None
    spill_dir: str | None = None
    max_resident_tiles: int | None = None

    def __post_init__(self) -> None:
        if self.mi_kind not in ("infection", "traditional"):
            raise ConfigurationError(f"unknown mi_kind: {self.mi_kind!r}")
        if self.search_strategy not in ("greedy-rescoring", "ranked-union"):
            raise ConfigurationError(f"unknown search_strategy: {self.search_strategy!r}")
        check_positive_int("max_combination_size", self.max_combination_size)
        check_non_negative("threshold_scale", self.threshold_scale)
        check_non_negative("min_improvement", self.min_improvement)
        if isinstance(self.threshold, str):
            if self.threshold != "stable":
                raise ConfigurationError(
                    f"threshold must be a number, None, or 'stable', "
                    f"got {self.threshold!r}"
                )
        elif self.threshold is not None:
            check_non_negative("threshold", self.threshold)
        if self.max_candidates is not None:
            check_positive_int("max_candidates", self.max_candidates)
        if self.executor is not None and self.executor not in (
            "serial",
            "thread",
            "process",
        ):
            raise ConfigurationError(f"unknown executor: {self.executor!r}")
        if self.kernel is not None and self.kernel not in ("numpy", "packed"):
            raise ConfigurationError(f"unknown kernel backend: {self.kernel!r}")
        if self.n_jobs is not None and self.n_jobs != -1:
            check_positive_int("n_jobs", self.n_jobs)
        if self.chunk_size is not None:
            check_positive_int("chunk_size", self.chunk_size)
        if self.max_attempts is not None:
            check_positive_int("max_attempts", self.max_attempts)
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ConfigurationError(
                f"chunk_timeout must be positive, got {self.chunk_timeout}"
            )
        if self.audit not in ("warn", "strict", "ignore"):
            raise ConfigurationError(f"unknown audit policy: {self.audit!r}")
        if self.missing not in ("pairwise", "refuse", "zero-fill"):
            raise ConfigurationError(f"unknown missing policy: {self.missing!r}")
        if self.bootstrap_samples is not None:
            check_positive_int("bootstrap_samples", self.bootstrap_samples)
        check_non_negative("bootstrap_seed", self.bootstrap_seed)
        if not 0.0 < self.ci_level < 1.0:
            raise ConfigurationError(
                f"ci_level must be in (0, 1), got {self.ci_level}"
            )
        if not isinstance(self.trace, bool):
            raise ConfigurationError(
                f"trace must be a boolean, got {self.trace!r}"
            )
        if not isinstance(self.memory, bool):
            raise ConfigurationError(
                f"memory must be a boolean, got {self.memory!r}"
            )
        if self.tile_size is not None:
            check_positive_int("tile_size", self.tile_size)
        if self.max_resident_tiles is not None:
            check_positive_int("max_resident_tiles", self.max_resident_tiles)
        if self.spill_dir is not None and not isinstance(self.spill_dir, str):
            # Accept Path-likes but store a plain string so as_dict()
            # stays JSON-serialisable (model snapshots embed the config).
            object.__setattr__(self, "spill_dir", str(self.spill_dir))

    def with_overrides(self, **changes) -> "TendsConfig":
        """Functional update helper (dataclass ``replace`` wrapper)."""
        return replace(self, **changes)

    def as_dict(self) -> dict:
        """All fields as a plain JSON-serialisable dict."""
        return asdict(self)

    #: Fields that determine *what* the pipeline infers.  Execution knobs
    #: (executor/n_jobs/chunking/retries, the counting-kernel backend,
    #: the tiling/spill layout), audit policy, and tracing change only
    #: how or how observably the work runs — every backend is
    #: bit-identical — so they are excluded from the algorithm
    #: fingerprint (a model saved from a numpy-kernel dense fit can be
    #: resumed by a packed-kernel tiled service, and vice versa).
    ALGORITHM_FIELDS = (
        "mi_kind",
        "threshold",
        "threshold_scale",
        "search_strategy",
        "max_combination_size",
        "max_candidates",
        "min_improvement",
        "missing",
    )

    def algorithm_fingerprint(self) -> str:
        """SHA-256 over the result-affecting configuration fields.

        Used by :class:`repro.core.tends.TendsModel` to refuse resuming a
        cached model under a configuration that would have produced
        different statistics or searches.  Two configs that differ only in
        execution/observability knobs share a fingerprint, so a model
        saved from a serial fit can be updated by a process-parallel
        service.
        """
        payload = {name: getattr(self, name) for name in self.ALGORITHM_FIELDS}
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(encoded.encode()).hexdigest()
