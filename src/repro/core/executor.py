"""Pluggable, fault-tolerant execution backends for the parent searches.

The TENDS score is decomposable (DESIGN.md §1), so stage 3 of
:meth:`~repro.core.tends.Tends.fit` — one parent search per node — is
embarrassingly parallel.  This module turns that observation into a
backend abstraction:

* :class:`ExecutionPlan` resolves the user-facing knobs (``executor``,
  ``n_jobs``, ``chunk_size``; ``None`` falls back to the
  ``REPRO_EXECUTOR`` / ``REPRO_N_JOBS`` environment variables, then to
  serial) into a concrete strategy;
* :class:`RetryPolicy` resolves the recovery knobs (``max_attempts``,
  ``backoff_seconds``, ``chunk_timeout``, ``fallback``);
* :class:`ParallelExecutor` maps a pure chunk function over an item list
  under that plan, with three strategies:

  ``serial``
      The plain loop — zero overhead, the reference behaviour.
  ``thread``
      A :class:`~concurrent.futures.ThreadPoolExecutor`.  The searches
      are numpy-heavy, so some of the work releases the GIL; threads
      share the context for free.
  ``process``
      A :class:`~concurrent.futures.ProcessPoolExecutor`.  The shared
      context (for TENDS: the :class:`~repro.core.search.ParentSearch`,
      i.e. the status matrix plus config) is shipped **once per worker**
      through the pool initializer, not once per task — tasks then carry
      only their chunk of items.

Fault tolerance (the recovery contract)
---------------------------------------
A long sweep must not lose every finished chunk to one fault.  The
executor therefore recovers from three fault classes:

* **Transient chunk errors** — a chunk raising an exception is retried
  up to ``max_attempts`` times with exponential backoff; the original
  exception propagates only once the budget is exhausted.
* **Dead workers** — a ``BrokenProcessPool`` (worker killed, segfaulted,
  OOM-reaped, or unpicklable context) tears down and rebuilds the pool
  and re-runs the unfinished chunks.  If the pool keeps breaking, the
  executor *falls back* along ``process → thread → serial`` (disable
  with ``fallback=False``), raising
  :class:`~repro.exceptions.WorkerCrashError` only when the last
  backend fails too.
* **Hung chunks** — with ``chunk_timeout`` set, a chunk whose result
  does not arrive in time is charged a failed attempt, the (possibly
  hung) pool is replaced, and the chunk re-runs; exhausting the budget
  raises :class:`~repro.exceptions.MethodTimeoutError`.  The serial
  backend cannot preempt a running chunk, so timeouts do not apply
  there, and a timeout never falls back to a backend that could not
  interrupt the same hang.

``KeyboardInterrupt`` / ``SystemExit`` are never swallowed: pending
futures are cancelled, worker processes are terminated (no orphans), and
the signal re-raises to the caller.

Because recovery may run the same chunk more than once (a timed-out
thread keeps running while its replacement starts), chunk functions must
be **pure**: same chunk in, same results out, no side effects.

Determinism is structural, not incidental: items are split into
contiguous chunks, chunk results are keyed by chunk index whatever order
(or attempt) they complete in, and the flattened output preserves item
order exactly.  Whatever the worker count, backend, or fault sequence,
the merged result is identical to the serial one — the suites under
``tests/unit/test_executor.py``, ``tests/faults/`` and
``tests/integration/test_parallel_determinism.py`` hold the backends to
that contract.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence, TypeVar

from repro.exceptions import (
    ConfigurationError,
    MethodTimeoutError,
    WorkerCrashError,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    ambient_tracer,
    current_span,
)
from repro.utils.logging import get_logger

__all__ = [
    "ExecutionPlan",
    "ParallelExecutor",
    "RetryPolicy",
    "RecoveryReport",
    "WorkerStats",
    "execution_env",
    "split_chunks",
    "EXECUTOR_STRATEGIES",
    "ENV_EXECUTOR",
    "ENV_N_JOBS",
    "ENV_MAX_ATTEMPTS",
    "ENV_CHUNK_TIMEOUT",
]

ContextT = TypeVar("ContextT")
ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: A chunk function consumes the shared context and a contiguous slice of
#: the item list, returning one result per item, in order.
ChunkFn = Callable[[ContextT, Sequence[ItemT]], Sequence[ResultT]]

EXECUTOR_STRATEGIES = ("serial", "thread", "process")

#: Fallback chain per starting strategy: each step can absorb the fault
#: classes of the previous one (threads survive worker-process crashes,
#: serial survives pool construction failure).
_FALLBACK_CHAIN = {
    "process": ("process", "thread", "serial"),
    "thread": ("thread", "serial"),
    "serial": ("serial",),
}

#: Environment fallbacks consulted when the config leaves the knobs unset —
#: the same pattern as ``REPRO_BENCH_SCALE``: one variable flips every
#: ``Tends`` instance in the process (CLI figure runs, benches, harness).
ENV_EXECUTOR = "REPRO_EXECUTOR"
ENV_N_JOBS = "REPRO_N_JOBS"
ENV_MAX_ATTEMPTS = "REPRO_MAX_ATTEMPTS"
ENV_CHUNK_TIMEOUT = "REPRO_CHUNK_TIMEOUT"

#: Chunks per worker when ``chunk_size`` is left automatic: small enough to
#: amortise per-task overhead, large enough to rebalance uneven nodes.
_OVERSUBSCRIPTION = 4

#: Recovery events (retries, backoff sleeps, pool rebuilds, fallbacks,
#: timeouts) log here at WARNING — degraded-mode runs must be visible.
_LOGGER = get_logger("core.executor")


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ConfigurationError(f"{name} must be a number, got {raw!r}") from None


def _env_int(name: str) -> int | None:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(f"{name} must be an integer, got {raw!r}") from None


@dataclass(frozen=True)
class WorkerStats:
    """Per-worker accounting of one parallel map.

    Attributes
    ----------
    worker:
        Stable label — ``"serial"``, ``"thread-3"``, ``"process-0"``.
    n_chunks / n_items:
        How many chunks and items this worker processed.
    seconds:
        Wall-clock spent inside the chunk function (excludes queueing and
        result transport, so the sum over workers can exceed the stage
        wall-clock when workers overlap).
    """

    worker: str
    n_chunks: int
    n_items: int
    seconds: float


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor recovers from chunk failures.

    Attributes
    ----------
    max_attempts:
        Execution attempts per chunk (and pool rebuilds per backend)
        before the failure is considered permanent.  1 disables retries.
    backoff_seconds:
        Sleep before the first retry; subsequent retries multiply it by
        ``backoff_multiplier`` (exponential backoff).
    backoff_multiplier:
        Growth factor of the backoff sequence.
    jitter:
        Fraction of each backoff randomised away, in ``[0, 1]``.  The
        sleep before a retry is drawn from
        ``[(1 - jitter) · base, base]`` — but *deterministically*: the
        draw hashes ``(jitter_seed, token, failures)``, so the same
        retry of the same chunk always backs off identically (replays
        and tests stay reproducible) while distinct chunks desynchronise
        instead of thundering back in lockstep.  0 restores the pure
        exponential sequence.
    jitter_seed:
        Seed mixed into the jitter hash; two services sharing a journal
        can be given different seeds to decorrelate their retries.
    timeout:
        Per-chunk wall-clock budget in seconds (``None`` = unlimited).
        Applies to the pool backends only; serial cannot preempt.
    fallback:
        Whether an unusable backend may fall back along
        ``process → thread → serial``.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    jitter: float = 0.5
    jitter_seed: int = 0
    timeout: float | None = None
    fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0:
            raise ConfigurationError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive, got {self.timeout}"
            )

    @classmethod
    def resolve(
        cls,
        max_attempts: int | None = None,
        backoff_seconds: float | None = None,
        timeout: float | None = None,
        fallback: bool | None = None,
    ) -> "RetryPolicy":
        """Resolve recovery knobs; ``None`` falls back to
        ``REPRO_MAX_ATTEMPTS`` / ``REPRO_CHUNK_TIMEOUT`` and then to the
        class defaults."""
        if max_attempts is None:
            max_attempts = _env_int(ENV_MAX_ATTEMPTS)
        if timeout is None:
            timeout = _env_float(ENV_CHUNK_TIMEOUT)
        defaults = cls()
        return cls(
            max_attempts=defaults.max_attempts if max_attempts is None else max_attempts,
            backoff_seconds=(
                defaults.backoff_seconds if backoff_seconds is None else backoff_seconds
            ),
            timeout=timeout,
            fallback=defaults.fallback if fallback is None else fallback,
        )

    def delay(self, failures: int, token: int = 0) -> float:
        """Backoff before the retry following the ``failures``-th failure.

        ``token`` identifies the retrying unit (chunk index, batch
        sequence number, ...); it seeds the deterministic jitter so
        concurrent units spread out while any single unit's delay
        sequence is a pure function of the policy.
        """
        if failures < 1 or self.backoff_seconds == 0:
            return 0.0
        base = self.backoff_seconds * self.backoff_multiplier ** (failures - 1)
        if self.jitter == 0.0:
            return base
        return base * (1.0 - self.jitter * self._unit(token, failures))

    def _unit(self, token: int, failures: int) -> float:
        """Deterministic draw in ``[0, 1)`` from (seed, token, failures)."""
        material = f"{self.jitter_seed}:{token}:{failures}".encode()
        word = int.from_bytes(hashlib.blake2b(material, digest_size=8).digest(), "big")
        return word / 2**64


@dataclass(frozen=True)
class RecoveryReport:
    """What the recovery machinery had to do during one map.

    All-zero (with ``strategy`` equal to the planned one) means the run
    was fault-free.
    """

    strategy: str  # backend that completed the work
    retries: int = 0  # chunk re-executions (errors + timeouts)
    timeouts: int = 0  # chunk attempts that exceeded the budget
    pool_rebuilds: int = 0  # pools torn down and replaced
    fallbacks: int = 0  # backend downgrades taken


@dataclass(frozen=True)
class ExecutionPlan:
    """A fully resolved execution strategy.

    Attributes
    ----------
    strategy:
        One of :data:`EXECUTOR_STRATEGIES`.
    n_jobs:
        Worker count, already resolved (``>= 1``; serial is always 1).
    chunk_size:
        Items per task, already resolved (``>= 1``).
    retry:
        The :class:`RetryPolicy` governing fault recovery.
    """

    strategy: str
    n_jobs: int
    chunk_size: int | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.strategy not in EXECUTOR_STRATEGIES:
            raise ConfigurationError(
                f"unknown executor strategy {self.strategy!r}; "
                f"available: {EXECUTOR_STRATEGIES}"
            )
        if self.n_jobs < 1:
            raise ConfigurationError(f"n_jobs must resolve to >= 1, got {self.n_jobs}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be a positive integer, got {self.chunk_size}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def resolve(
        cls,
        executor: str | None = None,
        n_jobs: int | None = None,
        chunk_size: int | None = None,
        *,
        max_attempts: int | None = None,
        backoff_seconds: float | None = None,
        chunk_timeout: float | None = None,
        fallback: bool | None = None,
    ) -> "ExecutionPlan":
        """Resolve user-facing knobs into a concrete plan.

        ``None`` values fall back to ``REPRO_EXECUTOR`` / ``REPRO_N_JOBS``
        (and ``REPRO_MAX_ATTEMPTS`` / ``REPRO_CHUNK_TIMEOUT`` for the
        recovery knobs) and finally to the serial single-worker default.
        ``n_jobs = -1`` means "all available CPUs".  A serial strategy
        forces ``n_jobs = 1``; conversely ``n_jobs = 1`` with no explicit
        strategy stays serial rather than paying pool overhead.
        """
        if executor is None:
            executor = os.environ.get(ENV_EXECUTOR) or "serial"
        if executor not in EXECUTOR_STRATEGIES:
            raise ConfigurationError(
                f"unknown executor strategy {executor!r}; "
                f"available: {EXECUTOR_STRATEGIES}"
            )
        if n_jobs is None:
            raw = os.environ.get(ENV_N_JOBS)
            if raw:
                try:
                    n_jobs = int(raw)
                except ValueError:
                    raise ConfigurationError(
                        f"{ENV_N_JOBS} must be an integer, got {raw!r}"
                    ) from None
            else:
                n_jobs = 1
        if n_jobs == -1:
            n_jobs = os.cpu_count() or 1
        if n_jobs < 1:
            raise ConfigurationError(
                f"n_jobs must be a positive integer or -1 (all CPUs), got {n_jobs}"
            )
        if executor == "serial":
            n_jobs = 1
        retry = RetryPolicy.resolve(
            max_attempts=max_attempts,
            backoff_seconds=backoff_seconds,
            timeout=chunk_timeout,
            fallback=fallback,
        )
        return cls(
            strategy=executor, n_jobs=n_jobs, chunk_size=chunk_size, retry=retry
        )

    def effective_chunk_size(self, n_items: int) -> int:
        """Items per task for an ``n_items`` workload under this plan."""
        if self.chunk_size is not None:
            return self.chunk_size
        if self.n_jobs <= 1:
            return max(n_items, 1)
        spread = self.n_jobs * _OVERSUBSCRIPTION
        return max(1, -(-n_items // spread))


def split_chunks(n_items: int, chunk_size: int) -> list[range]:
    """Partition ``range(n_items)`` into contiguous chunks of
    ``chunk_size`` (the last may be shorter).  The chunks cover every
    index exactly once, in ascending order — the invariant the
    determinism guarantee rests on."""
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        range(start, min(start + chunk_size, n_items))
        for start in range(0, n_items, chunk_size)
    ]


@contextmanager
def execution_env(
    executor: str | None = None,
    n_jobs: int | None = None,
    max_attempts: int | None = None,
    chunk_timeout: float | None = None,
    kernel: str | None = None,
) -> Iterator[None]:
    """Temporarily pin the environment fallbacks (CLI figure runs use this
    so every ``Tends`` built inside the harness picks up the backend,
    recovery, and counting-kernel knobs)."""
    from repro.core.kernels import ENV_KERNEL

    saved = {
        name: os.environ.get(name)
        for name in (
            ENV_EXECUTOR,
            ENV_N_JOBS,
            ENV_MAX_ATTEMPTS,
            ENV_CHUNK_TIMEOUT,
            ENV_KERNEL,
        )
    }
    try:
        if executor is not None:
            os.environ[ENV_EXECUTOR] = executor
        if n_jobs is not None:
            os.environ[ENV_N_JOBS] = str(n_jobs)
        if max_attempts is not None:
            os.environ[ENV_MAX_ATTEMPTS] = str(max_attempts)
        if chunk_timeout is not None:
            os.environ[ENV_CHUNK_TIMEOUT] = str(chunk_timeout)
        if kernel is not None:
            os.environ[ENV_KERNEL] = kernel
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


# ----------------------------------------------------------------------
# process-backend plumbing (module level so it pickles by reference)
# ----------------------------------------------------------------------

_WORKER_STATE: dict[str, object] = {}


def _process_initializer(
    chunk_fn: ChunkFn, context: object, trace: bool = False
) -> None:
    """Runs once per worker process: receives the shared context a single
    time, however many chunks the worker later executes."""
    _WORKER_STATE["chunk_fn"] = chunk_fn
    _WORKER_STATE["context"] = context
    _WORKER_STATE["trace"] = trace


def _traced_chunk(
    chunk_fn: ChunkFn,
    context: object,
    items: Sequence[object],
    index: int,
    strategy: str,
    trace: bool,
) -> tuple[list[object], tuple[dict, ...]]:
    """Execute one chunk, recording worker-local spans when tracing.

    The worker cannot see the dispatcher's tracer (threads and processes
    start with fresh contexts), so a traced chunk records into a local
    :class:`~repro.obs.trace.Tracer` — installed as the ambient tracer so
    the chunk function's own spans nest under the chunk span — and ships
    the finished spans back as dicts for :meth:`Tracer.adopt`.
    """
    if not trace:
        return list(chunk_fn(context, items)), ()
    tracer = Tracer()
    with ambient_tracer(tracer):
        with tracer.span(
            "executor.chunk", chunk=index, items=len(items), strategy=strategy
        ):
            results = list(chunk_fn(context, items))
    return results, tuple(span.to_dict() for span in tracer.finished())


def _process_chunk(
    items: Sequence[object], index: int = 0
) -> tuple[list[object], int, float, tuple[dict, ...]]:
    chunk_fn = _WORKER_STATE["chunk_fn"]
    context = _WORKER_STATE["context"]
    trace = bool(_WORKER_STATE.get("trace", False))
    start = time.perf_counter()
    results, spans = _traced_chunk(
        chunk_fn, context, items, index, "process", trace
    )
    return results, os.getpid(), time.perf_counter() - start, spans


class _BackendUnusable(Exception):
    """Internal signal: this backend cannot make progress; fall back."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(str(cause))
        self.cause = cause


class ParallelExecutor:
    """Map a chunk function over items under an :class:`ExecutionPlan`.

    Parameters
    ----------
    plan:
        Resolved strategy/worker-count/chunking/recovery; see
        :meth:`ExecutionPlan.resolve`.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  When given (and
        enabled), every chunk execution records an ``executor.chunk``
        span — in the worker for the pool backends, shipped back with
        the chunk outcome and merged under the span that was current
        when :meth:`map` was called.  The default
        :data:`~repro.obs.trace.NULL_TRACER` is the zero-overhead path.

    After each :meth:`map`, :attr:`last_report` holds a
    :class:`RecoveryReport` describing retries, timeouts, pool rebuilds,
    and backend fallbacks taken during the run.  Recovery events are
    additionally logged at WARNING level on the ``repro.core.executor``
    logger, so degraded-mode runs leave evidence even untraced.

    Examples
    --------
    >>> plan = ExecutionPlan.resolve("thread", n_jobs=2, chunk_size=3)
    >>> executor = ParallelExecutor(plan)
    >>> results, stats = executor.map(lambda ctx, chunk: [ctx * i for i in chunk],
    ...                               10, list(range(7)))
    >>> results
    [0, 10, 20, 30, 40, 50, 60]
    """

    def __init__(
        self, plan: ExecutionPlan, tracer: "Tracer | NullTracer" = NULL_TRACER
    ) -> None:
        self.plan = plan
        self.last_report: RecoveryReport | None = None
        self._tracer = tracer
        self._trace = bool(getattr(tracer, "enabled", False))
        self._parent_span_id: int | None = None
        self._retries = 0
        self._timeouts = 0
        self._pool_rebuilds = 0

    # ------------------------------------------------------------------
    def map(
        self,
        chunk_fn: ChunkFn,
        context: ContextT,
        items: Sequence[ItemT],
    ) -> tuple[list[ResultT], list[WorkerStats]]:
        """Apply ``chunk_fn(context, chunk)`` to contiguous chunks of
        ``items`` and return ``(results, worker_stats)``.

        ``results`` preserves item order exactly — position ``i`` holds the
        result for ``items[i]`` under every strategy, worker count, and
        fault/recovery sequence.  For the ``process`` strategy both
        ``chunk_fn`` and ``context`` must be picklable, and ``chunk_fn``
        must be a module-level function (it is shipped to workers by
        reference); an unpicklable payload triggers the thread fallback.
        Chunk functions must be pure — recovery may execute a chunk more
        than once.
        """
        items = list(items)
        self._retries = self._timeouts = self._pool_rebuilds = 0
        dispatch_span = current_span()
        self._parent_span_id = (
            dispatch_span.span_id if dispatch_span is not None else None
        )
        if not items:
            self.last_report = RecoveryReport(strategy=self.plan.strategy)
            return [], []
        chunk_size = self.plan.effective_chunk_size(len(items))
        chunks = [
            [items[i] for i in chunk] for chunk in split_chunks(len(items), chunk_size)
        ]
        if self.plan.retry.fallback:
            chain = _FALLBACK_CHAIN[self.plan.strategy]
        else:
            chain = (self.plan.strategy,)

        results: dict[int, list[ResultT]] = {}
        outcomes: list[tuple[str, object, int, float]] = []
        used_strategy = chain[0]
        fallbacks = 0
        for position, strategy in enumerate(chain):
            used_strategy = strategy
            fallbacks = position
            pending = [i for i in range(len(chunks)) if i not in results]
            if not pending:
                break
            try:
                if strategy == "thread" and self.plan.n_jobs > 1:
                    self._run_pool("thread", chunk_fn, context, chunks, pending,
                                   results, outcomes)
                elif strategy == "process":
                    self._run_pool("process", chunk_fn, context, chunks, pending,
                                   results, outcomes)
                else:
                    self._run_serial(chunk_fn, context, chunks, pending,
                                     results, outcomes)
                break
            except _BackendUnusable as failure:
                if position == len(chain) - 1:
                    raise failure.cause from None
                _LOGGER.warning(
                    "executor backend %r unusable (%s); falling back to %r "
                    "for %d unfinished chunk(s)",
                    strategy,
                    failure.cause,
                    chain[position + 1],
                    len([i for i in range(len(chunks)) if i not in results]),
                )
                continue  # fall back to the next backend for unfinished chunks

        self.last_report = RecoveryReport(
            strategy=used_strategy,
            retries=self._retries,
            timeouts=self._timeouts,
            pool_rebuilds=self._pool_rebuilds,
            fallbacks=fallbacks,
        )
        merged = [value for index in range(len(chunks)) for value in results[index]]
        return merged, self._aggregate_stats(outcomes)

    # ------------------------------------------------------------------
    # strategies
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        chunk_fn: ChunkFn,
        context: ContextT,
        chunks: list[list[ItemT]],
        pending: list[int],
        results: dict[int, list[ResultT]],
        outcomes: list[tuple[str, object, int, float]],
    ) -> None:
        retry = self.plan.retry
        for index in pending:
            failures = 0
            while True:
                start = time.perf_counter()
                try:
                    # The serial backend runs in the dispatching thread,
                    # so the ambient tracer/current span are already in
                    # scope — chunk spans nest without shipping.
                    with self._tracer.span(
                        "executor.chunk",
                        chunk=index,
                        items=len(chunks[index]),
                        strategy="serial",
                    ):
                        chunk_results = list(chunk_fn(context, chunks[index]))
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    failures += 1
                    if failures >= retry.max_attempts:
                        raise
                    self._retries += 1
                    delay = retry.delay(failures, token=index)
                    _LOGGER.warning(
                        "serial chunk %d failed (attempt %d/%d): %s; "
                        "retrying after %.3gs backoff",
                        index, failures, retry.max_attempts, exc, delay,
                    )
                    time.sleep(delay)
                    continue
                results[index] = chunk_results
                outcomes.append(
                    ("serial", "serial", len(chunk_results),
                     time.perf_counter() - start)
                )
                break

    def _new_pool(
        self, strategy: str, chunk_fn: ChunkFn, context: ContextT
    ):
        try:
            if strategy == "process":
                return ProcessPoolExecutor(
                    max_workers=self.plan.n_jobs,
                    initializer=_process_initializer,
                    initargs=(chunk_fn, context, self._trace),
                )
            return ThreadPoolExecutor(
                max_workers=self.plan.n_jobs, thread_name_prefix="tends"
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:  # pool construction itself failed
            raise _BackendUnusable(
                WorkerCrashError(
                    f"could not start {strategy} pool: {exc}", attempts=1
                )
            ) from exc

    @staticmethod
    def _shutdown_pool(pool, *, kill: bool = False) -> None:
        """Shut a pool down without leaving orphans.

        ``kill=True`` is the fault path: signal shutdown first (so the
        pool's management machinery stops feeding work), then terminate
        the workers — they may be hung or already dead — and reap them,
        escalating to ``SIGKILL`` for anything that ignores the first
        signal.  The ordering matters: terminating before shutdown can
        wedge the executor's manager thread on its queues.
        """
        # Snapshot before shutdown: the pool clears its bookkeeping.
        processes = list((getattr(pool, "_processes", None) or {}).values())
        try:
            pool.shutdown(wait=not kill, cancel_futures=True)
        except Exception:
            pass
        if kill:
            for process in processes:
                try:
                    process.terminate()
                except Exception:
                    pass
            for process in processes:
                try:
                    process.join(timeout=1.0)
                    if process.is_alive():
                        process.kill()
                        process.join(timeout=1.0)
                except Exception:
                    pass

    def _submit(self, pool, strategy: str, chunk_fn: ChunkFn,
                context: ContextT, chunk: list[ItemT], index: int) -> Future:
        if strategy == "process":
            return pool.submit(_process_chunk, chunk, index)

        trace = self._trace

        def timed(
            chunk: list[ItemT] = chunk, index: int = index
        ) -> tuple[list[ResultT], str, float, tuple[dict, ...]]:
            import threading

            start = time.perf_counter()
            chunk_results, spans = _traced_chunk(
                chunk_fn, context, chunk, index, "thread", trace
            )
            return (
                chunk_results,
                threading.current_thread().name,
                time.perf_counter() - start,
                spans,
            )

        return pool.submit(timed)

    def _run_pool(
        self,
        strategy: str,
        chunk_fn: ChunkFn,
        context: ContextT,
        chunks: list[list[ItemT]],
        pending: list[int],
        results: dict[int, list[ResultT]],
        outcomes: list[tuple[str, object, int, float]],
    ) -> None:
        """Run ``pending`` chunks on a (re)buildable pool with retries.

        Results land in ``results`` keyed by chunk index, so the caller's
        merge order never depends on completion order, attempt count, or
        which backend finally produced each chunk.
        """
        retry = self.plan.retry
        failures: dict[int, int] = {index: 0 for index in pending}
        pool_breaks = 0
        pool = self._new_pool(strategy, chunk_fn, context)
        try:
            unfinished = list(pending)
            while unfinished:
                submitted = [
                    (self._submit(pool, strategy, chunk_fn, context,
                                  chunks[index], index),
                     index)
                    for index in unfinished
                ]
                resubmit: list[int] = []
                rebuild = False
                for position, (future, index) in enumerate(submitted):
                    if index in results:
                        continue
                    try:
                        chunk_results, label, seconds, spans = future.result(
                            timeout=retry.timeout
                        )
                    except FutureTimeoutError:
                        self._timeouts += 1
                        failures[index] += 1
                        if failures[index] >= retry.max_attempts:
                            raise MethodTimeoutError(
                                f"chunk {index} ({len(chunks[index])} items) "
                                f"exceeded its {retry.timeout}s budget "
                                f"{failures[index]} time(s)",
                                timeout=retry.timeout,
                            ) from None
                        _LOGGER.warning(
                            "chunk %d (%d items) exceeded its %gs budget "
                            "(attempt %d/%d); rebuilding the %s pool and "
                            "re-running it",
                            index, len(chunks[index]), retry.timeout,
                            failures[index], retry.max_attempts, strategy,
                        )
                        resubmit.append(index)
                        rebuild = True  # a worker may be wedged on this chunk
                        resubmit.extend(
                            self._drain_after_fault(
                                submitted[position + 1:], results, outcomes,
                                strategy, failures, retry,
                            )
                        )
                        break
                    except BrokenExecutor as exc:
                        # The whole pool is dead; every unfinished chunk is
                        # collateral.  Rebuild and re-run them.
                        pool_breaks += 1
                        if pool_breaks >= retry.max_attempts:
                            raise _BackendUnusable(
                                WorkerCrashError(
                                    f"{strategy} pool broke {pool_breaks} "
                                    f"time(s); giving up on this backend "
                                    f"({exc})",
                                    attempts=pool_breaks,
                                )
                            ) from exc
                        resubmit = [
                            i for _, i in submitted if i not in results
                        ]
                        _LOGGER.warning(
                            "%s pool broke (%s); rebuilding it and "
                            "re-running %d chunk(s) (break %d/%d)",
                            strategy, exc, len(resubmit),
                            pool_breaks, retry.max_attempts,
                        )
                        rebuild = True
                        break
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as exc:
                        failures[index] += 1
                        if failures[index] >= retry.max_attempts:
                            raise
                        _LOGGER.warning(
                            "%s chunk %d failed (attempt %d/%d): %s; "
                            "will retry",
                            strategy, index, failures[index],
                            retry.max_attempts, exc,
                        )
                        resubmit.append(index)
                        continue
                    else:
                        results[index] = chunk_results
                        outcomes.append(
                            (strategy, label, len(chunk_results), seconds)
                        )
                        if spans:
                            self._tracer.adopt(
                                spans, parent_id=self._parent_span_id
                            )
                if rebuild:
                    self._shutdown_pool(pool, kill=True)
                    self._pool_rebuilds += 1
                    pool = self._new_pool(strategy, chunk_fn, context)
                if resubmit:
                    self._retries += len(resubmit)
                    delay = retry.delay(
                        max(failures[i] for i in resubmit)
                        if any(failures[i] for i in resubmit)
                        else 1,
                        token=min(resubmit),
                    )
                    if delay:
                        _LOGGER.warning(
                            "backing off %.3gs before re-running %d chunk(s)",
                            delay, len(resubmit),
                        )
                    time.sleep(delay)
                unfinished = resubmit
        except (KeyboardInterrupt, SystemExit):
            # Cancel what never started, kill what did, leave no orphans,
            # and hand the signal straight back to the caller.
            self._shutdown_pool(pool, kill=True)
            raise
        except BaseException:
            self._shutdown_pool(pool, kill=True)
            raise
        else:
            self._shutdown_pool(pool)

    def _drain_after_fault(
        self,
        remaining: list[tuple[Future, int]],
        results: dict[int, list[ResultT]],
        outcomes: list[tuple[str, object, int, float]],
        strategy: str,
        failures: dict[int, int],
        retry: RetryPolicy,
    ) -> list[int]:
        """After a timeout, harvest sibling futures that already finished
        and mark the rest for re-execution on the rebuilt pool."""
        resubmit: list[int] = []
        for future, index in remaining:
            if index in results:
                continue
            if future.done() and not future.cancelled():
                try:
                    chunk_results, label, seconds, spans = future.result(
                        timeout=0
                    )
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception:
                    failures[index] += 1
                    if failures[index] >= retry.max_attempts:
                        raise
                    resubmit.append(index)
                else:
                    results[index] = chunk_results
                    outcomes.append((strategy, label, len(chunk_results), seconds))
                    if spans:
                        self._tracer.adopt(
                            spans, parent_id=self._parent_span_id
                        )
            else:
                future.cancel()
                resubmit.append(index)
        return resubmit

    # ------------------------------------------------------------------
    @staticmethod
    def _aggregate_stats(
        outcomes: Sequence[tuple[str, object, int, float]],
    ) -> list[WorkerStats]:
        """Aggregate per-chunk ``(strategy, raw label, n_items, seconds)``
        records into stable ``prefix-K`` worker names (plain ``serial``
        for the serial backend)."""
        raw: dict[tuple[str, str], list[tuple[int, float]]] = {}
        for prefix, label, n_items, seconds in outcomes:
            raw.setdefault((prefix, str(label)), []).append((n_items, seconds))
        stats: list[WorkerStats] = []
        indices: dict[str, int] = {}
        for prefix, label in sorted(raw):
            cells = raw[(prefix, label)]
            if prefix == "serial":
                name = "serial"
            else:
                index = indices.get(prefix, 0)
                indices[prefix] = index + 1
                name = f"{prefix}-{index}"
            stats.append(
                WorkerStats(
                    worker=name,
                    n_chunks=len(cells),
                    n_items=sum(n for n, _ in cells),
                    seconds=sum(s for _, s in cells),
                )
            )
        return stats
