"""Pluggable execution backends for the per-node parent searches.

The TENDS score is decomposable (DESIGN.md §1), so stage 3 of
:meth:`~repro.core.tends.Tends.fit` — one parent search per node — is
embarrassingly parallel.  This module turns that observation into a
backend abstraction:

* :class:`ExecutionPlan` resolves the user-facing knobs (``executor``,
  ``n_jobs``, ``chunk_size``; ``None`` falls back to the
  ``REPRO_EXECUTOR`` / ``REPRO_N_JOBS`` environment variables, then to
  serial) into a concrete strategy;
* :class:`ParallelExecutor` maps a pure chunk function over an item list
  under that plan, with three strategies:

  ``serial``
      The plain loop — zero overhead, the reference behaviour.
  ``thread``
      A :class:`~concurrent.futures.ThreadPoolExecutor`.  The searches
      are numpy-heavy, so some of the work releases the GIL; threads
      share the context for free.
  ``process``
      A :class:`~concurrent.futures.ProcessPoolExecutor`.  The shared
      context (for TENDS: the :class:`~repro.core.search.ParentSearch`,
      i.e. the status matrix plus config) is shipped **once per worker**
      through the pool initializer, not once per task — tasks then carry
      only their chunk of items.

Determinism is structural, not incidental: items are split into
contiguous chunks, chunk results are collected in submission order, and
the flattened output preserves item order exactly.  Whatever the worker
count, the merged result is identical to the serial one — the test
suites under ``tests/unit/test_executor.py`` and
``tests/integration/test_parallel_determinism.py`` hold the backends to
that contract.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence, TypeVar

from repro.exceptions import ConfigurationError

__all__ = [
    "ExecutionPlan",
    "ParallelExecutor",
    "WorkerStats",
    "execution_env",
    "split_chunks",
    "EXECUTOR_STRATEGIES",
    "ENV_EXECUTOR",
    "ENV_N_JOBS",
]

ContextT = TypeVar("ContextT")
ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: A chunk function consumes the shared context and a contiguous slice of
#: the item list, returning one result per item, in order.
ChunkFn = Callable[[ContextT, Sequence[ItemT]], Sequence[ResultT]]

EXECUTOR_STRATEGIES = ("serial", "thread", "process")

#: Environment fallbacks consulted when the config leaves the knobs unset —
#: the same pattern as ``REPRO_BENCH_SCALE``: one variable flips every
#: ``Tends`` instance in the process (CLI figure runs, benches, harness).
ENV_EXECUTOR = "REPRO_EXECUTOR"
ENV_N_JOBS = "REPRO_N_JOBS"

#: Chunks per worker when ``chunk_size`` is left automatic: small enough to
#: amortise per-task overhead, large enough to rebalance uneven nodes.
_OVERSUBSCRIPTION = 4


@dataclass(frozen=True)
class WorkerStats:
    """Per-worker accounting of one parallel map.

    Attributes
    ----------
    worker:
        Stable label — ``"serial"``, ``"thread-3"``, ``"process-0"``.
    n_chunks / n_items:
        How many chunks and items this worker processed.
    seconds:
        Wall-clock spent inside the chunk function (excludes queueing and
        result transport, so the sum over workers can exceed the stage
        wall-clock when workers overlap).
    """

    worker: str
    n_chunks: int
    n_items: int
    seconds: float


@dataclass(frozen=True)
class ExecutionPlan:
    """A fully resolved execution strategy.

    Attributes
    ----------
    strategy:
        One of :data:`EXECUTOR_STRATEGIES`.
    n_jobs:
        Worker count, already resolved (``>= 1``; serial is always 1).
    chunk_size:
        Items per task, already resolved (``>= 1``).
    """

    strategy: str
    n_jobs: int
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.strategy not in EXECUTOR_STRATEGIES:
            raise ConfigurationError(
                f"unknown executor strategy {self.strategy!r}; "
                f"available: {EXECUTOR_STRATEGIES}"
            )
        if self.n_jobs < 1:
            raise ConfigurationError(f"n_jobs must resolve to >= 1, got {self.n_jobs}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be a positive integer, got {self.chunk_size}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def resolve(
        cls,
        executor: str | None = None,
        n_jobs: int | None = None,
        chunk_size: int | None = None,
    ) -> "ExecutionPlan":
        """Resolve user-facing knobs into a concrete plan.

        ``None`` values fall back to ``REPRO_EXECUTOR`` / ``REPRO_N_JOBS``
        and finally to the serial single-worker default.  ``n_jobs = -1``
        means "all available CPUs".  A serial strategy forces
        ``n_jobs = 1``; conversely ``n_jobs = 1`` with no explicit
        strategy stays serial rather than paying pool overhead.
        """
        if executor is None:
            executor = os.environ.get(ENV_EXECUTOR) or "serial"
        if executor not in EXECUTOR_STRATEGIES:
            raise ConfigurationError(
                f"unknown executor strategy {executor!r}; "
                f"available: {EXECUTOR_STRATEGIES}"
            )
        if n_jobs is None:
            raw = os.environ.get(ENV_N_JOBS)
            if raw:
                try:
                    n_jobs = int(raw)
                except ValueError:
                    raise ConfigurationError(
                        f"{ENV_N_JOBS} must be an integer, got {raw!r}"
                    ) from None
            else:
                n_jobs = 1
        if n_jobs == -1:
            n_jobs = os.cpu_count() or 1
        if n_jobs < 1:
            raise ConfigurationError(
                f"n_jobs must be a positive integer or -1 (all CPUs), got {n_jobs}"
            )
        if executor == "serial":
            n_jobs = 1
        return cls(strategy=executor, n_jobs=n_jobs, chunk_size=chunk_size)

    def effective_chunk_size(self, n_items: int) -> int:
        """Items per task for an ``n_items`` workload under this plan."""
        if self.chunk_size is not None:
            return self.chunk_size
        if self.n_jobs <= 1:
            return max(n_items, 1)
        spread = self.n_jobs * _OVERSUBSCRIPTION
        return max(1, -(-n_items // spread))


def split_chunks(n_items: int, chunk_size: int) -> list[range]:
    """Partition ``range(n_items)`` into contiguous chunks of
    ``chunk_size`` (the last may be shorter).  The chunks cover every
    index exactly once, in ascending order — the invariant the
    determinism guarantee rests on."""
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        range(start, min(start + chunk_size, n_items))
        for start in range(0, n_items, chunk_size)
    ]


@contextmanager
def execution_env(
    executor: str | None = None, n_jobs: int | None = None
) -> Iterator[None]:
    """Temporarily pin the environment fallbacks (CLI figure runs use this
    so every ``Tends`` built inside the harness picks up the backend)."""
    saved = {
        name: os.environ.get(name) for name in (ENV_EXECUTOR, ENV_N_JOBS)
    }
    try:
        if executor is not None:
            os.environ[ENV_EXECUTOR] = executor
        if n_jobs is not None:
            os.environ[ENV_N_JOBS] = str(n_jobs)
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


# ----------------------------------------------------------------------
# process-backend plumbing (module level so it pickles by reference)
# ----------------------------------------------------------------------

_WORKER_STATE: dict[str, object] = {}


def _process_initializer(chunk_fn: ChunkFn, context: object) -> None:
    """Runs once per worker process: receives the shared context a single
    time, however many chunks the worker later executes."""
    _WORKER_STATE["chunk_fn"] = chunk_fn
    _WORKER_STATE["context"] = context


def _process_chunk(items: Sequence[object]) -> tuple[list[object], int, float]:
    chunk_fn = _WORKER_STATE["chunk_fn"]
    context = _WORKER_STATE["context"]
    start = time.perf_counter()
    results = list(chunk_fn(context, items))
    return results, os.getpid(), time.perf_counter() - start


class ParallelExecutor:
    """Map a chunk function over items under an :class:`ExecutionPlan`.

    Parameters
    ----------
    plan:
        Resolved strategy/worker-count/chunking; see
        :meth:`ExecutionPlan.resolve`.

    Examples
    --------
    >>> plan = ExecutionPlan.resolve("thread", n_jobs=2, chunk_size=3)
    >>> executor = ParallelExecutor(plan)
    >>> results, stats = executor.map(lambda ctx, chunk: [ctx * i for i in chunk],
    ...                               10, list(range(7)))
    >>> results
    [0, 10, 20, 30, 40, 50, 60]
    """

    def __init__(self, plan: ExecutionPlan) -> None:
        self.plan = plan

    # ------------------------------------------------------------------
    def map(
        self,
        chunk_fn: ChunkFn,
        context: ContextT,
        items: Sequence[ItemT],
    ) -> tuple[list[ResultT], list[WorkerStats]]:
        """Apply ``chunk_fn(context, chunk)`` to contiguous chunks of
        ``items`` and return ``(results, worker_stats)``.

        ``results`` preserves item order exactly — position ``i`` holds the
        result for ``items[i]`` under every strategy and worker count.
        For the ``process`` strategy both ``chunk_fn`` and ``context``
        must be picklable, and ``chunk_fn`` must be a module-level
        function (it is shipped to workers by reference).
        """
        items = list(items)
        if not items:
            return [], []
        chunk_size = self.plan.effective_chunk_size(len(items))
        chunks = [
            [items[i] for i in chunk] for chunk in split_chunks(len(items), chunk_size)
        ]
        if self.plan.strategy == "thread" and self.plan.n_jobs > 1:
            return self._map_threads(chunk_fn, context, chunks)
        if self.plan.strategy == "process":
            return self._map_processes(chunk_fn, context, chunks)
        return self._map_serial(chunk_fn, context, chunks)

    # ------------------------------------------------------------------
    # strategies
    # ------------------------------------------------------------------
    def _map_serial(
        self, chunk_fn: ChunkFn, context: ContextT, chunks: list[list[ItemT]]
    ) -> tuple[list[ResultT], list[WorkerStats]]:
        results: list[ResultT] = []
        start = time.perf_counter()
        for chunk in chunks:
            results.extend(chunk_fn(context, chunk))
        elapsed = time.perf_counter() - start
        stats = WorkerStats(
            worker="serial",
            n_chunks=len(chunks),
            n_items=len(results),
            seconds=elapsed,
        )
        return results, [stats]

    def _map_threads(
        self, chunk_fn: ChunkFn, context: ContextT, chunks: list[list[ItemT]]
    ) -> tuple[list[ResultT], list[WorkerStats]]:
        def timed(chunk: list[ItemT]) -> tuple[list[ResultT], str, float]:
            import threading

            start = time.perf_counter()
            results = list(chunk_fn(context, chunk))
            return results, threading.current_thread().name, time.perf_counter() - start

        with ThreadPoolExecutor(
            max_workers=self.plan.n_jobs, thread_name_prefix="tends"
        ) as pool:
            futures = [pool.submit(timed, chunk) for chunk in chunks]
            outcomes = [future.result() for future in futures]
        return self._merge(outcomes, label_prefix="thread")

    def _map_processes(
        self, chunk_fn: ChunkFn, context: ContextT, chunks: list[list[ItemT]]
    ) -> tuple[list[ResultT], list[WorkerStats]]:
        with ProcessPoolExecutor(
            max_workers=self.plan.n_jobs,
            initializer=_process_initializer,
            initargs=(chunk_fn, context),
        ) as pool:
            futures = [pool.submit(_process_chunk, chunk) for chunk in chunks]
            outcomes = [future.result() for future in futures]
        return self._merge(outcomes, label_prefix="process")

    # ------------------------------------------------------------------
    @staticmethod
    def _merge(
        outcomes: Sequence[tuple[list[ResultT], object, float]],
        *,
        label_prefix: str,
    ) -> tuple[list[ResultT], list[WorkerStats]]:
        """Flatten chunk results (in submission order) and aggregate the
        raw worker labels into stable ``prefix-K`` names."""
        results: list[ResultT] = []
        raw: dict[object, list[tuple[int, float]]] = {}
        for chunk_results, label, seconds in outcomes:
            results.extend(chunk_results)
            raw.setdefault(label, []).append((len(chunk_results), seconds))
        stats: list[WorkerStats] = []
        for index, label in enumerate(sorted(raw, key=str)):
            cells = raw[label]
            stats.append(
                WorkerStats(
                    worker=f"{label_prefix}-{index}",
                    n_chunks=len(cells),
                    n_items=sum(n for n, _ in cells),
                    seconds=sum(s for _, s in cells),
                )
            )
        return results, stats
