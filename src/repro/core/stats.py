"""Cached additive sufficient statistics for incremental TENDS fits.

Every quantity TENDS's pairwise stages consume is an *additive* integer
count over the observed diffusion processes: the four pairwise joint
counts feeding IMI (Eq. 24–25), the per-pair effective sample sizes
``β_ij`` of the masked-data estimator, and the per-node infected /
observed totals behind the marginals and the Theorem-2 ``δ_i`` bound.
Integer addition is exact, so accumulating these counts batch by batch
yields **bit-identical** matrices to a single pass over the concatenated
history — which is the foundation of the
:meth:`repro.core.tends.Tends.partial_fit` equivalence guarantee
(``partial_fit`` over any batch split ≡ one-shot ``fit``; see
docs/INCREMENTAL.md and ``tests/property/test_prop_incremental.py``).

:class:`SufficientStats` is immutable: :meth:`SufficientStats.updated`
returns a new instance, leaving the previous one untouched.  That is what
makes incremental updates copy-on-write — a ``partial_fit`` that fails
mid-way cannot corrupt the model it started from.

Updating with a ``Δβ × n`` batch costs ``O(Δβ · n²)`` (the batch's own
count products plus an ``O(n²)`` merge), instead of the ``O(β · n²)``
full-history recount, so long-running services pay per *arriving* data,
not per *accumulated* data.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.core.imi import (
    imi_from_terms,
    mi_from_terms,
    mi_terms_from_joint_counts,
    mi_terms_from_pairwise_counts,
)
from repro.core.kernels import (
    PackedStatuses,
    packed_infection_counts,
    packed_observed_counts,
    packed_pairwise_complete_counts,
    resolve_kernel,
)
from repro.exceptions import DataError
from repro.simulation.statuses import StatusMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (stats ↔ tiles)
    from repro.core.tiles import TileFanout

__all__ = ["SufficientStats", "WindowedStats", "COUNT_KEYS"]

#: Keys of the pairwise count matrices, in canonical (serialisation) order:
#: the four joint counts plus the per-pair observed-process count ``β_ij``.
COUNT_KEYS = ("11", "10", "01", "00", "obs")


def _accumulator(array: np.ndarray) -> np.ndarray:
    """Promote narrow integer arrays to int64 before count algebra.

    Externally constructed statistics (a deserialised shard, a tile read
    back from disk, a user-built ``SufficientStats``) may carry int32
    counts; adding many large-β shards in int32 silently wraps past
    2³¹ − 1.  Floats (the decayed-window path) pass through unchanged.
    """
    array = np.asarray(array)
    if np.issubdtype(array.dtype, np.integer) and array.dtype != np.int64:
        return array.astype(np.int64)
    return array


@dataclass(frozen=True)
class SufficientStats:
    """Additive sufficient statistics of a status-matrix history.

    Attributes
    ----------
    counts:
        The five ``(n, n)`` int64 matrices of
        :meth:`StatusMatrix.pairwise_complete_counts` — pairwise joint
        counts ``"11"``/``"10"``/``"01"``/``"00"`` plus ``"obs"``
        (per-pair observed-process count ``β_ij``; identically ``beta``
        when nothing is missing).
    infected:
        Per-node observed-infection totals (the paper's ``N₂`` per node).
    observed:
        Per-node observed-process counts (``beta`` everywhere for fully
        observed histories).
    beta:
        Total number of processes absorbed so far.
    has_missing:
        Whether any absorbed batch carried unobserved entries.  Controls
        which MI estimator applies, exactly mirroring
        ``StatusMatrix.has_missing`` of the concatenated history.
    """

    counts: Mapping[str, np.ndarray]
    infected: np.ndarray
    observed: np.ndarray
    beta: int
    has_missing: bool

    # ------------------------------------------------------------------
    @classmethod
    def from_statuses(
        cls,
        statuses: StatusMatrix,
        *,
        kernel: str | None = None,
        tiling: "TileFanout | None" = None,
    ) -> "SufficientStats":
        """Count one status matrix (a whole history or a single batch).

        ``kernel`` selects the counting backend (see
        :func:`repro.core.kernels.resolve_kernel`); the counts are int64
        either way, so the statistics are bit-identical.  With a
        ``tiling`` spec (:class:`repro.core.tiles.TileFanout`) the pair
        space is counted tile-by-tile, each tile a retryable chunk under
        the stage-3 executor machinery, and the results assembled into
        the same dense matrices — again bit-identical.
        """
        if not isinstance(statuses, StatusMatrix):
            statuses = StatusMatrix(statuses)
        if tiling is not None:
            from repro.core.tiles import tiled_batch_counts

            pairwise = tiled_batch_counts(
                statuses,
                tile_size=tiling.tile_size,
                kernel=kernel if kernel is not None else tiling.kernel,
                plan=tiling.plan,
                tracer=tiling.tracer,
                metrics=tiling.metrics,
            )
            return cls(
                counts={key: pairwise[key] for key in COUNT_KEYS},
                infected=statuses.infection_counts(),
                observed=statuses.observed_counts(),
                beta=statuses.beta,
                has_missing=statuses.has_missing,
            )
        if resolve_kernel(kernel) == "packed":
            packed = PackedStatuses.from_statuses(statuses)
            pairwise = packed_pairwise_complete_counts(packed)
            infected = packed_infection_counts(packed)
            observed = packed_observed_counts(packed)
        else:
            pairwise = statuses.pairwise_complete_counts()
            infected = statuses.infection_counts()
            observed = statuses.observed_counts()
        return cls(
            counts={key: pairwise[key] for key in COUNT_KEYS},
            infected=infected,
            observed=observed,
            beta=statuses.beta,
            has_missing=statuses.has_missing,
        )

    @classmethod
    def zeros(cls, n_nodes: int) -> "SufficientStats":
        """The statistics of an empty (``beta=0``) history."""
        if n_nodes < 1:
            raise DataError(f"n_nodes must be >= 1, got {n_nodes}")
        return cls(
            counts={
                key: np.zeros((n_nodes, n_nodes), dtype=np.int64)
                for key in COUNT_KEYS
            },
            infected=np.zeros(n_nodes, dtype=np.int64),
            observed=np.zeros(n_nodes, dtype=np.int64),
            beta=0,
            has_missing=False,
        )

    @property
    def n_nodes(self) -> int:
        return int(self.infected.shape[0])

    # ------------------------------------------------------------------
    # shape / provenance validation
    # ------------------------------------------------------------------
    def _validate_shapes(self, label: str) -> None:
        """Raise a clear :class:`~repro.exceptions.DataError` when the
        cached arrays are internally inconsistent, instead of letting a
        raw numpy broadcast error escape downstream."""
        n = self.n_nodes
        for key in COUNT_KEYS:
            if key not in self.counts:
                raise DataError(
                    f"{label} statistics are missing the {key!r} count matrix"
                )
            shape = np.shape(self.counts[key])
            if shape != (n, n):
                raise DataError(
                    f"{label} statistics pair {n}-node marginals with a "
                    f"{shape} {key!r} count matrix (expected {(n, n)})"
                )
        for name, vector in (("infected", self.infected), ("observed", self.observed)):
            if np.shape(vector) != (n,):
                raise DataError(
                    f"{label} statistics carry a {np.shape(vector)} "
                    f"{name} vector for {n} nodes"
                )

    def _require_compatible(self, other: "SufficientStats", verb: str) -> None:
        """Guard binary count algebra (:meth:`merged` / :meth:`subtracted`).

        Counting-kernel provenance needs no check: every backend produces
        bit-identical int64 counts (see :mod:`repro.core.kernels`), so
        statistics from different kernels mix freely.  Mask provenance is
        additive too — ``has_missing`` ORs and the per-pair ``obs``
        counts keep the pairwise-complete estimator exact — but the two
        operands must describe the same node set and carry internally
        consistent arrays, which is what this validates.
        """
        if not isinstance(other, SufficientStats):
            raise DataError(
                f"cannot {verb} SufficientStats with {type(other).__name__}"
            )
        if other.n_nodes != self.n_nodes:
            raise DataError(
                f"cannot {verb} {self.n_nodes}-node and {other.n_nodes}-node "
                "statistics"
            )
        self._validate_shapes("these")
        other._validate_shapes("the other operand's")

    # ------------------------------------------------------------------
    # incremental update
    # ------------------------------------------------------------------
    def updated(
        self,
        batch: StatusMatrix,
        *,
        kernel: str | None = None,
        tiling: "TileFanout | None" = None,
    ) -> "SufficientStats":
        """Statistics of the history with ``batch`` appended.

        ``O(Δβ · n²)``: the batch is counted on its own (with the
        ``kernel`` counting backend) and merged by integer addition,
        which is exactly equal to recounting the concatenated history.
        With a ``tiling`` spec the batch count fans out over pair-space
        tiles as retryable executor chunks (see
        :meth:`from_statuses`) — same integers, same merge.
        ``self`` is never modified; an empty batch returns ``self``
        unchanged.
        """
        if not isinstance(batch, StatusMatrix):
            batch = StatusMatrix(batch)
        if batch.n_nodes != self.n_nodes:
            raise DataError(
                f"cannot update {self.n_nodes}-node statistics with a "
                f"{batch.n_nodes}-node batch"
            )
        if batch.beta == 0:
            return self
        return self.merged(
            SufficientStats.from_statuses(batch, kernel=kernel, tiling=tiling)
        )

    def merged(self, other: "SufficientStats") -> "SufficientStats":
        """Statistics of the two histories concatenated (pure addition).

        Integer operands are promoted to int64 accumulators first, so
        merging many large-β shards whose counts arrived as int32 cannot
        silently wrap past 2³¹ − 1 (regression-tested in
        ``tests/unit/test_stats_overflow.py``).
        """
        self._require_compatible(other, "merge")
        return SufficientStats(
            counts={
                key: _accumulator(self.counts[key]) + _accumulator(other.counts[key])
                for key in COUNT_KEYS
            },
            infected=_accumulator(self.infected) + _accumulator(other.infected),
            observed=_accumulator(self.observed) + _accumulator(other.observed),
            beta=self.beta + other.beta,
            has_missing=self.has_missing or other.has_missing,
        )

    def subtracted(self, other: "SufficientStats") -> "SufficientStats":
        """Statistics of the history with the sub-history ``other`` removed
        — the integer-exact inverse of :meth:`merged`.

        Because every count is an integer sum over processes, removing a
        window's own counts is exact: ``total.subtracted(tail)`` is
        bit-identical to counting the remaining processes from scratch.
        This is what lets the drift detector compare a *recent* window
        against the *reference* (everything before it) in ``O(n²)``
        without re-reading old cascades.

        Raises :class:`~repro.exceptions.DataError` when ``other`` is not
        a sub-history of these statistics (any count would go negative).
        """
        self._require_compatible(other, "subtract")
        if other.beta > self.beta:
            raise DataError(
                f"cannot subtract a beta={other.beta} window from "
                f"beta={self.beta} statistics"
            )
        counts = {
            key: _accumulator(self.counts[key]) - _accumulator(other.counts[key])
            for key in COUNT_KEYS
        }
        infected = _accumulator(self.infected) - _accumulator(other.infected)
        observed = _accumulator(self.observed) - _accumulator(other.observed)
        beta = self.beta - other.beta
        if (
            any(np.any(counts[key] < 0) for key in COUNT_KEYS)
            or np.any(infected < 0)
            or np.any(observed < 0)
        ):
            raise DataError(
                "subtracted statistics went negative: the operand is not a "
                "sub-history of these statistics"
            )
        # A history has missing entries iff some node was observed in
        # fewer than all of its processes, so the flag of the remainder
        # is derivable exactly from the remaining counts.
        has_missing = bool(beta > 0 and np.any(observed < beta))
        return SufficientStats(
            counts=counts,
            infected=infected,
            observed=observed,
            beta=beta,
            has_missing=has_missing,
        )

    def count_matrix(self, key: str) -> np.ndarray:
        """One dense ``(n, n)`` int64 count matrix — the same accessor
        :class:`~repro.core.tiles.TiledSufficientStats` exposes, so
        consumers that densify one plane at a time (model snapshots,
        drift) work against either representation."""
        if key not in COUNT_KEYS:
            raise DataError(f"unknown count key: {key!r}")
        return np.ascontiguousarray(self.counts[key], dtype=np.int64)

    # ------------------------------------------------------------------
    # derived estimates
    # ------------------------------------------------------------------
    def mi_terms(self) -> dict[str, np.ndarray]:
        """Pointwise MI terms from the cached counts.

        Dispatches exactly like :func:`repro.core.imi.pointwise_mi_terms`
        does on the concatenated history: the clean-data formulas when no
        entry was ever missing, the pairwise-complete formulas otherwise —
        so the floating-point pipeline (and hence the result, bit for bit)
        matches a from-scratch estimate.
        """
        if self.beta == 0:
            raise DataError("cannot estimate MI from zero diffusion processes")
        if self.has_missing:
            return mi_terms_from_pairwise_counts(dict(self.counts))
        joints = {key: self.counts[key] for key in ("11", "10", "01", "00")}
        return mi_terms_from_joint_counts(joints, self.infected, self.beta)

    def mi_matrix(self, kind: str = "infection") -> np.ndarray:
        """The pairwise MI matrix (``"infection"`` or ``"traditional"``)
        from the cached counts, bit-identical to the from-scratch one."""
        terms = self.mi_terms()
        if kind == "infection":
            return imi_from_terms(terms)
        if kind == "traditional":
            return mi_from_terms(terms)
        raise DataError(f"unknown MI kind: {kind!r}")

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def checksum(self) -> str:
        """Deterministic SHA-256 over every cached count.

        Pinned by the golden incremental fixture
        (``tests/data/golden_incremental.json``) and verified on model
        :meth:`~repro.core.tends.TendsModel.load`, so silent count drift —
        a missed batch, a double-applied batch, a corrupted snapshot —
        is caught instead of propagating into inferences.

        Internally inconsistent statistics (count matrices whose shapes
        disagree with the marginals) raise a clear
        :class:`~repro.exceptions.DataError` instead of checksumming
        garbage or failing with a raw numpy error.
        """
        self._validate_shapes("these")
        digest = hashlib.sha256()
        digest.update(f"beta={self.beta};missing={self.has_missing};".encode())
        for key in COUNT_KEYS:
            array = np.ascontiguousarray(self.counts[key], dtype=np.int64)
            digest.update(key.encode())
            digest.update(str(array.shape).encode())
            digest.update(array.tobytes())
        for name, array in (("infected", self.infected), ("observed", self.observed)):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(array, dtype=np.int64).tobytes())
        return digest.hexdigest()

    def equals(self, other: "SufficientStats") -> bool:
        """Exact equality of every cached count (tests and guards)."""
        if not isinstance(other, SufficientStats):
            return False
        if (
            self.beta != other.beta
            or self.has_missing != other.has_missing
            or self.n_nodes != other.n_nodes
        ):
            return False
        if not all(
            np.array_equal(self.counts[key], other.counts[key])
            for key in COUNT_KEYS
        ):
            return False
        return bool(
            np.array_equal(self.infected, other.infected)
            and np.array_equal(self.observed, other.observed)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"SufficientStats(n_nodes={self.n_nodes}, beta={self.beta}, "
            f"has_missing={self.has_missing})"
        )


@dataclass(frozen=True)
class WindowedStats:
    """A ring of per-window :class:`SufficientStats` blocks.

    Streaming workloads on drifting networks need *recent* evidence
    weighed against *stale* evidence without re-reading old cascades.
    ``WindowedStats`` keeps the sufficient statistics as a ring of
    consecutive cascade windows: pushing a batch fills the newest window
    (rolling a fresh one at each ``window_cascades`` boundary), and once
    the ring exceeds ``max_windows`` the oldest blocks are evicted —
    memory stays ``O(max_windows · n²)`` however long the stream runs.

    Derived views are pure count algebra (exact integer addition):

    * :meth:`total` — all retained windows merged.  With a single
      unbounded window (``window_cascades=None``) this is **bit-identical**
      to chaining :meth:`SufficientStats.updated`, held by
      ``tests/property/test_prop_drift.py``.
    * :meth:`recent` / :meth:`reference` — the newest *k* windows vs.
      everything retained before them, the two operands of
      :func:`repro.core.drift.detect_drift`.
    * :meth:`decayed` — exponentially down-weighted combination
      (weight ``decay**age`` per window).  ``decay=1.0`` short-circuits
      to the exact integer :meth:`total` path; ``decay<1`` yields
      float64-weighted counts whose effective ``beta`` is the weighted
      sum — consumable by the MI pipelines, which divide by ``beta``
      rather than assuming integers.

    Instances are immutable: :meth:`pushed` returns a new ring sharing
    the untouched window blocks (copy-on-write, like the rest of the
    incremental machinery).
    """

    windows: tuple[SufficientStats, ...]
    window_cascades: int | None = None
    max_windows: int | None = None
    decay: float = 1.0
    evicted_beta: int = 0
    evicted_windows: int = 0

    def __post_init__(self) -> None:
        if not self.windows:
            raise DataError("WindowedStats needs at least one window block")
        if self.window_cascades is not None and self.window_cascades < 1:
            raise DataError(
                f"window_cascades must be >= 1, got {self.window_cascades}"
            )
        if self.max_windows is not None and self.max_windows < 1:
            raise DataError(f"max_windows must be >= 1, got {self.max_windows}")
        if not (0.0 < self.decay <= 1.0):
            raise DataError(f"decay must be in (0, 1], got {self.decay}")

    # ------------------------------------------------------------------
    @classmethod
    def empty(
        cls,
        n_nodes: int,
        *,
        window_cascades: int | None = None,
        max_windows: int | None = None,
        decay: float = 1.0,
    ) -> "WindowedStats":
        """A ring with one empty window, ready to absorb batches."""
        return cls(
            windows=(SufficientStats.zeros(n_nodes),),
            window_cascades=window_cascades,
            max_windows=max_windows,
            decay=decay,
        )

    @property
    def n_nodes(self) -> int:
        return self.windows[0].n_nodes

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    @property
    def beta(self) -> int:
        """Processes retained across all windows (evicted ones excluded)."""
        return sum(window.beta for window in self.windows)

    # ------------------------------------------------------------------
    def pushed(
        self,
        batch: StatusMatrix,
        *,
        kernel: str | None = None,
        tiling: "TileFanout | None" = None,
    ) -> "WindowedStats":
        """The ring with ``batch`` absorbed (immutably).

        The batch is split at window boundaries: the newest window fills
        up to ``window_cascades``, then fresh windows roll — a single
        push may add several blocks.  Windows beyond ``max_windows`` are
        evicted oldest-first (tracked by :attr:`evicted_beta`).  A
        ``tiling`` spec fans each window's count over pair-space tiles
        exactly like :meth:`SufficientStats.updated`.
        """
        if not isinstance(batch, StatusMatrix):
            batch = StatusMatrix(batch)
        if batch.n_nodes != self.n_nodes:
            raise DataError(
                f"cannot push a {batch.n_nodes}-node batch into "
                f"{self.n_nodes}-node windowed statistics"
            )
        if batch.beta == 0:
            return self
        windows = list(self.windows)
        if self.window_cascades is None:
            windows[-1] = windows[-1].updated(batch, kernel=kernel, tiling=tiling)
        else:
            offset = 0
            while offset < batch.beta:
                room = self.window_cascades - windows[-1].beta
                if room == 0:
                    windows.append(SufficientStats.zeros(self.n_nodes))
                    room = self.window_cascades
                take = min(room, batch.beta - offset)
                piece = batch.subset(range(offset, offset + take))
                windows[-1] = windows[-1].updated(
                    piece, kernel=kernel, tiling=tiling
                )
                offset += take
        evicted_beta = self.evicted_beta
        evicted_windows = self.evicted_windows
        if self.max_windows is not None and len(windows) > self.max_windows:
            dropped = windows[: len(windows) - self.max_windows]
            windows = windows[len(windows) - self.max_windows :]
            evicted_beta += sum(window.beta for window in dropped)
            evicted_windows += len(dropped)
        return WindowedStats(
            windows=tuple(windows),
            window_cascades=self.window_cascades,
            max_windows=self.max_windows,
            decay=self.decay,
            evicted_beta=evicted_beta,
            evicted_windows=evicted_windows,
        )

    # ------------------------------------------------------------------
    # derived views (exact integer algebra)
    # ------------------------------------------------------------------
    def total(self) -> SufficientStats:
        """All retained windows merged (exact integer addition)."""
        total = self.windows[0]
        for window in self.windows[1:]:
            total = total.merged(window)
        return total

    def recent(self, n_windows: int = 1) -> SufficientStats:
        """The newest ``n_windows`` blocks merged."""
        if not 1 <= n_windows <= len(self.windows):
            raise DataError(
                f"recent({n_windows}) out of range for {len(self.windows)} "
                "window(s)"
            )
        tail = self.windows[-n_windows:]
        merged = tail[0]
        for window in tail[1:]:
            merged = merged.merged(window)
        return merged

    def reference(self, n_recent: int = 1) -> SufficientStats:
        """Everything retained *before* the newest ``n_recent`` blocks
        (the drift detector's baseline operand)."""
        if not 1 <= n_recent < len(self.windows):
            raise DataError(
                f"reference({n_recent}) needs at least {n_recent + 1} "
                f"windows, have {len(self.windows)}"
            )
        head = self.windows[:-n_recent]
        merged = head[0]
        for window in head[1:]:
            merged = merged.merged(window)
        return merged

    def decayed(self) -> SufficientStats:
        """Exponentially down-weighted combination of the windows.

        Window ``k`` from the newest gets weight ``decay**k``; the
        newest always weighs 1.  At ``decay=1.0`` this *is* the exact
        integer :meth:`total` — bit-identical to today's cumulative
        counts — so turning decay on is strictly opt-in.  With
        ``decay<1`` the returned statistics carry float64 counts and a
        float effective ``beta`` (the weighted process count); they feed
        the MI estimators, which are ratio pipelines, but are not meant
        for :meth:`SufficientStats.checksum`-style integrity checks.
        """
        if self.decay == 1.0:
            return self.total()
        ages = range(len(self.windows) - 1, -1, -1)
        weights = [self.decay**age for age in ages]
        counts = {
            key: sum(
                weight * np.asarray(window.counts[key], dtype=np.float64)
                for weight, window in zip(weights, self.windows)
            )
            for key in COUNT_KEYS
        }
        infected = sum(
            weight * np.asarray(window.infected, dtype=np.float64)
            for weight, window in zip(weights, self.windows)
        )
        observed = sum(
            weight * np.asarray(window.observed, dtype=np.float64)
            for weight, window in zip(weights, self.windows)
        )
        beta = sum(
            weight * window.beta
            for weight, window in zip(weights, self.windows)
        )
        return SufficientStats(
            counts=counts,
            infected=infected,
            observed=observed,
            beta=beta,
            has_missing=any(window.has_missing for window in self.windows),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"WindowedStats(n_windows={self.n_windows}, beta={self.beta}, "
            f"window_cascades={self.window_cascades}, "
            f"max_windows={self.max_windows}, decay={self.decay})"
        )
