"""Cached additive sufficient statistics for incremental TENDS fits.

Every quantity TENDS's pairwise stages consume is an *additive* integer
count over the observed diffusion processes: the four pairwise joint
counts feeding IMI (Eq. 24–25), the per-pair effective sample sizes
``β_ij`` of the masked-data estimator, and the per-node infected /
observed totals behind the marginals and the Theorem-2 ``δ_i`` bound.
Integer addition is exact, so accumulating these counts batch by batch
yields **bit-identical** matrices to a single pass over the concatenated
history — which is the foundation of the
:meth:`repro.core.tends.Tends.partial_fit` equivalence guarantee
(``partial_fit`` over any batch split ≡ one-shot ``fit``; see
docs/INCREMENTAL.md and ``tests/property/test_prop_incremental.py``).

:class:`SufficientStats` is immutable: :meth:`SufficientStats.updated`
returns a new instance, leaving the previous one untouched.  That is what
makes incremental updates copy-on-write — a ``partial_fit`` that fails
mid-way cannot corrupt the model it started from.

Updating with a ``Δβ × n`` batch costs ``O(Δβ · n²)`` (the batch's own
count products plus an ``O(n²)`` merge), instead of the ``O(β · n²)``
full-history recount, so long-running services pay per *arriving* data,
not per *accumulated* data.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.imi import (
    imi_from_terms,
    mi_from_terms,
    mi_terms_from_joint_counts,
    mi_terms_from_pairwise_counts,
)
from repro.core.kernels import (
    PackedStatuses,
    packed_infection_counts,
    packed_observed_counts,
    packed_pairwise_complete_counts,
    resolve_kernel,
)
from repro.exceptions import DataError
from repro.simulation.statuses import StatusMatrix

__all__ = ["SufficientStats", "COUNT_KEYS"]

#: Keys of the pairwise count matrices, in canonical (serialisation) order:
#: the four joint counts plus the per-pair observed-process count ``β_ij``.
COUNT_KEYS = ("11", "10", "01", "00", "obs")


@dataclass(frozen=True)
class SufficientStats:
    """Additive sufficient statistics of a status-matrix history.

    Attributes
    ----------
    counts:
        The five ``(n, n)`` int64 matrices of
        :meth:`StatusMatrix.pairwise_complete_counts` — pairwise joint
        counts ``"11"``/``"10"``/``"01"``/``"00"`` plus ``"obs"``
        (per-pair observed-process count ``β_ij``; identically ``beta``
        when nothing is missing).
    infected:
        Per-node observed-infection totals (the paper's ``N₂`` per node).
    observed:
        Per-node observed-process counts (``beta`` everywhere for fully
        observed histories).
    beta:
        Total number of processes absorbed so far.
    has_missing:
        Whether any absorbed batch carried unobserved entries.  Controls
        which MI estimator applies, exactly mirroring
        ``StatusMatrix.has_missing`` of the concatenated history.
    """

    counts: Mapping[str, np.ndarray]
    infected: np.ndarray
    observed: np.ndarray
    beta: int
    has_missing: bool

    # ------------------------------------------------------------------
    @classmethod
    def from_statuses(
        cls, statuses: StatusMatrix, *, kernel: str | None = None
    ) -> "SufficientStats":
        """Count one status matrix (a whole history or a single batch).

        ``kernel`` selects the counting backend (see
        :func:`repro.core.kernels.resolve_kernel`); the counts are int64
        either way, so the statistics are bit-identical.
        """
        if not isinstance(statuses, StatusMatrix):
            statuses = StatusMatrix(statuses)
        if resolve_kernel(kernel) == "packed":
            packed = PackedStatuses.from_statuses(statuses)
            pairwise = packed_pairwise_complete_counts(packed)
            infected = packed_infection_counts(packed)
            observed = packed_observed_counts(packed)
        else:
            pairwise = statuses.pairwise_complete_counts()
            infected = statuses.infection_counts()
            observed = statuses.observed_counts()
        return cls(
            counts={key: pairwise[key] for key in COUNT_KEYS},
            infected=infected,
            observed=observed,
            beta=statuses.beta,
            has_missing=statuses.has_missing,
        )

    @property
    def n_nodes(self) -> int:
        return int(self.infected.shape[0])

    # ------------------------------------------------------------------
    # incremental update
    # ------------------------------------------------------------------
    def updated(
        self, batch: StatusMatrix, *, kernel: str | None = None
    ) -> "SufficientStats":
        """Statistics of the history with ``batch`` appended.

        ``O(Δβ · n²)``: the batch is counted on its own (with the
        ``kernel`` counting backend) and merged by integer addition,
        which is exactly equal to recounting the concatenated history.
        ``self`` is never modified; an empty batch returns ``self``
        unchanged.
        """
        if not isinstance(batch, StatusMatrix):
            batch = StatusMatrix(batch)
        if batch.n_nodes != self.n_nodes:
            raise DataError(
                f"cannot update {self.n_nodes}-node statistics with a "
                f"{batch.n_nodes}-node batch"
            )
        if batch.beta == 0:
            return self
        return self.merged(SufficientStats.from_statuses(batch, kernel=kernel))

    def merged(self, other: "SufficientStats") -> "SufficientStats":
        """Statistics of the two histories concatenated (pure addition)."""
        if other.n_nodes != self.n_nodes:
            raise DataError(
                f"cannot merge {self.n_nodes}-node and {other.n_nodes}-node "
                "statistics"
            )
        return SufficientStats(
            counts={
                key: self.counts[key] + other.counts[key] for key in COUNT_KEYS
            },
            infected=self.infected + other.infected,
            observed=self.observed + other.observed,
            beta=self.beta + other.beta,
            has_missing=self.has_missing or other.has_missing,
        )

    # ------------------------------------------------------------------
    # derived estimates
    # ------------------------------------------------------------------
    def mi_terms(self) -> dict[str, np.ndarray]:
        """Pointwise MI terms from the cached counts.

        Dispatches exactly like :func:`repro.core.imi.pointwise_mi_terms`
        does on the concatenated history: the clean-data formulas when no
        entry was ever missing, the pairwise-complete formulas otherwise —
        so the floating-point pipeline (and hence the result, bit for bit)
        matches a from-scratch estimate.
        """
        if self.beta == 0:
            raise DataError("cannot estimate MI from zero diffusion processes")
        if self.has_missing:
            return mi_terms_from_pairwise_counts(dict(self.counts))
        joints = {key: self.counts[key] for key in ("11", "10", "01", "00")}
        return mi_terms_from_joint_counts(joints, self.infected, self.beta)

    def mi_matrix(self, kind: str = "infection") -> np.ndarray:
        """The pairwise MI matrix (``"infection"`` or ``"traditional"``)
        from the cached counts, bit-identical to the from-scratch one."""
        terms = self.mi_terms()
        if kind == "infection":
            return imi_from_terms(terms)
        if kind == "traditional":
            return mi_from_terms(terms)
        raise DataError(f"unknown MI kind: {kind!r}")

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def checksum(self) -> str:
        """Deterministic SHA-256 over every cached count.

        Pinned by the golden incremental fixture
        (``tests/data/golden_incremental.json``) and verified on model
        :meth:`~repro.core.tends.TendsModel.load`, so silent count drift —
        a missed batch, a double-applied batch, a corrupted snapshot —
        is caught instead of propagating into inferences.
        """
        digest = hashlib.sha256()
        digest.update(f"beta={self.beta};missing={self.has_missing};".encode())
        for key in COUNT_KEYS:
            array = np.ascontiguousarray(self.counts[key], dtype=np.int64)
            digest.update(key.encode())
            digest.update(str(array.shape).encode())
            digest.update(array.tobytes())
        for name, array in (("infected", self.infected), ("observed", self.observed)):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(array, dtype=np.int64).tobytes())
        return digest.hexdigest()

    def equals(self, other: "SufficientStats") -> bool:
        """Exact equality of every cached count (tests and guards)."""
        if not isinstance(other, SufficientStats):
            return False
        if (
            self.beta != other.beta
            or self.has_missing != other.has_missing
            or self.n_nodes != other.n_nodes
        ):
            return False
        if not all(
            np.array_equal(self.counts[key], other.counts[key])
            for key in COUNT_KEYS
        ):
            return False
        return bool(
            np.array_equal(self.infected, other.infected)
            and np.array_equal(self.observed, other.observed)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"SufficientStats(n_nodes={self.n_nodes}, beta={self.beta}, "
            f"has_missing={self.has_missing})"
        )
