"""TENDS core: infection MI, threshold selection, scoring, parent search."""

from repro.core.config import TendsConfig
from repro.core.drift import (
    DriftConfig,
    DriftReport,
    PairDrift,
    detect_drift,
)
from repro.core.edge_probabilities import (
    attributable_risk,
    estimate_edge_probabilities,
)
from repro.core.executor import (
    ExecutionPlan,
    ParallelExecutor,
    WorkerStats,
    execution_env,
    split_chunks,
)
from repro.core.imi import (
    infection_mi_matrix,
    pointwise_mi_terms,
    traditional_mi_matrix,
)
from repro.core.kernels import (
    PackedStatuses,
    pack_bits,
    packed_family_counts,
    packed_joint_counts,
    packed_pairwise_complete_counts,
    popcount_words,
    resolve_kernel,
    unpack_bits,
)
from repro.core.kmeans import fixed_zero_two_means
from repro.core.scoring import (
    FamilyCounts,
    delta_i,
    family_counts,
    global_score,
    local_score,
    log_likelihood,
    penalty,
    size_bound,
)
from repro.core.search import ParentSearch, SearchDiagnostics, prune_candidates
from repro.core.selection import (
    ThresholdSelection,
    predictive_log_likelihood,
    select_threshold_scale,
)
from repro.core.stats import SufficientStats, WindowedStats
from repro.core.tends import (
    Tends,
    TendsModel,
    TendsResult,
    UpdateInfo,
    merge_results,
)
from repro.core.tiles import (
    DEFAULT_MAX_RESIDENT_TILES,
    TiledSufficientStats,
    TileFanout,
    TileGrid,
    TileStore,
    tiled_batch_counts,
)

__all__ = [
    "TendsConfig",
    "DriftConfig",
    "DriftReport",
    "PairDrift",
    "detect_drift",
    "attributable_risk",
    "estimate_edge_probabilities",
    "ExecutionPlan",
    "ParallelExecutor",
    "WorkerStats",
    "execution_env",
    "split_chunks",
    "pointwise_mi_terms",
    "infection_mi_matrix",
    "traditional_mi_matrix",
    "PackedStatuses",
    "pack_bits",
    "unpack_bits",
    "popcount_words",
    "packed_joint_counts",
    "packed_pairwise_complete_counts",
    "packed_family_counts",
    "resolve_kernel",
    "fixed_zero_two_means",
    "FamilyCounts",
    "family_counts",
    "log_likelihood",
    "penalty",
    "local_score",
    "global_score",
    "delta_i",
    "size_bound",
    "ParentSearch",
    "SearchDiagnostics",
    "prune_candidates",
    "ThresholdSelection",
    "predictive_log_likelihood",
    "select_threshold_scale",
    "SufficientStats",
    "WindowedStats",
    "Tends",
    "TendsModel",
    "TendsResult",
    "UpdateInfo",
    "merge_results",
    "DEFAULT_MAX_RESIDENT_TILES",
    "TiledSufficientStats",
    "TileFanout",
    "TileGrid",
    "TileStore",
    "tiled_batch_counts",
]
