"""Tiled sufficient statistics: shard the O(n²) pair-count memory wall.

TENDS' stage 1 needs five ``(n, n)`` int64 count matrices and an
``(n, n)`` float64 IMI matrix — ~80 n² bytes resident with the dense
pipeline, which caps single-machine fits around a few thousand nodes
even after the packed popcount kernels made them fast.  Every one of
those matrices is *blockwise computable*: the counts of the pair block
``(A, B)`` depend only on the status rows of ``A`` and ``B``, and the
MI float pipeline is purely elementwise on top of the counts and the
per-node marginals.  This module exploits that:

* :class:`TileGrid` partitions the (i, j) pair space into fixed-size
  square tiles; only the upper triangle of blocks is computed (the
  counts obey ``n11 = n11ᵀ``, ``n10 = n01ᵀ``, ``obs = obsᵀ``), and the
  lower triangle is derived by exact integer transposition.
* :func:`count_tile_chunk` is a module-level executor chunk function —
  each tile is a retryable unit under the *same*
  :class:`~repro.core.executor.ParallelExecutor` backoff / fallback /
  timeout machinery as the stage-3 parent search.  Workers write their
  tiles straight to the spill directory (crash-atomic ``.npy`` +
  CRC-32 sidecar), so no worker ever ships an O(n²) payload back.
* :class:`TileStore` reads spilled tiles back as memory-maps under an
  LRU cap (``max_resident_tiles``), exposing mirrored lower-triangle
  views without materialising them.
* :class:`TiledSufficientStats` duck-types
  :class:`~repro.core.stats.SufficientStats` for everything the
  pipeline consumes — :meth:`~TiledSufficientStats.mi_matrix`
  assembles the IMI into a float64 memory-map tile by tile,
  :meth:`~TiledSufficientStats.checksum` streams the count bytes in
  dense row-major order so the digest is *equal* to the dense one, and
  :meth:`~TiledSufficientStats.updated` rolls a new copy-on-write
  generation of tiles (old tile + batch tile, fanned out the same way).

**Bit-identity.**  Tile counts are integer popcounts / matmuls over row
and column slices, so they equal the corresponding dense-matrix slices
exactly; the MI pipeline applied per tile runs the identical elementwise
float operations on identical inputs, so the assembled IMI matrix, the
2-means threshold, and everything downstream are bit-identical to the
dense path (held by ``tests/property/test_prop_tiles.py``).

**Memory model.**  Peak residency of the counting stage is
O(n·tile) packed words + O(tile²) per in-flight tile, instead of
O(n²); the IMI lives in a spill-directory memory-map.  The 2-means
threshold stage still extracts the off-diagonal value vector (one
float64 O(n²) term — the algorithm sorts the full vector), which is
~10× below the dense pipeline's peak.  See docs/SCALING.md.

**Spill format.**  A spill root holds one generation directory per
copy-on-write update (``gen-00000000`` for the fit, ``gen-00000001``
after the first ``updated`` batch, ...).  Each generation contains a
``spill-meta.json`` identity header (node count, tile size, β, missing
flag, and a source digest chained over the absorbed batches) plus one
``tile-<bi>-<bj>.npy`` per upper-triangle block — a ``(5, h, w)`` int64
stack in :data:`~repro.core.stats.COUNT_KEYS` order — with a
``.npy.crc`` JSON sidecar recording the CRC-32 and shape.  Tiles whose
file, CRC, and shape all validate are *reused* on resume; anything
missing, truncated, or corrupted is recomputed (held by
``tests/faults/test_tile_recovery.py``).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import shutil
import tempfile
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.core.executor import ExecutionPlan, ParallelExecutor
from repro.core.kernels import (
    PackedStatuses,
    _pairwise_popcount,
    resolve_kernel,
)
from repro.exceptions import DataError
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import NULL_TRACER
from repro.simulation.statuses import StatusMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (stats ↔ tiles)
    from repro.core.stats import SufficientStats

__all__ = [
    "DEFAULT_MAX_RESIDENT_TILES",
    "TileGrid",
    "TileStore",
    "TileFanout",
    "TiledSufficientStats",
    "count_tile_chunk",
    "tiled_batch_counts",
    "write_tile",
    "read_tile",
    "validate_tile",
]

#: Keys of the count planes in every ``(5, h, w)`` tile stack, in the
#: canonical :data:`repro.core.stats.COUNT_KEYS` order.  Duplicated here
#: (and asserted equal in the tests) instead of imported so this module
#: stays importable from ``repro.core.stats`` without a cycle.
STACK_KEYS = ("11", "10", "01", "00", "obs")

#: Default LRU cap on simultaneously memory-mapped tiles.
DEFAULT_MAX_RESIDENT_TILES = 16

_META_NAME = "spill-meta.json"
_META_VERSION = 1


# ----------------------------------------------------------------------
# grid geometry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TileGrid:
    """Fixed-size square blocking of the ``n × n`` pair space.

    Block ``(bi, bj)`` covers rows ``span(bi)`` × columns ``span(bj)``;
    edge blocks are ragged when ``tile_size`` does not divide
    ``n_nodes``.  Only upper-triangle blocks (``bi <= bj``) are ever
    computed or stored — the pairwise counts are transpose-symmetric
    (with the ``"10"``/``"01"`` planes swapping), so the lower triangle
    is derived exactly.
    """

    n_nodes: int
    tile_size: int

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise DataError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.tile_size < 1:
            raise DataError(f"tile_size must be >= 1, got {self.tile_size}")

    @property
    def n_blocks(self) -> int:
        """Blocks per axis: ``ceil(n_nodes / tile_size)``."""
        return -(-self.n_nodes // self.tile_size)

    def span(self, block: int) -> tuple[int, int]:
        """``[start, stop)`` node range of one block index."""
        if not 0 <= block < self.n_blocks:
            raise DataError(
                f"block {block} out of range for {self.n_blocks} blocks"
            )
        start = block * self.tile_size
        return start, min(start + self.tile_size, self.n_nodes)

    def block_shape(self, bi: int, bj: int) -> tuple[int, int]:
        """``(height, width)`` of block ``(bi, bj)``."""
        a0, a1 = self.span(bi)
        b0, b1 = self.span(bj)
        return a1 - a0, b1 - b0

    def blocks(self) -> list[tuple[int, int]]:
        """Every upper-triangle block, row-major — the unit of fan-out,
        spill, retry, and checkpoint resume."""
        return [
            (bi, bj)
            for bi in range(self.n_blocks)
            for bj in range(bi, self.n_blocks)
        ]


# ----------------------------------------------------------------------
# crash-atomic tile files
# ----------------------------------------------------------------------

def _tile_name(block: tuple[int, int]) -> str:
    return f"tile-{block[0]:05d}-{block[1]:05d}.npy"


def _write_atomic(path: Path, payload: bytes) -> None:
    """Same-directory temp file + fsync + rename, so a crash at any
    instruction leaves either the old file or the new file — never a
    torn one (the same discipline as ``TendsModel.save``)."""
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):  # pragma: no cover - cleanup path
            os.unlink(tmp_name)
        raise
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def write_tile(directory: Path | str, block: tuple[int, int], stack: np.ndarray) -> int:
    """Persist one ``(5, h, w)`` int64 tile stack crash-atomically.

    The ``.npy`` payload is serialised in memory first so its CRC-32 is
    computed over exactly the bytes that land on disk; the CRC and shape
    go to a ``.npy.crc`` JSON sidecar written second (a crash between
    the two writes leaves a tile without a sidecar, which
    :func:`validate_tile` treats as incomplete → recomputed on resume).
    Returns the CRC.
    """
    directory = Path(directory)
    stack = np.ascontiguousarray(stack, dtype=np.int64)
    buffer = io.BytesIO()
    np.lib.format.write_array(buffer, stack, allow_pickle=False)
    payload = buffer.getvalue()
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    tile_path = directory / _tile_name(block)
    _write_atomic(tile_path, payload)
    sidecar = json.dumps({"crc32": crc, "shape": list(stack.shape)}).encode()
    _write_atomic(Path(str(tile_path) + ".crc"), sidecar)
    return crc


def validate_tile(
    directory: Path | str, block: tuple[int, int], expected_shape: tuple[int, ...]
) -> bool:
    """Whether a spilled tile is complete and uncorrupted.

    Checks existence of both files, the sidecar's recorded shape against
    the grid's expectation, and the CRC-32 of the on-disk ``.npy`` bytes
    against the sidecar — so truncation, bit rot, and a stale tile from
    a different grid are all detected (and trigger recomputation).
    """
    directory = Path(directory)
    tile_path = directory / _tile_name(block)
    crc_path = Path(str(tile_path) + ".crc")
    if not tile_path.is_file() or not crc_path.is_file():
        return False
    try:
        sidecar = json.loads(crc_path.read_text())
        recorded_crc = int(sidecar["crc32"])
        recorded_shape = tuple(int(v) for v in sidecar["shape"])
    except (ValueError, KeyError, TypeError, json.JSONDecodeError):
        return False
    if recorded_shape != tuple(expected_shape):
        return False
    return zlib.crc32(tile_path.read_bytes()) & 0xFFFFFFFF == recorded_crc


def read_tile(
    directory: Path | str,
    block: tuple[int, int],
    expected_shape: tuple[int, ...],
    *,
    mmap: bool = True,
) -> np.ndarray:
    """Load one tile stack, memory-mapped read-only by default.

    Shape and dtype are re-validated on every read so a corrupted or
    stale file raises :class:`~repro.exceptions.DataError` instead of
    feeding wrong counts downstream.
    """
    tile_path = Path(directory) / _tile_name(block)
    try:
        array = np.load(
            tile_path, mmap_mode="r" if mmap else None, allow_pickle=False
        )
    except (OSError, ValueError) as error:
        raise DataError(f"cannot read spilled tile {tile_path}: {error}") from error
    if array.shape != tuple(expected_shape) or array.dtype != np.int64:
        raise DataError(
            f"spilled tile {tile_path} has shape {array.shape} / dtype "
            f"{array.dtype}, expected {tuple(expected_shape)} int64"
        )
    return array


def _spilled_bytes(directory: Path) -> int:
    return sum(path.stat().st_size for path in directory.glob("tile-*.npy"))


# ----------------------------------------------------------------------
# spill metadata (per generation directory)
# ----------------------------------------------------------------------

def _read_meta(directory: Path) -> dict | None:
    path = directory / _META_NAME
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _prepare_directory(directory: Path, meta: dict) -> None:
    """Make ``directory`` a valid spill target for ``meta``.

    A directory whose recorded identity matches is kept as-is (its valid
    tiles become the resume checkpoint); anything else — different data,
    different grid, torn metadata — is wiped so stale tiles can never
    satisfy a CRC check for the wrong statistics.
    """
    if directory.is_dir():
        if _read_meta(directory) == meta:
            return
        shutil.rmtree(directory)
    directory.mkdir(parents=True, exist_ok=True)
    _write_atomic(
        directory / _META_NAME,
        json.dumps(meta, sort_keys=True, separators=(",", ":")).encode(),
    )


def _statuses_digest(statuses: StatusMatrix) -> str:
    """Content digest identifying the counted data (resume safety)."""
    digest = hashlib.sha256()
    digest.update(f"beta={statuses.beta};n={statuses.n_nodes};".encode())
    digest.update(np.ascontiguousarray(statuses.values, dtype=np.uint8).tobytes())
    if statuses.mask is not None:
        digest.update(b"mask")
        digest.update(np.ascontiguousarray(statuses.mask, dtype=np.bool_).tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# per-tile counting (runs inside executor workers)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TileContext:
    """Picklable per-fan-out context shipped once per worker.

    ``ones``/``mask`` hold the packed uint64 word rows for the
    ``"packed"`` kernel, or the raw ``(β, n)`` uint8 values / bool mask
    for the ``"numpy"`` kernel.  ``infected`` is the counted batch's own
    per-node infected totals (used for the marginal-difference counts on
    the unmasked path).  ``directory`` is the spill target (``None``
    ships count stacks back to the dispatcher instead); when
    ``base_directory`` is set each computed batch tile is added to the
    previous generation's tile before spilling — the copy-on-write
    update step.
    """

    grid: TileGrid
    kernel: str
    beta: int
    has_missing: bool
    infected: np.ndarray
    ones: np.ndarray
    mask: np.ndarray | None
    directory: str | None = None
    base_directory: str | None = None


def _tile_stack(context: TileContext, block: tuple[int, int]) -> np.ndarray:
    """The ``(5, h, w)`` int64 count stack of one upper-triangle block.

    Integer popcounts (packed) or integer matmuls (numpy) over row /
    column slices — exactly equal to slicing the dense count matrices.
    """
    bi, bj = block
    a0, a1 = context.grid.span(bi)
    b0, b1 = context.grid.span(bj)
    if context.kernel == "packed":
        if context.mask is None:
            n11 = _pairwise_popcount(context.ones[a0:a1], context.ones[b0:b1])
            n10 = context.infected[a0:a1, None] - n11
            n01 = context.infected[None, b0:b1] - n11
            n00 = context.beta - n11 - n10 - n01
            obs = np.full(n11.shape, context.beta, dtype=np.int64)
        else:
            observed_ones_a = context.ones[a0:a1] & context.mask[a0:a1]
            observed_ones_b = context.ones[b0:b1] & context.mask[b0:b1]
            n11 = _pairwise_popcount(observed_ones_a, observed_ones_b)
            n10 = _pairwise_popcount(observed_ones_a, context.mask[b0:b1]) - n11
            n01 = _pairwise_popcount(context.mask[a0:a1], observed_ones_b) - n11
            obs = _pairwise_popcount(context.mask[a0:a1], context.mask[b0:b1])
            n00 = obs - n11 - n10 - n01
    else:
        ones_a = context.ones[:, a0:a1].astype(np.int64)
        ones_b = context.ones[:, b0:b1].astype(np.int64)
        if context.mask is None:
            n11 = ones_a.T @ ones_b
            n10 = context.infected[a0:a1, None] - n11
            n01 = context.infected[None, b0:b1] - n11
            n00 = context.beta - n11 - n10 - n01
            obs = np.full(n11.shape, context.beta, dtype=np.int64)
        else:
            mask_a = context.mask[:, a0:a1].astype(np.int64)
            mask_b = context.mask[:, b0:b1].astype(np.int64)
            observed_ones_a = ones_a * mask_a
            observed_ones_b = ones_b * mask_b
            n11 = observed_ones_a.T @ observed_ones_b
            n10 = observed_ones_a.T @ mask_b - n11
            n01 = mask_a.T @ observed_ones_b - n11
            obs = mask_a.T @ mask_b
            n00 = obs - n11 - n10 - n01
    return np.stack(
        [
            np.asarray(plane, dtype=np.int64)
            for plane in (n11, n10, n01, n00, obs)
        ]
    )


def count_tile_chunk(
    context: TileContext, blocks: Sequence[tuple[int, int]]
) -> list[tuple[tuple[int, int], object]]:
    """Executor chunk function: count (and optionally spill) tiles.

    Module-level and pure so the process backend can ship it by
    reference and recovery can re-execute it: recomputing a tile writes
    the identical bytes (integer counts), so retries and worker crashes
    are invisible in the result.  Spilling workers return only
    ``(block, crc)`` — no O(tile²) payload travels back to the
    dispatcher; the return-counts mode (``directory is None``) ships the
    stacks for dense accumulation instead.
    """
    results: list[tuple[tuple[int, int], object]] = []
    for block in blocks:
        block = (int(block[0]), int(block[1]))
        stack = _tile_stack(context, block)
        if context.base_directory is not None:
            expected = (len(STACK_KEYS),) + context.grid.block_shape(*block)
            base = read_tile(context.base_directory, block, expected)
            stack = stack + base
        if context.directory is None:
            results.append((block, stack))
        else:
            crc = write_tile(context.directory, block, stack)
            results.append((block, crc))
    return results


def _build_context(
    statuses: StatusMatrix,
    grid: TileGrid,
    kernel: str | None,
    *,
    directory: str | None = None,
    base_directory: str | None = None,
) -> TileContext:
    resolved = resolve_kernel(kernel)
    if resolved == "packed":
        packed = PackedStatuses.from_statuses(statuses)
        ones: np.ndarray = packed.ones
        mask = packed.mask
    else:
        ones = statuses.values
        mask = statuses.mask
    return TileContext(
        grid=grid,
        kernel=resolved,
        beta=statuses.beta,
        has_missing=statuses.has_missing,
        infected=statuses.infection_counts(),
        ones=ones,
        mask=mask,
        directory=directory,
        base_directory=base_directory,
    )


def _fan_out(
    context: TileContext,
    blocks: Sequence[tuple[int, int]],
    *,
    plan: ExecutionPlan | None,
    tracer=NULL_TRACER,
) -> list[tuple[tuple[int, int], object]]:
    """Run :func:`count_tile_chunk` over ``blocks`` under the stage-3
    executor machinery (retries, deterministic-jitter backoff, process →
    thread → serial fallback, per-chunk timeouts)."""
    if not blocks:
        return []
    executor = ParallelExecutor(plan or ExecutionPlan.resolve(), tracer)
    results, _ = executor.map(count_tile_chunk, context, list(blocks))
    flattened: list[tuple[tuple[int, int], object]] = []
    for result in results:
        flattened.append(result)
    return flattened


def tiled_batch_counts(
    statuses: StatusMatrix,
    *,
    tile_size: int,
    kernel: str | None = None,
    plan: ExecutionPlan | None = None,
    tracer=NULL_TRACER,
    metrics=NULL_METRICS,
) -> dict[str, np.ndarray]:
    """Dense pairwise-complete counts computed tile-by-tile.

    The fan-out path of ``SufficientStats.updated`` /
    ``WindowedStats.pushed`` under tiling: each tile is a retryable
    executor chunk, the stacks ship back, and the dispatcher assembles
    them (mirroring the lower triangle exactly) into the same five dense
    int64 matrices the one-shot counters produce — bit-identical, so
    incremental services keep their equivalence guarantee.
    """
    if not isinstance(statuses, StatusMatrix):
        statuses = StatusMatrix(statuses)
    grid = TileGrid(statuses.n_nodes, tile_size)
    context = _build_context(statuses, grid, kernel)
    n = statuses.n_nodes
    counts = {key: np.empty((n, n), dtype=np.int64) for key in STACK_KEYS}
    with tracer.span(
        "tiles.compute", mode="batch", n_tiles=len(grid.blocks()), n_nodes=n
    ):
        results = _fan_out(context, grid.blocks(), plan=plan, tracer=tracer)
    metrics.inc("tiles_computed_total", len(results))
    for (bi, bj), stack in results:
        a0, a1 = grid.span(bi)
        b0, b1 = grid.span(bj)
        for index, key in enumerate(STACK_KEYS):
            counts[key][a0:a1, b0:b1] = stack[index]
        if bi != bj:
            # Transpose symmetry: n11/n00/obs are symmetric, 10 ↔ 01.
            counts["11"][b0:b1, a0:a1] = stack[0].T
            counts["10"][b0:b1, a0:a1] = stack[2].T
            counts["01"][b0:b1, a0:a1] = stack[1].T
            counts["00"][b0:b1, a0:a1] = stack[3].T
            counts["obs"][b0:b1, a0:a1] = stack[4].T
    return counts


@dataclass(frozen=True)
class TileFanout:
    """How to fan a counting pass out over tiles (the dense-accumulation
    seam used by ``SufficientStats``/``WindowedStats`` under
    ``partial_fit``)."""

    tile_size: int
    kernel: str | None = None
    plan: ExecutionPlan | None = None
    tracer: object = NULL_TRACER
    metrics: object = NULL_METRICS


# ----------------------------------------------------------------------
# spilled-tile store (dispatcher-side reads)
# ----------------------------------------------------------------------

class TileStore:
    """Memory-mapped reads of one generation's spilled tiles, LRU-capped.

    :meth:`counts` serves *any* block — lower-triangle requests load the
    mirrored upper-triangle tile and return transposed views (with the
    ``"10"``/``"01"`` planes swapped), so consumers never notice that
    only half the grid exists on disk.  At most ``max_resident`` tiles
    stay mapped at once; eviction is LRU and the ``tiles_resident``
    gauge tracks the live count.
    """

    def __init__(
        self,
        directory: Path | str,
        grid: TileGrid,
        *,
        max_resident: int | None = None,
        metrics=NULL_METRICS,
    ) -> None:
        self.directory = Path(directory)
        self.grid = grid
        self.max_resident = (
            DEFAULT_MAX_RESIDENT_TILES if max_resident is None else int(max_resident)
        )
        if self.max_resident < 1:
            raise DataError(
                f"max_resident must be >= 1, got {self.max_resident}"
            )
        self._metrics = metrics
        self._resident: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()

    def stack_shape(self, bi: int, bj: int) -> tuple[int, int, int]:
        return (len(STACK_KEYS),) + self.grid.block_shape(bi, bj)

    def is_valid(self, block: tuple[int, int]) -> bool:
        return validate_tile(self.directory, block, self.stack_shape(*block))

    def load(self, block: tuple[int, int]) -> np.ndarray:
        """The ``(5, h, w)`` stack of one *upper-triangle* block, mmapped."""
        bi, bj = block
        if bi > bj:
            raise DataError(
                f"tile ({bi}, {bj}) is below the diagonal; only upper-"
                "triangle tiles are stored (use counts() for mirrored reads)"
            )
        cached = self._resident.get(block)
        if cached is not None:
            self._resident.move_to_end(block)
            return cached
        array = read_tile(self.directory, block, self.stack_shape(bi, bj))
        self._resident[block] = array
        while len(self._resident) > self.max_resident:
            self._resident.popitem(last=False)
        self._metrics.set_gauge("tiles_resident", len(self._resident))
        return array

    def counts(self, bi: int, bj: int) -> dict[str, np.ndarray]:
        """The five count planes of block ``(bi, bj)``, either triangle."""
        if bi <= bj:
            stack = self.load((bi, bj))
            return {key: stack[index] for index, key in enumerate(STACK_KEYS)}
        stack = self.load((bj, bi))
        return {
            "11": stack[0].T,
            "10": stack[2].T,
            "01": stack[1].T,
            "00": stack[3].T,
            "obs": stack[4].T,
        }

    @property
    def resident_tiles(self) -> int:
        return len(self._resident)

    def drop_cache(self) -> None:
        self._resident.clear()
        self._metrics.set_gauge("tiles_resident", 0)

    def spilled_bytes(self) -> int:
        return _spilled_bytes(self.directory)


# ----------------------------------------------------------------------
# the tiled statistics object
# ----------------------------------------------------------------------

def _generation_name(generation: int) -> str:
    return f"gen-{generation:08d}"


class TiledSufficientStats:
    """Spilled, tile-backed sufficient statistics of a status history.

    Drop-in for :class:`~repro.core.stats.SufficientStats` wherever the
    pipeline consumes statistics — ``beta`` / ``n_nodes`` /
    ``has_missing`` / :meth:`mi_matrix` / :meth:`updated` /
    :meth:`checksum` — but the five ``(n, n)`` count matrices live as
    tiles on disk and the IMI matrix is assembled into a float64
    memory-map, so nothing O(n²·10) ever materialises.
    :meth:`checksum` streams the tile bytes in dense row-major order and
    therefore returns the *same* digest as the dense statistics, which
    is what keeps model fingerprints identical across the two paths.
    """

    def __init__(
        self,
        *,
        grid: TileGrid,
        store: TileStore,
        infected: np.ndarray,
        observed: np.ndarray,
        beta: int,
        has_missing: bool,
        root: Path,
        generation: int,
        source: str,
        retain=None,
    ) -> None:
        self.grid = grid
        self.store = store
        self.infected = infected
        self.observed = observed
        self.beta = beta
        self.has_missing = has_missing
        self.root = Path(root)
        self.generation = generation
        self.source = source
        # Keepalive for the implicit TemporaryDirectory when no
        # spill_dir was configured: the spill lives as long as any
        # statistics generation derived from it.
        self._retain = retain

    # ------------------------------------------------------------------
    @classmethod
    def from_statuses(
        cls,
        statuses: StatusMatrix,
        *,
        tile_size: int,
        spill_dir: str | Path | None = None,
        kernel: str | None = None,
        max_resident_tiles: int | None = None,
        plan: ExecutionPlan | None = None,
        tracer=NULL_TRACER,
        metrics=NULL_METRICS,
    ) -> "TiledSufficientStats":
        """Count a status matrix tile-by-tile into a spill directory.

        With a persistent ``spill_dir``, an interrupted run resumes:
        tiles already on disk with matching metadata and valid CRCs are
        skipped (``tiles_reused_total``), only the rest are recomputed.
        """
        if not isinstance(statuses, StatusMatrix):
            statuses = StatusMatrix(statuses)
        retain = None
        if spill_dir is None:
            retain = tempfile.TemporaryDirectory(prefix="repro-tiles-")
            root = Path(retain.name)
        else:
            root = Path(spill_dir)
        grid = TileGrid(statuses.n_nodes, tile_size)
        source = _statuses_digest(statuses)
        meta = {
            "version": _META_VERSION,
            "n_nodes": statuses.n_nodes,
            "tile_size": tile_size,
            "beta": statuses.beta,
            "has_missing": statuses.has_missing,
            "source": source,
        }
        directory = root / _generation_name(0)
        _prepare_directory(directory, meta)
        context = _build_context(
            statuses, grid, kernel, directory=str(directory)
        )
        _compute_missing_tiles(
            context, grid, directory, plan=plan, tracer=tracer, metrics=metrics
        )
        store = TileStore(
            directory, grid, max_resident=max_resident_tiles, metrics=metrics
        )
        return cls(
            grid=grid,
            store=store,
            infected=statuses.infection_counts(),
            observed=statuses.observed_counts(),
            beta=statuses.beta,
            has_missing=statuses.has_missing,
            root=root,
            generation=0,
            source=source,
            retain=retain,
        )

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.grid.n_nodes

    def updated(
        self,
        batch: StatusMatrix,
        *,
        kernel: str | None = None,
        plan: ExecutionPlan | None = None,
        tracer=NULL_TRACER,
        metrics=NULL_METRICS,
    ) -> "TiledSufficientStats":
        """Statistics with ``batch`` absorbed — a new copy-on-write tile
        generation (``old tile + batch tile`` per block, fanned out as
        retryable chunks), leaving this generation untouched so a failed
        ``partial_fit`` cannot corrupt the model it started from.
        Generations older than the immediate parent are pruned."""
        if not isinstance(batch, StatusMatrix):
            batch = StatusMatrix(batch)
        if batch.n_nodes != self.n_nodes:
            raise DataError(
                f"cannot update {self.n_nodes}-node tiled statistics with "
                f"a {batch.n_nodes}-node batch"
            )
        if batch.beta == 0:
            return self
        generation = self.generation + 1
        directory = self.root / _generation_name(generation)
        chain = hashlib.sha256(
            f"{self.source}:{_statuses_digest(batch)}".encode()
        ).hexdigest()
        meta = {
            "version": _META_VERSION,
            "n_nodes": self.n_nodes,
            "tile_size": self.grid.tile_size,
            "beta": self.beta + batch.beta,
            "has_missing": self.has_missing or batch.has_missing,
            "source": chain,
        }
        _prepare_directory(directory, meta)
        context = _build_context(
            batch,
            self.grid,
            kernel,
            directory=str(directory),
            base_directory=str(self.store.directory),
        )
        _compute_missing_tiles(
            context, self.grid, directory, plan=plan, tracer=tracer, metrics=metrics
        )
        store = TileStore(
            directory,
            self.grid,
            max_resident=self.store.max_resident,
            metrics=metrics,
        )
        self._prune_generations(keep=(self.generation, generation))
        return TiledSufficientStats(
            grid=self.grid,
            store=store,
            infected=self.infected + batch.infection_counts(),
            observed=self.observed + batch.observed_counts(),
            beta=self.beta + batch.beta,
            has_missing=self.has_missing or batch.has_missing,
            root=self.root,
            generation=generation,
            source=chain,
            retain=self._retain,
        )

    def _prune_generations(self, keep: tuple[int, ...]) -> None:
        """Drop generation directories other than ``keep`` (the parent
        and the new child): disk stays O(2 · tiles) however long an
        incremental service runs.  Open memory-maps into pruned
        generations stay readable (POSIX unlink semantics)."""
        survivors = {_generation_name(index) for index in keep}
        for entry in sorted(self.root.glob("gen-*")):
            if entry.name not in survivors and entry.is_dir():
                shutil.rmtree(entry, ignore_errors=True)

    # ------------------------------------------------------------------
    # derived estimates (assembled tile by tile)
    # ------------------------------------------------------------------
    def mi_matrix(self, kind: str = "infection") -> np.ndarray:
        """The MI matrix assembled into a spill-directory memory-map.

        Per tile the exact elementwise float pipeline of
        :func:`repro.core.imi.mi_terms_from_joint_counts` /
        :func:`repro.core.imi.mi_terms_from_pairwise_counts` runs on the
        tile's counts, so every entry is bit-identical to the dense
        matrix; only one tile's terms are resident at a time.
        """
        if kind not in ("infection", "traditional"):
            raise DataError(f"unknown MI kind: {kind!r}")
        if self.beta == 0:
            raise DataError("cannot estimate MI from zero diffusion processes")
        n = self.n_nodes
        path = self.store.directory / f"imi-{kind}.float64.npy"
        out = np.lib.format.open_memmap(
            path, mode="w+", dtype=np.float64, shape=(n, n)
        )
        if not self.has_missing:
            p1 = self.infected / self.beta
            p0 = 1.0 - p1
        for bi in range(self.grid.n_blocks):
            a0, a1 = self.grid.span(bi)
            for bj in range(self.grid.n_blocks):
                b0, b1 = self.grid.span(bj)
                counts = self.store.counts(bi, bj)
                if self.has_missing:
                    terms = _tile_terms_masked(counts)
                else:
                    terms = _tile_terms_clean(
                        counts,
                        (p1[a0:a1], p0[a0:a1]),
                        (p1[b0:b1], p0[b0:b1]),
                        self.beta,
                    )
                out[a0:a1, b0:b1] = _combine_terms(
                    terms, kind, diagonal=(bi == bj)
                )
        out.flush()
        return out

    # ------------------------------------------------------------------
    # dense interop
    # ------------------------------------------------------------------
    def count_matrix(self, key: str) -> np.ndarray:
        """One dense ``(n, n)`` count matrix assembled from the tiles
        (transient O(n²) — snapshot serialisation and drift detection
        densify one plane at a time)."""
        if key not in STACK_KEYS:
            raise DataError(f"unknown count key: {key!r}")
        n = self.n_nodes
        dense = np.empty((n, n), dtype=np.int64)
        for bi in range(self.grid.n_blocks):
            a0, a1 = self.grid.span(bi)
            for bj in range(self.grid.n_blocks):
                b0, b1 = self.grid.span(bj)
                dense[a0:a1, b0:b1] = self.store.counts(bi, bj)[key]
        return dense

    def to_dense(self) -> "SufficientStats":
        """The equivalent dense :class:`SufficientStats` (tests, drift)."""
        from repro.core.stats import SufficientStats

        return SufficientStats(
            counts={key: self.count_matrix(key) for key in STACK_KEYS},
            infected=self.infected,
            observed=self.observed,
            beta=self.beta,
            has_missing=self.has_missing,
        )

    def subtracted(self, other) -> "SufficientStats":
        """Dense subtraction (drift's recent-vs-reference windows are
        dense already, so the result is too)."""
        return self.to_dense().subtracted(other)

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def checksum(self) -> str:
        """SHA-256 over every count, **equal** to the dense
        :meth:`SufficientStats.checksum` hex digest.

        The dense digest hashes each count matrix's contiguous int64
        bytes row-major; assembling each row band from its tiles in
        column order reproduces that byte stream exactly, one band
        resident at a time.
        """
        digest = hashlib.sha256()
        digest.update(f"beta={self.beta};missing={self.has_missing};".encode())
        n = self.n_nodes
        for index, key in enumerate(STACK_KEYS):
            digest.update(key.encode())
            digest.update(str((n, n)).encode())
            for bi in range(self.grid.n_blocks):
                band = np.concatenate(
                    [
                        np.ascontiguousarray(
                            self.store.counts(bi, bj)[key], dtype=np.int64
                        )
                        for bj in range(self.grid.n_blocks)
                    ],
                    axis=1,
                )
                digest.update(band.tobytes())
        for name, array in (("infected", self.infected), ("observed", self.observed)):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(array, dtype=np.int64).tobytes())
        return digest.hexdigest()

    def equals(self, other) -> bool:
        """Exact equality of every count with dense or tiled statistics."""
        if not hasattr(other, "checksum"):
            return False
        return self.checksum() == other.checksum()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"TiledSufficientStats(n_nodes={self.n_nodes}, beta={self.beta}, "
            f"tile_size={self.grid.tile_size}, generation={self.generation}, "
            f"spill={str(self.store.directory)!r})"
        )


def _compute_missing_tiles(
    context: TileContext,
    grid: TileGrid,
    directory: Path,
    *,
    plan: ExecutionPlan | None,
    tracer=NULL_TRACER,
    metrics=NULL_METRICS,
) -> None:
    """Fan out every not-yet-valid tile, then verify the full grid.

    The validity scan *is* the checkpoint-resume step: tiles spilled by
    an earlier (possibly crashed) run with matching metadata and CRC are
    kept, everything else is recomputed.  A tile still invalid after the
    fan-out (e.g. a worker ran out of disk) fails loudly here rather
    than downstream.
    """
    blocks = grid.blocks()
    expected = {
        block: (len(STACK_KEYS),) + grid.block_shape(*block) for block in blocks
    }
    todo = [
        block for block in blocks if not validate_tile(directory, block, expected[block])
    ]
    reused = len(blocks) - len(todo)
    with tracer.span(
        "tiles.compute",
        mode="spill",
        n_tiles=len(blocks),
        computed=len(todo),
        reused=reused,
    ):
        _fan_out(context, todo, plan=plan, tracer=tracer)
    invalid = [
        block for block in blocks if not validate_tile(directory, block, expected[block])
    ]
    if invalid:
        raise DataError(
            f"{len(invalid)} tile(s) failed to spill under {directory} "
            f"(first: {invalid[0]})"
        )
    if reused:
        metrics.inc("tiles_reused_total", reused)
    metrics.inc("tiles_computed_total", len(todo))
    metrics.set_gauge("tiles_spilled_bytes", _spilled_bytes(directory))


# ----------------------------------------------------------------------
# per-tile MI pipeline (mirrors repro.core.imi exactly, elementwise)
# ----------------------------------------------------------------------

def _tile_terms_clean(
    counts: Mapping[str, np.ndarray],
    marginal_row: tuple[np.ndarray, np.ndarray],
    marginal_col: tuple[np.ndarray, np.ndarray],
    beta: int,
) -> dict[str, np.ndarray]:
    """``mi_terms_from_joint_counts`` restricted to one tile — the same
    elementwise operations on the same values, so bit-identical."""
    row = {"1": marginal_row[0], "0": marginal_row[1]}
    col = {"1": marginal_col[0], "0": marginal_col[1]}
    terms: dict[str, np.ndarray] = {}
    for key in ("11", "10", "01", "00"):
        a, b = key[0], key[1]
        p_joint = counts[key] / float(beta)
        denominator = np.outer(row[a], col[b])
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(denominator > 0, p_joint / denominator, 1.0)
            logs = np.where((p_joint > 0) & (ratio > 0), np.log2(ratio), 0.0)
        terms[key] = p_joint * logs
    return terms


def _tile_terms_masked(counts: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
    """``mi_terms_from_pairwise_counts`` restricted to one tile (purely
    elementwise on the five count planes, so bit-identical)."""
    beta_ij = counts["obs"].astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        p1_row = np.where(beta_ij > 0, (counts["11"] + counts["10"]) / beta_ij, 0.0)
        p1_col = np.where(beta_ij > 0, (counts["11"] + counts["01"]) / beta_ij, 0.0)
    marginal_row = {"1": p1_row, "0": np.where(beta_ij > 0, 1.0 - p1_row, 0.0)}
    marginal_col = {"1": p1_col, "0": np.where(beta_ij > 0, 1.0 - p1_col, 0.0)}
    terms: dict[str, np.ndarray] = {}
    for key in ("11", "10", "01", "00"):
        a, b = key[0], key[1]
        with np.errstate(divide="ignore", invalid="ignore"):
            p_joint = np.where(beta_ij > 0, counts[key] / beta_ij, 0.0)
        denominator = marginal_row[a] * marginal_col[b]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(denominator > 0, p_joint / denominator, 1.0)
            logs = np.where((p_joint > 0) & (ratio > 0), np.log2(ratio), 0.0)
        terms[key] = p_joint * logs
    return terms


def _combine_terms(
    terms: Mapping[str, np.ndarray], kind: str, *, diagonal: bool
) -> np.ndarray:
    """``imi_from_terms`` / ``mi_from_terms`` for one tile; ``diagonal``
    marks on-diagonal blocks whose (i, i) entries are zeroed, in the
    same operation order as the dense combiners."""
    if kind == "infection":
        tile = (
            terms["11"]
            + terms["00"]
            - np.abs(terms["10"])
            - np.abs(terms["01"])
        )
        if diagonal:
            np.fill_diagonal(tile, 0.0)
        return tile
    tile = terms["11"] + terms["00"] + terms["10"] + terms["01"]
    if diagonal:
        np.fill_diagonal(tile, 0.0)
    return np.maximum(tile, 0.0)
