"""The TENDS estimator (paper Algorithm 1, end to end).

Pipeline::

    statuses ──> IMI matrix ──> fixed-zero 2-means τ ──> candidate sets P_i
                                                          │
    inferred graph <── directed edges F_i → v_i <── parent search per node

Usage
-----
>>> from repro.graphs import erdos_renyi_digraph
>>> from repro.simulation import DiffusionSimulator
>>> from repro.core import Tends
>>> truth = erdos_renyi_digraph(30, 0.08, seed=3)
>>> observations = DiffusionSimulator(truth, seed=3).run(beta=120)
>>> result = Tends().fit(observations.statuses)
>>> result.graph.n_nodes
30
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.core.config import TendsConfig
from repro.core.executor import ExecutionPlan, ParallelExecutor, WorkerStats
from repro.core.imi import infection_mi_matrix, traditional_mi_matrix
from repro.core.kmeans import TwoMeansResult, fixed_zero_two_means
from repro.core.search import ParentSearch, SearchDiagnostics, search_chunk
from repro.exceptions import DataError
from repro.graphs.digraph import DiffusionGraph
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.telemetry import Telemetry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer, ambient_tracer
from repro.simulation.statuses import StatusMatrix, validate_observations
from repro.utils.timing import Stopwatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (robustness → imi)
    from repro.robustness.bootstrap import ImiBootstrap

__all__ = ["Tends", "TendsResult"]


@dataclass(frozen=True)
class TendsResult:
    """Everything TENDS produced in one fit.

    Attributes
    ----------
    graph:
        The inferred diffusion network (directed edges parent → child).
    parent_sets:
        ``parent_sets[i]`` is the inferred ``F_i``.
    mi_matrix:
        The pairwise (infection or traditional) MI matrix used for pruning.
    threshold:
        The pruning threshold ``τ`` actually applied (after scaling or
        override).
    clustering:
        Raw fixed-zero 2-means outcome (``None`` when ``τ`` was overridden).
    diagnostics:
        Per-node :class:`~repro.core.search.SearchDiagnostics`.
    stage_seconds:
        Wall-clock per pipeline stage: ``imi``, ``threshold``, ``search``,
        plus one ``search/<worker>`` entry per stage-3 worker (e.g.
        ``search/serial``, ``search/process-0``) holding the time that
        worker spent inside the parent searches.  The flat
        ``search/<worker>`` keys are kept for backwards compatibility;
        prefer :attr:`stage_times` (stage names only) and
        :attr:`worker_seconds` (per-worker view) — stage names never
        contain ``/``, so the two namespaces cannot collide.
    worker_stats:
        Per-worker :class:`~repro.core.executor.WorkerStats` for stage 3
        (chunk and node counts per worker, for load-balance diagnosis).
    edge_confidence:
        Per-edge bootstrap confidence — ``edge_confidence[(u, v)]`` is
        the fraction of IMI bootstrap resamples in which the pair's IMI
        exceeded the pruning threshold ``τ`` (1.0 = the relation survived
        every resample).  ``None`` unless the fit ran a bootstrap
        (``threshold="stable"`` or ``bootstrap_samples=`` set).
    imi_bootstrap:
        The full :class:`~repro.robustness.bootstrap.ImiBootstrap`
        distribution behind :attr:`edge_confidence` (``None`` when no
        bootstrap ran) — per-pair CIs via ``.ci()``.
    telemetry:
        :class:`~repro.obs.telemetry.Telemetry` (spans + metrics
        snapshot) recorded during the fit; ``None`` unless the fit ran
        with ``trace=True``.  Export with :mod:`repro.obs.export`.
    """

    graph: DiffusionGraph
    parent_sets: tuple[tuple[int, ...], ...]
    mi_matrix: np.ndarray
    threshold: float
    clustering: TwoMeansResult | None
    diagnostics: tuple[SearchDiagnostics, ...]
    stage_seconds: Mapping[str, float]
    worker_stats: tuple[WorkerStats, ...] = ()
    edge_confidence: Mapping[tuple[int, int], float] | None = None
    imi_bootstrap: "ImiBootstrap | None" = None
    telemetry: Telemetry | None = None

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges

    @property
    def stage_times(self) -> dict[str, float]:
        """Per-stage wall-clock only — :attr:`stage_seconds` without the
        flat ``search/<worker>`` back-compat entries (stage names never
        contain ``/``)."""
        return {
            stage: seconds
            for stage, seconds in self.stage_seconds.items()
            if "/" not in stage
        }

    @property
    def worker_seconds(self) -> dict[str, float]:
        """Stage-3 wall-clock per worker, keyed by worker label — the
        structured view of the ``search/<worker>`` entries, derived from
        :attr:`worker_stats`."""
        return {stats.worker: stats.seconds for stats in self.worker_stats}

    def candidate_counts(self) -> np.ndarray:
        """``|P_i|`` per node — how aggressive the pruning was."""
        return np.array([d.n_candidates for d in self.diagnostics], dtype=np.int64)

    def total_evaluations(self) -> int:
        """Total score evaluations across all nodes (cost proxy)."""
        return int(sum(d.n_evaluations for d in self.diagnostics))


class Tends:
    """Statistical estimator of diffusion network topologies.

    The only observation it consumes is the final-status matrix; no
    timestamps, no diffusion sources, no prior knowledge of edge counts.

    Parameters
    ----------
    config:
        Full :class:`~repro.core.config.TendsConfig`; keyword overrides
        below are merged into it for convenience.
    **overrides:
        Any :class:`TendsConfig` field, e.g. ``Tends(mi_kind="traditional")``.
    """

    def __init__(self, config: TendsConfig | None = None, **overrides) -> None:
        base = config or TendsConfig()
        self.config = base.with_overrides(**overrides) if overrides else base

    # ------------------------------------------------------------------
    def fit(self, statuses: StatusMatrix) -> TendsResult:
        """Run the full Algorithm 1 pipeline on ``statuses``."""
        if not isinstance(statuses, StatusMatrix):
            statuses = StatusMatrix(statuses)
        if statuses.beta < 2:
            raise DataError(
                f"TENDS needs at least 2 diffusion processes, got {statuses.beta}"
            )
        if statuses.has_missing:
            # Missing-data policy (config.missing).  "pairwise" leaves the
            # mask in place — imi/scoring then count over pairwise- and
            # family-complete processes with per-pair effective β.
            if self.config.missing == "refuse":
                missing_count = int((~statuses.mask).sum())
                raise DataError(
                    f"observations contain {missing_count} unobserved entries "
                    "and missing='refuse' is set"
                )
            if self.config.missing == "zero-fill":
                statuses = statuses.filled(0)
        if self.config.audit != "ignore":
            # Degenerate observations (all-zero cascades, constant nodes)
            # are handled gracefully downstream — the Eq. 16-17 / 24-25
            # limits contribute their documented values — but they carry
            # no signal, so surface them instead of silently inferring an
            # empty neighbourhood.
            validate_observations(
                statuses,
                on_degenerate="strict" if self.config.audit == "strict" else "warn",
            )
        n = statuses.n_nodes

        # Observability: a traced fit records nested spans and algorithm
        # metrics; untraced fits run through the shared no-op singletons
        # (one attribute lookup per site).  Either way the inference is
        # bit-identical — instrumentation only observes.
        trace = self.config.trace
        tracer: Tracer | NullTracer = Tracer() if trace else NULL_TRACER
        metrics: MetricsRegistry | NullMetrics = (
            MetricsRegistry() if trace else NULL_METRICS
        )
        if statuses.has_missing:
            metrics.set_gauge("tends_mask_density", float(statuses.mask.mean()))
        else:
            metrics.set_gauge("tends_mask_density", 1.0)
        with ambient_tracer(tracer):
            with tracer.span("tends.fit", n_nodes=n, beta=statuses.beta):
                result = self._run_pipeline(statuses, n, tracer, metrics)
        if trace:
            result = replace(
                result,
                telemetry=Telemetry(
                    spans=tracer.finished(),
                    metrics=metrics.snapshot(),
                    epoch_offset=tracer.epoch_offset,
                ),
            )
        return result

    def _run_pipeline(
        self,
        statuses: StatusMatrix,
        n: int,
        tracer: "Tracer | NullTracer",
        metrics: "MetricsRegistry | NullMetrics",
    ) -> TendsResult:
        """Stages 1-3 of Algorithm 1 (validation already done by
        :meth:`fit`, which also owns the ambient tracer install)."""
        stage_seconds: dict[str, float] = {}

        # Stage 1: pairwise MI matrix (Algorithm 1 lines 2-4).
        with tracer.span("tends.imi", kind=self.config.mi_kind):
            with Stopwatch() as watch:
                if self.config.mi_kind == "infection":
                    mi = infection_mi_matrix(statuses)
                else:
                    mi = traditional_mi_matrix(statuses)
            stage_seconds["imi"] = watch.elapsed
        metrics.inc("tends_imi_pairs_total", n * (n - 1) // 2)

        # Stage 2: threshold via fixed-zero 2-means (line 5).
        stable_mode = self.config.threshold == "stable"
        with tracer.span("tends.threshold") as threshold_span:
            with Stopwatch() as watch:
                clustering: TwoMeansResult | None
                if self.config.threshold is not None and not stable_mode:
                    threshold = float(self.config.threshold)
                    clustering = None
                else:
                    off_diagonal = mi[~np.eye(n, dtype=bool)]
                    non_negative = off_diagonal[off_diagonal >= 0.0]
                    clustering = fixed_zero_two_means(non_negative)
                    threshold = clustering.threshold * self.config.threshold_scale
            stage_seconds["threshold"] = watch.elapsed
            threshold_span.set(tau=threshold)
        metrics.set_gauge("tends_threshold_tau", threshold)

        # Stage 2b (optional): bootstrap the IMI distribution for per-edge
        # confidence and, in stable mode, CI-based candidate screening.
        bootstrap = None
        stable_pairs: np.ndarray | None = None
        n_boot = self.config.bootstrap_samples
        if stable_mode and n_boot is None:
            n_boot = 100
        if n_boot:
            from repro.robustness.bootstrap import bootstrap_imi

            with tracer.span("tends.bootstrap", samples=n_boot):
                with Stopwatch() as watch:
                    bootstrap = bootstrap_imi(
                        statuses,
                        n_boot,
                        seed=self.config.bootstrap_seed,
                        ci_level=self.config.ci_level,
                        mi_kind=self.config.mi_kind,
                    )
                    if stable_mode:
                        stable_pairs = bootstrap.stable_above(threshold)
                stage_seconds["bootstrap"] = watch.elapsed

        # Stage 3: candidate pruning + per-node parent search (lines 6-21).
        # The local score is decomposable, so the n searches are
        # independent; the executor backend fans them out and the merge
        # below reassembles results in node order, keeping the output
        # bit-identical to the serial loop for every backend/worker count.
        with tracer.span(
            "tends.search", strategy=self.config.search_strategy
        ) as search_span:
            with Stopwatch() as watch:
                search = ParentSearch(statuses, self.config)
                items = [
                    (node, self._candidates_for(mi, node, threshold, stable_pairs))
                    for node in range(n)
                ]
                kept_pairs = sum(len(candidates) for _, candidates in items)
                metrics.inc(
                    "tends_candidate_pairs_pruned_total",
                    n * (n - 1) - kept_pairs,
                )
                metrics.inc("tends_candidate_pairs_kept_total", kept_pairs)
                plan = ExecutionPlan.resolve(
                    executor=self.config.executor,
                    n_jobs=self.config.n_jobs,
                    chunk_size=self.config.chunk_size,
                    max_attempts=self.config.max_attempts,
                    chunk_timeout=self.config.chunk_timeout,
                    fallback=self.config.executor_fallback,
                )
                executor = ParallelExecutor(plan, tracer=tracer)
                outcomes, worker_stats = executor.map(search_chunk, search, items)
                parent_sets: list[tuple[int, ...]] = []
                diagnostics: list[SearchDiagnostics] = []
                graph = DiffusionGraph(n)
                for node, (parents, diag) in enumerate(outcomes):
                    parent_sets.append(tuple(parents))
                    diagnostics.append(diag)
                    for parent in parents:
                        graph.add_edge(parent, node)
            stage_seconds["search"] = watch.elapsed
            search_span.set(executor=plan.strategy, n_jobs=plan.n_jobs)
        for stats in worker_stats:
            stage_seconds[f"search/{stats.worker}"] = stats.seconds
        for diag in diagnostics:
            metrics.inc("tends_score_evaluations_total", diag.n_evaluations)
            metrics.inc("tends_bound_terminations_total", diag.bound_hits)
            metrics.observe("tends_greedy_iterations", diag.iterations)
        report = executor.last_report
        if report is not None:
            metrics.inc("executor_retries_total", report.retries)
            metrics.inc("executor_timeouts_total", report.timeouts)
            metrics.inc("executor_pool_rebuilds_total", report.pool_rebuilds)
            metrics.inc("executor_fallbacks_total", report.fallbacks)

        edge_confidence: dict[tuple[int, int], float] | None = None
        if bootstrap is not None:
            exceed = bootstrap.exceed_fraction(threshold)
            edge_confidence = {
                (parent, child): float(exceed[parent, child])
                for child, parents in enumerate(parent_sets)
                for parent in parents
            }

        return TendsResult(
            graph=graph.freeze(),
            parent_sets=tuple(parent_sets),
            mi_matrix=mi,
            threshold=threshold,
            clustering=clustering,
            diagnostics=tuple(diagnostics),
            stage_seconds=stage_seconds,
            worker_stats=tuple(worker_stats),
            edge_confidence=edge_confidence,
            imi_bootstrap=bootstrap,
        )

    # ------------------------------------------------------------------
    def _candidates_for(
        self,
        mi: np.ndarray,
        node: int,
        threshold: float,
        stable_pairs: np.ndarray | None = None,
    ) -> list[int]:
        """``P_i``: nodes whose MI with ``node`` strictly exceeds ``τ``,
        optionally capped to the strongest ``max_candidates``.  In stable
        mode, candidates must additionally have their bootstrap-CI lower
        bound above ``τ`` (``stable_pairs`` row)."""
        row = mi[node]
        above = row > threshold
        if stable_pairs is not None:
            above &= stable_pairs[node]
        candidates = np.nonzero(above)[0]
        candidates = candidates[candidates != node]
        cap = self.config.max_candidates
        if cap is not None and candidates.size > cap:
            # Stable sort on the negated MI: equal-MI candidates keep their
            # ascending-index order, so the cap is deterministic across
            # numpy versions (plain argsort[::-1] reverses tie order and
            # the default introsort is not even stable to begin with).
            order = np.argsort(-row[candidates], kind="stable")
            candidates = candidates[order[:cap]]
        return sorted(int(c) for c in candidates)
