"""The TENDS estimator (paper Algorithm 1, end to end).

Pipeline::

    statuses ──> IMI matrix ──> fixed-zero 2-means τ ──> candidate sets P_i
                                                          │
    inferred graph <── directed edges F_i → v_i <── parent search per node

Usage
-----
>>> from repro.graphs import erdos_renyi_digraph
>>> from repro.simulation import DiffusionSimulator
>>> from repro.core import Tends
>>> truth = erdos_renyi_digraph(30, 0.08, seed=3)
>>> observations = DiffusionSimulator(truth, seed=3).run(beta=120)
>>> result = Tends().fit(observations.statuses)
>>> result.graph.n_nodes
30
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.core.config import TendsConfig
from repro.core.executor import ExecutionPlan, ParallelExecutor, WorkerStats
from repro.core.kernels import resolve_kernel
from repro.core.kmeans import TwoMeansResult, fixed_zero_two_means
from repro.core.search import (
    ParentSearch,
    SearchDiagnostics,
    prune_candidates,
    search_chunk,
)
from repro.core.stats import COUNT_KEYS, SufficientStats
from repro.core.tiles import TileFanout, TiledSufficientStats
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    DataError,
    InferenceError,
)
from repro.graphs.digraph import DiffusionGraph
from repro.obs.memory import NULL_MEMORY, MemoryTracker, NullMemoryTracker
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.telemetry import Telemetry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer, ambient_tracer
from repro.simulation.statuses import StatusMatrix, validate_observations
from repro.utils.timing import Stopwatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (robustness → imi)
    from repro.core.drift import DriftConfig, DriftReport
    from repro.robustness.bootstrap import ImiBootstrap

__all__ = ["Tends", "TendsResult", "TendsModel", "UpdateInfo", "merge_results"]

#: Row-band budget for the streaming off-diagonal scan in stage 2: bands
#: of ~8 MB of float64 MI values, so the threshold stage never holds a
#: second full O(n²) copy alongside the matrix it scans.
_THRESHOLD_BAND_BYTES = 8 * 1024 * 1024


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of the directory entry, so the ``os.replace``
    rename itself is durable (not just the file contents)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without directory open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on directories
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class TendsResult:
    """Everything TENDS produced in one fit.

    Attributes
    ----------
    graph:
        The inferred diffusion network (directed edges parent → child).
    parent_sets:
        ``parent_sets[i]`` is the inferred ``F_i``.
    mi_matrix:
        The pairwise (infection or traditional) MI matrix used for pruning.
    threshold:
        The pruning threshold ``τ`` actually applied (after scaling or
        override).
    clustering:
        Raw fixed-zero 2-means outcome (``None`` when ``τ`` was overridden).
    diagnostics:
        Per-node :class:`~repro.core.search.SearchDiagnostics`.
    stage_seconds:
        Wall-clock per pipeline stage: ``imi``, ``threshold``, ``search``,
        plus one ``search/<worker>`` entry per stage-3 worker (e.g.
        ``search/serial``, ``search/process-0``) holding the time that
        worker spent inside the parent searches.  The flat
        ``search/<worker>`` keys are kept for backwards compatibility;
        prefer :attr:`stage_times` (stage names only) and
        :attr:`worker_seconds` (per-worker view) — stage names never
        contain ``/``, so the two namespaces cannot collide.
    worker_stats:
        Per-worker :class:`~repro.core.executor.WorkerStats` for stage 3
        (chunk and node counts per worker, for load-balance diagnosis).
    edge_confidence:
        Per-edge bootstrap confidence — ``edge_confidence[(u, v)]`` is
        the fraction of IMI bootstrap resamples in which the pair's IMI
        exceeded the pruning threshold ``τ`` (1.0 = the relation survived
        every resample).  ``None`` unless the fit ran a bootstrap
        (``threshold="stable"`` or ``bootstrap_samples=`` set).
    imi_bootstrap:
        The full :class:`~repro.robustness.bootstrap.ImiBootstrap`
        distribution behind :attr:`edge_confidence` (``None`` when no
        bootstrap ran) — per-pair CIs via ``.ci()``.
    telemetry:
        :class:`~repro.obs.telemetry.Telemetry` (spans + metrics
        snapshot) recorded during the fit; ``None`` unless the fit ran
        with ``trace=True``.  Export with :mod:`repro.obs.export`.
    update:
        :class:`UpdateInfo` describing the dirty/clean node split of the
        incremental update that produced this result; ``None`` for
        results of a full :meth:`Tends.fit`.
    kernel:
        The counting-kernel backend the fit resolved and ran with
        (``"numpy"`` or ``"packed"``, see :mod:`repro.core.kernels`);
        recorded in run manifests so perf comparisons are
        apples-to-apples.  Results are bit-identical across backends.
    drift:
        :class:`~repro.core.drift.DriftReport` from the reference-vs-recent
        check a :meth:`Tends.partial_fit` ran with ``drift="detect"`` or
        ``"adapt"``; ``None`` under the default ``drift="ignore"`` and for
        full fits.
    nodes:
        The node shard this result searched (``Tends.fit(nodes=...)``) —
        parent sets outside the shard are empty placeholders, and
        :func:`merge_results` reassembles the full answer from a disjoint
        cover of shards.  ``None`` for full fits and merged results.
    """

    graph: DiffusionGraph
    parent_sets: tuple[tuple[int, ...], ...]
    mi_matrix: np.ndarray
    threshold: float
    clustering: TwoMeansResult | None
    diagnostics: tuple[SearchDiagnostics, ...]
    stage_seconds: Mapping[str, float]
    worker_stats: tuple[WorkerStats, ...] = ()
    edge_confidence: Mapping[tuple[int, int], float] | None = None
    imi_bootstrap: "ImiBootstrap | None" = None
    telemetry: Telemetry | None = None
    update: "UpdateInfo | None" = None
    kernel: str | None = None
    drift: "DriftReport | None" = None
    nodes: tuple[int, ...] | None = None

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges

    @property
    def stage_times(self) -> dict[str, float]:
        """Per-stage wall-clock only — :attr:`stage_seconds` without the
        flat ``search/<worker>`` back-compat entries (stage names never
        contain ``/``)."""
        return {
            stage: seconds
            for stage, seconds in self.stage_seconds.items()
            if "/" not in stage
        }

    @property
    def worker_seconds(self) -> dict[str, float]:
        """Stage-3 wall-clock per worker, keyed by worker label — the
        structured view of the ``search/<worker>`` entries, derived from
        :attr:`worker_stats`."""
        return {stats.worker: stats.seconds for stats in self.worker_stats}

    def candidate_counts(self) -> np.ndarray:
        """``|P_i|`` per node — how aggressive the pruning was."""
        return np.array([d.n_candidates for d in self.diagnostics], dtype=np.int64)

    def total_evaluations(self) -> int:
        """Total score evaluations across all nodes (cost proxy)."""
        return int(sum(d.n_evaluations for d in self.diagnostics))

    def fingerprint(self) -> str:
        """SHA-256 over the deterministic outputs of the fit: node count,
        searched shard, MI matrix bytes, threshold, and parent sets.

        Timings, worker attribution, and telemetry are excluded, so two
        runs of the same inference — serial or fanned out, dense or
        tiled, one-shot or shard+:func:`merge_results` — produce equal
        fingerprints exactly when they produced the same answer.
        """
        digest = hashlib.sha256()
        digest.update(str(self.graph.n_nodes).encode())
        digest.update(repr(self.nodes).encode())
        digest.update(repr(self.threshold).encode())
        digest.update(
            np.ascontiguousarray(self.mi_matrix, dtype=np.float64).tobytes()
        )
        digest.update(
            json.dumps([list(p) for p in self.parent_sets]).encode()
        )
        return digest.hexdigest()


@dataclass(frozen=True)
class UpdateInfo:
    """What one :meth:`Tends.partial_fit` actually did.

    Attributes
    ----------
    batch_beta:
        Number of processes in the arriving batch.
    dirty_nodes:
        Nodes whose parent search was re-run on the extended history —
        their candidate set changed, or the batch carried at least one
        observed status for them (either can change family counts).
    clean_nodes:
        Nodes warm-started from the previous fit: their candidate set is
        unchanged and the batch never observed them, so every count their
        score depends on is provably unchanged and the search is skipped.
    threshold_changed:
        Whether the recomputed pruning threshold ``τ`` differs from the
        previous fit's (bit-exact comparison).
    """

    batch_beta: int
    dirty_nodes: tuple[int, ...]
    clean_nodes: tuple[int, ...]
    threshold_changed: bool

    @property
    def n_dirty(self) -> int:
        return len(self.dirty_nodes)

    @property
    def n_clean(self) -> int:
        return len(self.clean_nodes)

    @property
    def n_skipped(self) -> int:
        """Parent searches skipped by the warm start (== :attr:`n_clean`)."""
        return len(self.clean_nodes)


def merge_results(results: Sequence[TendsResult]) -> TendsResult:
    """Reassemble one full :class:`TendsResult` from shard fits.

    ``results`` must be shard results (``Tends.fit(nodes=...)``) whose
    shards disjointly cover every node, produced from the same
    observations under the same configuration — validated here by
    requiring bit-equal MI matrices and thresholds across the shards.
    Stages 1–2 are deterministic functions of the data, so each shard
    recomputed them identically; stage 3 is per-node, so concatenating
    the shard answers in node order is *exactly* the one-shot fit:
    the merged result's :meth:`TendsResult.fingerprint` equals the full
    fit's (held by ``tests/property/test_prop_tiles.py``).

    Per-stage timings are summed across shards (total work, not wall
    clock) and worker stats concatenated.
    """
    if not results:
        raise InferenceError("merge_results needs at least one shard result")
    reference = results[0]
    n = reference.graph.n_nodes
    owner: dict[int, TendsResult] = {}
    for result in results:
        if result.nodes is None:
            raise InferenceError(
                "merge_results takes shard results (fit(nodes=...)); "
                "got a full-fit result"
            )
        if result.graph.n_nodes != n:
            raise InferenceError(
                f"cannot merge shards over {result.graph.n_nodes} and "
                f"{n} nodes"
            )
        if repr(result.threshold) != repr(reference.threshold):
            raise InferenceError(
                "shard results disagree on the threshold "
                f"({result.threshold!r} vs {reference.threshold!r}); "
                "they were not fitted on the same observations/config"
            )
        if not np.array_equal(
            np.asarray(result.mi_matrix), np.asarray(reference.mi_matrix)
        ):
            raise InferenceError(
                "shard results disagree on the MI matrix; they were not "
                "fitted on the same observations/config"
            )
        for node in result.nodes:
            if node in owner:
                raise InferenceError(
                    f"node {node} appears in more than one shard"
                )
            owner[node] = result
    missing = [node for node in range(n) if node not in owner]
    if missing:
        raise InferenceError(
            f"shards do not cover every node (missing {missing[:5]}"
            f"{'...' if len(missing) > 5 else ''})"
        )
    parent_sets = tuple(owner[node].parent_sets[node] for node in range(n))
    diagnostics = tuple(owner[node].diagnostics[node] for node in range(n))
    graph = DiffusionGraph(n)
    for node, parents in enumerate(parent_sets):
        for parent in parents:
            graph.add_edge(parent, node)
    stage_seconds: dict[str, float] = {}
    for result in results:
        for stage, seconds in result.stage_seconds.items():
            stage_seconds[stage] = stage_seconds.get(stage, 0.0) + seconds
    return TendsResult(
        graph=graph.freeze(),
        parent_sets=parent_sets,
        mi_matrix=reference.mi_matrix,
        threshold=reference.threshold,
        clustering=reference.clustering,
        diagnostics=diagnostics,
        stage_seconds=stage_seconds,
        worker_stats=tuple(
            stats for result in results for stats in result.worker_stats
        ),
        kernel=reference.kernel,
    )


@dataclass(frozen=True)
class TendsModel:
    """Checkpointable state of an incrementally-fitted TENDS estimator.

    Holds everything :meth:`Tends.partial_fit` needs to absorb the next
    batch: the cached :class:`~repro.core.stats.SufficientStats`, the full
    status history (stage-3 family counts are not pairwise-reducible, so
    dirty-node searches re-score against the concatenated history), and
    the previous fit's threshold / candidate sets / parent sets for the
    dirty-node diff and clean-node warm start.

    Instances are immutable; updates build a new model and install it only
    after the whole update succeeded (copy-on-write), so an interrupted
    ``partial_fit`` leaves the previous model untouched.

    :meth:`save` / :meth:`load` round-trip the model through a single NPZ
    file (count matrices + history as arrays, config and fingerprints as
    an embedded JSON blob).  ``load`` re-derives the data fingerprint,
    statistics checksum, and config fingerprint and refuses the snapshot
    with :class:`~repro.exceptions.CheckpointError` on any mismatch —
    mixing incompatible histories or silently-corrupted counts is an
    error, not a degradation.  See docs/INCREMENTAL.md.
    """

    config: TendsConfig
    stats: SufficientStats | TiledSufficientStats
    statuses: StatusMatrix
    threshold: float
    candidates: tuple[tuple[int, ...], ...]
    parent_sets: tuple[tuple[int, ...], ...]
    diagnostics: tuple[SearchDiagnostics, ...]

    #: Snapshot format version; bumped on layout changes so old readers
    #: fail loudly instead of misinterpreting newer files.
    SNAPSHOT_VERSION = 1

    @property
    def n_nodes(self) -> int:
        return self.stats.n_nodes

    @property
    def beta(self) -> int:
        """Processes absorbed so far (initial fit + every update)."""
        return self.stats.beta

    def graph(self) -> DiffusionGraph:
        """The currently-inferred topology (edges parent → child)."""
        graph = DiffusionGraph(self.n_nodes)
        for child, parents in enumerate(self.parent_sets):
            for parent in parents:
                graph.add_edge(parent, child)
        return graph.freeze()

    def data_fingerprint(self) -> str:
        """SHA-256 over the stored history (statuses bytes + mask).

        Saved into snapshots and re-derived on :meth:`load`; a mismatch
        means the snapshot's arrays no longer describe the history the
        model was fitted on, and the load is refused.
        """
        digest = hashlib.sha256()
        values = self.statuses.values
        digest.update(str(values.shape).encode())
        digest.update(values.tobytes())
        mask = self.statuses.mask
        if mask is None:
            digest.update(b"unmasked")
        else:
            digest.update(b"masked")
            digest.update(mask.tobytes())
        return digest.hexdigest()

    def fingerprint(self) -> str:
        """SHA-256 over everything that defines the fitted state: the
        algorithm configuration, the absorbed history, the cached counts,
        the threshold, and the inferred parent sets.

        Two models with equal fingerprints are bit-identical for every
        read path the service exposes — this is the equality the
        crash-replay guarantee in docs/SERVING.md is stated in.
        """
        digest = hashlib.sha256()
        digest.update(self.config.algorithm_fingerprint().encode())
        digest.update(self.data_fingerprint().encode())
        digest.update(self.stats.checksum().encode())
        digest.update(repr(self.threshold).encode())
        digest.update(json.dumps(self.candidates).encode())
        digest.update(json.dumps(self.parent_sets).encode())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the model to ``path`` as a single NPZ snapshot.

        The write is **crash-atomic**: the archive is written to a
        temporary file in the same directory, flushed and fsynced, then
        :func:`os.replace`-d over ``path`` — a kill at any instant leaves
        either the previous snapshot or the new one, never a truncated
        hybrid (``tests/faults/test_model_snapshot_atomic.py`` interrupts
        the write at every stage to hold this).
        """
        path = Path(path)
        meta = {
            "format": "tends-model",
            "version": self.SNAPSHOT_VERSION,
            "config": self.config.as_dict(),
            "algorithm_fingerprint": self.config.algorithm_fingerprint(),
            "data_fingerprint": self.data_fingerprint(),
            "stats_checksum": self.stats.checksum(),
            "beta": self.stats.beta,
            "n_nodes": self.n_nodes,
            "has_missing": self.stats.has_missing,
            "threshold": self.threshold,
            "candidates": [list(c) for c in self.candidates],
            "parent_sets": [list(p) for p in self.parent_sets],
            "diagnostics": [asdict(d) for d in self.diagnostics],
        }
        arrays: dict[str, np.ndarray] = {
            "meta_json": np.frombuffer(
                json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
            ),
            "statuses": self.statuses.values,
            "infected": self.stats.infected,
            "observed": self.stats.observed,
        }
        if self.statuses.mask is not None:
            arrays["statuses_mask"] = self.statuses.mask
        for key in COUNT_KEYS:
            # count_matrix densifies one plane at a time, so tile-backed
            # statistics snapshot without materialising all five at once.
            arrays[f"counts_{key}"] = self.stats.count_matrix(key)
        # Same-directory temp + os.replace: readers (and a restart after
        # a kill mid-save) only ever see a complete snapshot.
        fd, temp_name = tempfile.mkstemp(
            prefix=f".{path.name}.", suffix=".tmp", dir=path.parent or "."
        )
        temp_path = Path(temp_name)
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except BaseException:
            temp_path.unlink(missing_ok=True)
            raise
        _fsync_directory(path.parent)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "TendsModel":
        """Read a snapshot written by :meth:`save`, verifying integrity.

        Raises :class:`~repro.exceptions.CheckpointError` when the file is
        unreadable, from an unknown format/version, or fails any of its
        three self-checks (data fingerprint, statistics checksum, config
        fingerprint).
        """
        path = Path(path)
        try:
            with np.load(path) as archive:
                arrays = {name: archive[name] for name in archive.files}
        except CheckpointError:
            raise
        except Exception as error:
            raise CheckpointError(
                f"cannot read model snapshot {path}: {error}"
            ) from error
        if "meta_json" not in arrays:
            raise CheckpointError(
                f"{path} is not a TENDS model snapshot (no metadata entry)"
            )
        try:
            meta = json.loads(bytes(bytearray(arrays["meta_json"])).decode())
        except (ValueError, UnicodeDecodeError) as error:
            raise CheckpointError(
                f"model snapshot {path} carries unparseable metadata: {error}"
            ) from error
        if meta.get("format") != "tends-model":
            raise CheckpointError(
                f"{path} is not a TENDS model snapshot "
                f"(format={meta.get('format')!r})"
            )
        version = meta.get("version")
        if version != cls.SNAPSHOT_VERSION:
            raise CheckpointError(
                f"model snapshot {path} has format version {version!r}; "
                f"this build reads version {cls.SNAPSHOT_VERSION}"
            )
        try:
            config = TendsConfig(**meta["config"])
            mask = arrays.get("statuses_mask")
            statuses = StatusMatrix(
                arrays["statuses"], None if mask is None else mask
            )
            stats = SufficientStats(
                counts={
                    key: np.ascontiguousarray(
                        arrays[f"counts_{key}"], dtype=np.int64
                    )
                    for key in COUNT_KEYS
                },
                infected=np.ascontiguousarray(arrays["infected"], dtype=np.int64),
                observed=np.ascontiguousarray(arrays["observed"], dtype=np.int64),
                beta=int(meta["beta"]),
                has_missing=bool(meta["has_missing"]),
            )
            model = cls(
                config=config,
                stats=stats,
                statuses=statuses,
                threshold=float(meta["threshold"]),
                candidates=tuple(
                    tuple(int(node) for node in row) for row in meta["candidates"]
                ),
                parent_sets=tuple(
                    tuple(int(node) for node in row) for row in meta["parent_sets"]
                ),
                diagnostics=tuple(
                    SearchDiagnostics(**entry) for entry in meta["diagnostics"]
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"model snapshot {path} is internally inconsistent: {error}"
            ) from error
        if config.algorithm_fingerprint() != meta.get("algorithm_fingerprint"):
            raise CheckpointError(
                f"model snapshot {path} failed its config-fingerprint check: "
                "the stored configuration does not match the fingerprint it "
                "was saved with"
            )
        if model.data_fingerprint() != meta.get("data_fingerprint"):
            raise CheckpointError(
                f"model snapshot {path} failed its data-fingerprint check: "
                "the stored history does not match the fingerprint it was "
                "saved with — refusing to mix incompatible histories"
            )
        if stats.checksum() != meta.get("stats_checksum"):
            raise CheckpointError(
                f"model snapshot {path} failed its statistics checksum: the "
                "cached counts drifted from the state they were saved in"
            )
        if (
            stats.n_nodes != statuses.n_nodes
            or stats.beta != statuses.beta
            or stats.has_missing != statuses.has_missing
        ):
            raise CheckpointError(
                f"model snapshot {path} pairs a "
                f"({statuses.beta} × {statuses.n_nodes}) history with "
                f"statistics for beta={stats.beta}, n={stats.n_nodes}"
            )
        return model


class Tends:
    """Statistical estimator of diffusion network topologies.

    The only observation it consumes is the final-status matrix; no
    timestamps, no diffusion sources, no prior knowledge of edge counts.

    Parameters
    ----------
    config:
        Full :class:`~repro.core.config.TendsConfig`; keyword overrides
        below are merged into it for convenience.
    **overrides:
        Any :class:`TendsConfig` field, e.g. ``Tends(mi_kind="traditional")``.
    """

    def __init__(self, config: TendsConfig | None = None, **overrides) -> None:
        base = config or TendsConfig()
        self.config = base.with_overrides(**overrides) if overrides else base
        self._model: TendsModel | None = None

    @property
    def model(self) -> TendsModel | None:
        """The incremental-update state installed by the last successful
        :meth:`fit` / :meth:`partial_fit` — pass it to
        :meth:`TendsModel.save` to checkpoint a service.  ``None`` before
        the first fit and for bootstrap-backed configurations
        (``threshold="stable"`` / ``bootstrap_samples``), whose resampled
        screening cannot be updated from cached counts."""
        return self._model

    @classmethod
    def from_model(cls, model: TendsModel, **overrides) -> "Tends":
        """Estimator resuming from a checkpointed :class:`TendsModel`.

        ``overrides`` may adjust execution/observability knobs (executor,
        n_jobs, trace, ...) for the resuming service; overriding a
        result-affecting field (anything in
        :attr:`TendsConfig.ALGORITHM_FIELDS`) raises
        :class:`~repro.exceptions.ConfigurationError` — a model is only
        valid under the algorithm configuration that produced it, so such
        a change needs a fresh :meth:`fit`.
        """
        config = (
            model.config.with_overrides(**overrides) if overrides else model.config
        )
        if config.algorithm_fingerprint() != model.config.algorithm_fingerprint():
            changed = sorted(
                name
                for name in TendsConfig.ALGORITHM_FIELDS
                if getattr(config, name) != getattr(model.config, name)
            )
            raise ConfigurationError(
                "cannot resume a TENDS model under a different algorithm "
                f"configuration (changed: {', '.join(changed)}); run a full "
                "fit() instead"
            )
        estimator = cls(config)
        estimator._model = replace(model, config=config)
        return estimator

    # ------------------------------------------------------------------
    def _execution_plan(self) -> ExecutionPlan:
        """The stage-3 executor plan from the configured knobs — shared
        by the parent-search fan-out and the tile fan-outs, so tiles get
        the same retry / backoff / fallback / timeout semantics."""
        return ExecutionPlan.resolve(
            executor=self.config.executor,
            n_jobs=self.config.n_jobs,
            chunk_size=self.config.chunk_size,
            max_attempts=self.config.max_attempts,
            chunk_timeout=self.config.chunk_timeout,
            fallback=self.config.executor_fallback,
        )

    def _count_stats(
        self,
        statuses: StatusMatrix,
        kernel_backend: str,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        metrics: "MetricsRegistry | NullMetrics" = NULL_METRICS,
    ) -> SufficientStats | TiledSufficientStats:
        """Count the fit's sufficient statistics: dense one-shot by
        default, tile-by-tile into the spill directory when
        ``config.tile_size`` is set (bit-identical either way)."""
        if self.config.tile_size is None:
            return SufficientStats.from_statuses(statuses, kernel=kernel_backend)
        return TiledSufficientStats.from_statuses(
            statuses,
            tile_size=self.config.tile_size,
            spill_dir=self.config.spill_dir,
            kernel=kernel_backend,
            max_resident_tiles=self.config.max_resident_tiles,
            plan=self._execution_plan(),
            tracer=tracer,
            metrics=metrics,
        )

    def fit(
        self,
        statuses: StatusMatrix,
        *,
        stats: SufficientStats | TiledSufficientStats | None = None,
        nodes: Sequence[int] | None = None,
    ) -> TendsResult:
        """Run the full Algorithm 1 pipeline on ``statuses``.

        ``stats`` optionally supplies precomputed
        :class:`~repro.core.stats.SufficientStats` **of these exact
        observations** (callers fitting the same matrix repeatedly, e.g.
        :func:`repro.core.selection.select_threshold_scale`, skip the
        ``O(β n²)`` counting that way); when omitted the statistics are
        counted here — tile-by-tile into the configured spill directory
        when ``config.tile_size`` is set.  Either way the fit installs an
        incremental-update :attr:`model` unless the configuration is
        bootstrap-backed.

        ``nodes`` restricts the stage-3 parent search to a node shard:
        stages 1–2 (IMI, threshold) still run in full, but only the
        shard's parent sets are searched, and the returned result carries
        :attr:`TendsResult.nodes` so :func:`merge_results` can reassemble
        a bit-identical full result from a disjoint cover of shards.
        Shard fits install no incremental :attr:`model` (the state would
        be partial).
        """
        if not isinstance(statuses, StatusMatrix):
            statuses = StatusMatrix(statuses)
        if statuses.beta < 2:
            raise DataError(
                f"TENDS needs at least 2 diffusion processes, got {statuses.beta}"
            )
        if statuses.has_missing:
            # Missing-data policy (config.missing).  "pairwise" leaves the
            # mask in place — imi/scoring then count over pairwise- and
            # family-complete processes with per-pair effective β.
            if self.config.missing == "refuse":
                missing_count = int((~statuses.mask).sum())
                raise DataError(
                    f"observations contain {missing_count} unobserved entries "
                    "and missing='refuse' is set"
                )
            if self.config.missing == "zero-fill":
                statuses = statuses.filled(0)
        if self.config.audit != "ignore":
            # Degenerate observations (all-zero cascades, constant nodes)
            # are handled gracefully downstream — the Eq. 16-17 / 24-25
            # limits contribute their documented values — but they carry
            # no signal, so surface them instead of silently inferring an
            # empty neighbourhood.
            validate_observations(
                statuses,
                on_degenerate="strict" if self.config.audit == "strict" else "warn",
            )
        n = statuses.n_nodes
        kernel_backend = resolve_kernel(self.config.kernel)
        shard: tuple[int, ...] | None = None
        if nodes is not None:
            shard = tuple(sorted({int(node) for node in nodes}))
            if not shard:
                raise ConfigurationError("fit(nodes=...) needs at least one node")
            if shard[0] < 0 or shard[-1] >= n:
                raise ConfigurationError(
                    f"fit(nodes=...) entries must be in [0, {n}), "
                    f"got {shard[0]}..{shard[-1]}"
                )
        if stats is not None and (
            stats.beta != statuses.beta
            or stats.n_nodes != n
            or stats.has_missing != statuses.has_missing
        ):
            raise DataError(
                "supplied sufficient statistics describe a "
                f"(beta={stats.beta}, n={stats.n_nodes}, "
                f"missing={stats.has_missing}) history, not these "
                f"(beta={statuses.beta}, n={n}, "
                f"missing={statuses.has_missing}) observations"
            )

        # Observability: a traced fit records nested spans and algorithm
        # metrics; untraced fits run through the shared no-op singletons
        # (one attribute lookup per site).  Either way the inference is
        # bit-identical — instrumentation only observes.
        trace = self.config.trace
        tracer: Tracer | NullTracer = Tracer() if trace else NULL_TRACER
        metrics: MetricsRegistry | NullMetrics = (
            MetricsRegistry() if trace else NULL_METRICS
        )
        memory: MemoryTracker | NullMemoryTracker = (
            MemoryTracker() if self.config.memory else NULL_MEMORY
        )
        if statuses.has_missing:
            metrics.set_gauge("tends_mask_density", float(statuses.mask.mean()))
        else:
            metrics.set_gauge("tends_mask_density", 1.0)
        with ambient_tracer(tracer), memory.activate():
            with tracer.span(
                "tends.fit", n_nodes=n, beta=statuses.beta, kernel=kernel_backend
            ) as fit_span, memory.measure("total", fit_span):
                if stats is None:
                    with tracer.span("tends.stats", beta=statuses.beta) as span:
                        with memory.measure("stats", span):
                            stats = self._count_stats(
                                statuses, kernel_backend, tracer, metrics
                            )
                result, candidates = self._run_pipeline(
                    statuses,
                    stats,
                    n,
                    tracer,
                    metrics,
                    kernel_backend,
                    memory,
                    nodes=shard,
                )
        if trace or memory.enabled:
            result = replace(
                result,
                telemetry=Telemetry(
                    spans=tracer.finished(),
                    metrics=metrics.snapshot(),
                    epoch_offset=tracer.epoch_offset,
                    memory=memory.stages(),
                ),
            )
        # Install the incremental-update state.  Bootstrap-backed configs
        # get none: resampled screening/confidence is a function of the
        # raw history, not of the cached counts, so partial_fit cannot
        # reproduce it and refuses such configs up front.  Shard fits get
        # none either — their parent sets are partial by construction.
        if (
            self.config.threshold == "stable"
            or self.config.bootstrap_samples
            or shard is not None
        ):
            self._model = None
        else:
            self._model = TendsModel(
                config=self.config,
                stats=stats,
                statuses=statuses,
                threshold=result.threshold,
                candidates=candidates,
                parent_sets=result.parent_sets,
                diagnostics=result.diagnostics,
            )
        return result

    def _select_threshold(
        self, mi: np.ndarray, n: int
    ) -> tuple[float, TwoMeansResult | None]:
        """Stage 2: the pruning threshold ``τ`` (Algorithm 1 line 5) —
        explicit override, or fixed-zero 2-means over the non-negative
        off-diagonal MI values (scaled).  Shared by :meth:`fit` and
        :meth:`partial_fit` so both derive ``τ`` through identical
        floating-point operations."""
        if self.config.threshold is not None and self.config.threshold != "stable":
            return float(self.config.threshold), None
        # Stream the off-diagonal extraction in row bands: concatenating
        # per-band row-major values reproduces ``mi[~np.eye(n)]`` element
        # for element (so τ is bit-identical), without materialising the
        # n×n boolean mask or a second full O(n²) copy — the peak this
        # stage adds is one band plus the final non-negative vector,
        # which keeps memmapped MI matrices (tiled fits) cheap to scan.
        band = max(1, _THRESHOLD_BAND_BYTES // max(8 * n, 1))
        chunks: list[np.ndarray] = []
        for start in range(0, n, band):
            stop = min(start + band, n)
            block = np.asarray(mi[start:stop], dtype=np.float64)
            keep = np.ones(block.shape, dtype=bool)
            keep[np.arange(stop - start), np.arange(start, stop)] = False
            values = block[keep]
            chunks.append(values[values >= 0.0])
        non_negative = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.float64)
        )
        clustering = fixed_zero_two_means(non_negative)
        return clustering.threshold * self.config.threshold_scale, clustering

    def _run_pipeline(
        self,
        statuses: StatusMatrix,
        stats: SufficientStats | TiledSufficientStats,
        n: int,
        tracer: "Tracer | NullTracer",
        metrics: "MetricsRegistry | NullMetrics",
        kernel_backend: str,
        memory: "MemoryTracker | NullMemoryTracker" = NULL_MEMORY,
        nodes: tuple[int, ...] | None = None,
    ) -> tuple[TendsResult, tuple[tuple[int, ...], ...]]:
        """Stages 1-3 of Algorithm 1 (validation already done by
        :meth:`fit`, which also owns the ambient tracer install and the
        kernel-backend resolution).

        Returns the result plus the per-node candidate sets, which the
        caller folds into the incremental-update model."""
        stage_seconds: dict[str, float] = {}
        metrics.set_gauge(
            "tends_kernel_packed", 1.0 if kernel_backend == "packed" else 0.0
        )

        # Stage 1: pairwise MI matrix (Algorithm 1 lines 2-4), from the
        # additive sufficient statistics — identical floating-point
        # pipeline to estimating straight from the observations.
        with tracer.span("tends.imi", kind=self.config.mi_kind) as imi_span:
            with memory.measure("imi", imi_span), Stopwatch() as watch:
                mi = stats.mi_matrix(self.config.mi_kind)
            stage_seconds["imi"] = watch.elapsed
        metrics.inc("tends_imi_pairs_total", n * (n - 1) // 2)

        # Stage 2: threshold via fixed-zero 2-means (line 5).
        stable_mode = self.config.threshold == "stable"
        with tracer.span("tends.threshold") as threshold_span:
            with memory.measure("threshold", threshold_span), Stopwatch() as watch:
                threshold, clustering = self._select_threshold(mi, n)
            stage_seconds["threshold"] = watch.elapsed
            threshold_span.set(tau=threshold)
        metrics.set_gauge("tends_threshold_tau", threshold)

        # Stage 2b (optional): bootstrap the IMI distribution for per-edge
        # confidence and, in stable mode, CI-based candidate screening.
        bootstrap = None
        stable_pairs: np.ndarray | None = None
        n_boot = self.config.bootstrap_samples
        if stable_mode and n_boot is None:
            n_boot = 100
        if n_boot:
            from repro.robustness.bootstrap import bootstrap_imi

            with tracer.span("tends.bootstrap", samples=n_boot) as boot_span:
                with memory.measure("bootstrap", boot_span), Stopwatch() as watch:
                    bootstrap = bootstrap_imi(
                        statuses,
                        n_boot,
                        seed=self.config.bootstrap_seed,
                        ci_level=self.config.ci_level,
                        mi_kind=self.config.mi_kind,
                    )
                    if stable_mode:
                        stable_pairs = bootstrap.stable_above(threshold)
                stage_seconds["bootstrap"] = watch.elapsed

        # Stage 3: candidate pruning + per-node parent search (lines 6-21).
        # The local score is decomposable, so the n searches are
        # independent; the executor backend fans them out and the merge
        # below reassembles results in node order, keeping the output
        # bit-identical to the serial loop for every backend/worker count.
        with tracer.span(
            "tends.search", strategy=self.config.search_strategy
        ) as search_span:
            with memory.measure("search", search_span), Stopwatch() as watch:
                search = ParentSearch(statuses, self.config)
                searched = range(n) if nodes is None else nodes
                items = [
                    (
                        node,
                        prune_candidates(
                            mi, node, threshold, self.config, stable_pairs
                        ),
                    )
                    for node in searched
                ]
                kept_pairs = sum(len(candidates) for _, candidates in items)
                metrics.inc(
                    "tends_candidate_pairs_pruned_total",
                    len(items) * (n - 1) - kept_pairs,
                )
                metrics.inc("tends_candidate_pairs_kept_total", kept_pairs)
                plan = self._execution_plan()
                executor = ParallelExecutor(plan, tracer=tracer)
                outcomes, worker_stats = executor.map(search_chunk, search, items)
                # Out-of-shard nodes keep empty placeholders; for full
                # fits every slot is overwritten in node order, so this
                # is byte-for-byte the previous assembly.
                parent_sets: list[tuple[int, ...]] = [() for _ in range(n)]
                diagnostics: list[SearchDiagnostics] = [
                    SearchDiagnostics(node=node) for node in range(n)
                ]
                graph = DiffusionGraph(n)
                for (node, _), (parents, diag) in zip(items, outcomes):
                    parent_sets[node] = tuple(parents)
                    diagnostics[node] = diag
                    for parent in parents:
                        graph.add_edge(parent, node)
            stage_seconds["search"] = watch.elapsed
            search_span.set(executor=plan.strategy, n_jobs=plan.n_jobs)
        for stats in worker_stats:
            stage_seconds[f"search/{stats.worker}"] = stats.seconds
        for diag in diagnostics:
            metrics.inc("tends_score_evaluations_total", diag.n_evaluations)
            metrics.inc("tends_bound_terminations_total", diag.bound_hits)
            metrics.observe("tends_greedy_iterations", diag.iterations)
        report = executor.last_report
        if report is not None:
            metrics.inc("executor_retries_total", report.retries)
            metrics.inc("executor_timeouts_total", report.timeouts)
            metrics.inc("executor_pool_rebuilds_total", report.pool_rebuilds)
            metrics.inc("executor_fallbacks_total", report.fallbacks)

        edge_confidence: dict[tuple[int, int], float] | None = None
        if bootstrap is not None:
            exceed = bootstrap.exceed_fraction(threshold)
            edge_confidence = {
                (parent, child): float(exceed[parent, child])
                for child, parents in enumerate(parent_sets)
                for parent in parents
            }

        result = TendsResult(
            graph=graph.freeze(),
            parent_sets=tuple(parent_sets),
            mi_matrix=mi,
            threshold=threshold,
            clustering=clustering,
            diagnostics=tuple(diagnostics),
            stage_seconds=stage_seconds,
            worker_stats=tuple(worker_stats),
            edge_confidence=edge_confidence,
            imi_bootstrap=bootstrap,
            kernel=kernel_backend,
            nodes=nodes,
        )
        return result, tuple(tuple(candidates) for _, candidates in items)

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------
    def partial_fit(
        self,
        new_statuses: StatusMatrix,
        *,
        drift: str = "ignore",
        drift_window: int | None = None,
        drift_config: "DriftConfig | None" = None,
    ) -> TendsResult:
        """Absorb a batch of newly-observed processes incrementally.

        Updates the cached sufficient statistics in ``O(Δβ · n²)``,
        recomputes IMI and ``τ`` from the counts, diffs the pruned
        candidate sets against the previous fit, and re-runs the stage-3
        parent search **only for dirty nodes** (candidate set changed, or
        the batch observed the node at least once); clean nodes keep their
        previous ``F_i``.  The returned result — edges, MI matrix, ``τ``,
        scores — is **bit-identical** to a one-shot :meth:`fit` on the
        concatenated history (see docs/INCREMENTAL.md for the argument
        and ``tests/property/test_prop_incremental.py`` for the proof
        harness).

        The update is copy-on-write: :attr:`model` is replaced only after
        the whole update succeeded, so an interrupted ``partial_fit``
        leaves the previous model (and a later retry) intact.

        Requires a fitted :attr:`model`; bootstrap-backed configurations
        (``threshold="stable"`` / ``bootstrap_samples``) are refused with
        :class:`~repro.exceptions.ConfigurationError` because resampled
        screening is not a function of the cached counts.  Batches are
        subject to the configured ``missing`` policy but are not
        re-audited (the observation audit runs at :meth:`fit` time).

        Drift handling (``drift=``, see :mod:`repro.core.drift`):

        * ``"ignore"`` (default) — exactly the behaviour above, byte for
          byte; no detector runs.
        * ``"detect"`` — after absorbing the batch, compare the newest
          ``drift_window`` processes (default: the batch) against the
          rest of the history per node pair and attach the
          :class:`~repro.core.drift.DriftReport` as ``result.drift``; the
          model still accumulates everything.
        * ``"adapt"`` — additionally, when the report flags drift, rebase
          the model onto the recent window and re-search **only the
          affected nodes** against it (quiescent nodes keep their parent
          sets); see :meth:`apply_drift_adaptation`.

        ``drift_window`` is a process count; ``drift_config`` tunes the
        detector's sensitivity (:class:`~repro.core.drift.DriftConfig`).
        """
        if drift not in ("ignore", "detect", "adapt"):
            raise ConfigurationError(
                f"unknown drift mode {drift!r} "
                "(choose from ignore, detect, adapt)"
            )
        if drift_window is not None and drift_window < 1:
            raise ConfigurationError(
                f"drift_window must be >= 1, got {drift_window}"
            )
        if self.config.threshold == "stable" or self.config.bootstrap_samples:
            raise ConfigurationError(
                "partial_fit does not support bootstrap-backed configurations "
                "(threshold='stable' or bootstrap_samples set): bootstrap "
                "screening resamples the raw history; run a full fit() instead"
            )
        previous = self._model
        if previous is None:
            raise InferenceError(
                "partial_fit needs a fitted model: call fit() first, or "
                "resume one with Tends.from_model(TendsModel.load(path))"
            )
        if not isinstance(new_statuses, StatusMatrix):
            new_statuses = StatusMatrix(new_statuses)
        if new_statuses.n_nodes != previous.n_nodes:
            raise DataError(
                f"batch covers {new_statuses.n_nodes} nodes, model covers "
                f"{previous.n_nodes}"
            )
        if new_statuses.has_missing:
            if self.config.missing == "refuse":
                missing_count = int((~new_statuses.mask).sum())
                raise DataError(
                    f"batch contains {missing_count} unobserved entries "
                    "and missing='refuse' is set"
                )
            if self.config.missing == "zero-fill":
                new_statuses = new_statuses.filled(0)

        trace = self.config.trace
        tracer: Tracer | NullTracer = Tracer() if trace else NULL_TRACER
        metrics: MetricsRegistry | NullMetrics = (
            MetricsRegistry() if trace else NULL_METRICS
        )
        memory: MemoryTracker | NullMemoryTracker = (
            MemoryTracker() if self.config.memory else NULL_MEMORY
        )
        with ambient_tracer(tracer), memory.activate():
            with tracer.span(
                "tends.update",
                n_nodes=previous.n_nodes,
                batch_beta=new_statuses.beta,
                beta=previous.beta + new_statuses.beta,
            ) as update_span, memory.measure("total", update_span):
                result, model = self._run_update(
                    previous, new_statuses, tracer, metrics, memory
                )
            if drift != "ignore" and new_statuses.beta > 0:
                report = self._detect_drift_on(
                    model,
                    window=drift_window or new_statuses.beta,
                    config=drift_config,
                    tracer=tracer,
                    metrics=metrics,
                )
                result = replace(result, drift=report)
                if drift == "adapt" and report.drifted:
                    result, model = self._run_adapt(
                        model, report, report.recent_beta, tracer, metrics, memory
                    )
        if trace or memory.enabled:
            result = replace(
                result,
                telemetry=Telemetry(
                    spans=tracer.finished(),
                    metrics=metrics.snapshot(),
                    epoch_offset=tracer.epoch_offset,
                    memory=memory.stages(),
                ),
            )
        # Copy-on-write installation: nothing above mutated the previous
        # model, so any failure before this line leaves it usable.
        self._model = model
        return result

    def _run_update(
        self,
        previous: TendsModel,
        batch: StatusMatrix,
        tracer: "Tracer | NullTracer",
        metrics: "MetricsRegistry | NullMetrics",
        memory: "MemoryTracker | NullMemoryTracker" = NULL_MEMORY,
    ) -> tuple[TendsResult, TendsModel]:
        """One incremental update (validation already done by
        :meth:`partial_fit`, which also owns the ambient tracer and the
        copy-on-write model installation)."""
        n = previous.n_nodes
        stage_seconds: dict[str, float] = {}
        metrics.inc("tends_update_batches_total")
        kernel_backend = resolve_kernel(self.config.kernel)
        metrics.set_gauge(
            "tends_kernel_packed", 1.0 if kernel_backend == "packed" else 0.0
        )

        # Sufficient statistics: count the batch, add (integer-exact).
        # Tile-backed models roll a new copy-on-write tile generation;
        # dense models under a configured tile_size fan the batch count
        # out over tiles (same integers, same merge) — either way the
        # update is bit-identical to the one-shot dense path.
        with tracer.span("tends.stats", batch_beta=batch.beta) as stats_span:
            with memory.measure("stats", stats_span), Stopwatch() as watch:
                if isinstance(previous.stats, TiledSufficientStats):
                    stats: SufficientStats | TiledSufficientStats = (
                        previous.stats.updated(
                            batch,
                            kernel=kernel_backend,
                            plan=self._execution_plan(),
                            tracer=tracer,
                            metrics=metrics,
                        )
                    )
                elif self.config.tile_size is not None:
                    stats = previous.stats.updated(
                        batch,
                        kernel=kernel_backend,
                        tiling=TileFanout(
                            tile_size=self.config.tile_size,
                            plan=self._execution_plan(),
                            tracer=tracer,
                            metrics=metrics,
                        ),
                    )
                else:
                    stats = previous.stats.updated(batch, kernel=kernel_backend)
                history = previous.statuses.append(batch)
            stage_seconds["stats"] = watch.elapsed
        if history.has_missing:
            metrics.set_gauge("tends_mask_density", float(history.mask.mean()))
        else:
            metrics.set_gauge("tends_mask_density", 1.0)

        # Stage 1 from cached counts (O(n²), no pass over the history).
        with tracer.span("tends.imi", kind=self.config.mi_kind) as imi_span:
            with memory.measure("imi", imi_span), Stopwatch() as watch:
                mi = stats.mi_matrix(self.config.mi_kind)
            stage_seconds["imi"] = watch.elapsed
        metrics.inc("tends_imi_pairs_total", n * (n - 1) // 2)

        # Stage 2: τ from the updated MI distribution.
        with tracer.span("tends.threshold") as threshold_span:
            with memory.measure("threshold", threshold_span), Stopwatch() as watch:
                threshold, clustering = self._select_threshold(mi, n)
            stage_seconds["threshold"] = watch.elapsed
            threshold_span.set(tau=threshold)
        metrics.set_gauge("tends_threshold_tau", threshold)

        # Diff against the previous fit: a node must be re-searched iff
        # its candidate set changed, or the batch observed it at least
        # once (then its family counts / δ_i may differ).  Nodes failing
        # both tests provably score every parent set identically to the
        # previous fit — all their counts restrict to rows observing the
        # child — so their previous F_i IS the refit answer.
        with tracer.span("tends.diff") as diff_span:
            with memory.measure("diff", diff_span), Stopwatch() as watch:
                candidates = tuple(
                    tuple(prune_candidates(mi, node, threshold, self.config))
                    for node in range(n)
                )
                if batch.beta == 0:
                    touched = np.zeros(n, dtype=np.bool_)
                elif batch.mask is None:
                    touched = np.ones(n, dtype=np.bool_)
                else:
                    touched = batch.mask.any(axis=0)
                dirty = [
                    node
                    for node in range(n)
                    if bool(touched[node])
                    or candidates[node] != previous.candidates[node]
                ]
                dirty_set = set(dirty)
                clean = [node for node in range(n) if node not in dirty_set]
            stage_seconds["diff"] = watch.elapsed
            diff_span.set(dirty=len(dirty), clean=len(clean))
        kept_pairs = sum(len(c) for c in candidates)
        metrics.inc("tends_candidate_pairs_pruned_total", n * (n - 1) - kept_pairs)
        metrics.inc("tends_candidate_pairs_kept_total", kept_pairs)
        metrics.inc("tends_update_nodes_dirty_total", len(dirty))
        metrics.inc("tends_update_nodes_clean_total", len(clean))
        metrics.inc("tends_update_searches_skipped_total", len(clean))

        # Stage 3 for dirty nodes only, on the concatenated history,
        # through the same executor machinery as a full fit.
        with tracer.span(
            "tends.search",
            strategy=self.config.search_strategy,
            dirty=len(dirty),
        ) as search_span:
            with memory.measure("search", search_span), Stopwatch() as watch:
                outcomes: list = []
                worker_stats: list[WorkerStats] = []
                report = None
                if dirty:
                    search = ParentSearch(history, self.config)
                    items = [(node, list(candidates[node])) for node in dirty]
                    plan = ExecutionPlan.resolve(
                        executor=self.config.executor,
                        n_jobs=self.config.n_jobs,
                        chunk_size=self.config.chunk_size,
                        max_attempts=self.config.max_attempts,
                        chunk_timeout=self.config.chunk_timeout,
                        fallback=self.config.executor_fallback,
                    )
                    executor = ParallelExecutor(plan, tracer=tracer)
                    outcomes, worker_stats = executor.map(
                        search_chunk, search, items
                    )
                    report = executor.last_report
                    search_span.set(executor=plan.strategy, n_jobs=plan.n_jobs)
            stage_seconds["search"] = watch.elapsed
        for stats_entry in worker_stats:
            stage_seconds[f"search/{stats_entry.worker}"] = stats_entry.seconds
        for _, diag in outcomes:
            metrics.inc("tends_score_evaluations_total", diag.n_evaluations)
            metrics.inc("tends_bound_terminations_total", diag.bound_hits)
            metrics.observe("tends_greedy_iterations", diag.iterations)
        if report is not None:
            metrics.inc("executor_retries_total", report.retries)
            metrics.inc("executor_timeouts_total", report.timeouts)
            metrics.inc("executor_pool_rebuilds_total", report.pool_rebuilds)
            metrics.inc("executor_fallbacks_total", report.fallbacks)

        # Merge: re-searched answers for dirty nodes, warm-started
        # previous answers for clean ones, in node order.
        parent_sets = list(previous.parent_sets)
        diagnostics = list(previous.diagnostics)
        for node, (parents, diag) in zip(dirty, outcomes):
            parent_sets[node] = tuple(parents)
            diagnostics[node] = diag
        graph = DiffusionGraph(n)
        for node, parents in enumerate(parent_sets):
            for parent in parents:
                graph.add_edge(parent, node)

        info = UpdateInfo(
            batch_beta=batch.beta,
            dirty_nodes=tuple(dirty),
            clean_nodes=tuple(clean),
            threshold_changed=threshold != previous.threshold,
        )
        result = TendsResult(
            graph=graph.freeze(),
            parent_sets=tuple(parent_sets),
            mi_matrix=mi,
            threshold=threshold,
            clustering=clustering,
            diagnostics=tuple(diagnostics),
            stage_seconds=stage_seconds,
            worker_stats=tuple(worker_stats),
            update=info,
            kernel=kernel_backend,
        )
        model = TendsModel(
            config=self.config,
            stats=stats,
            statuses=history,
            threshold=threshold,
            candidates=candidates,
            parent_sets=result.parent_sets,
            diagnostics=result.diagnostics,
        )
        return result, model

    # ------------------------------------------------------------------
    # drift detection + self-healing adaptation
    # ------------------------------------------------------------------
    def detect_drift(
        self,
        window: int | None = None,
        config: "DriftConfig | None" = None,
    ) -> "DriftReport":
        """Check the fitted model's history for per-pair drift.

        Splits the accumulated history into the newest ``window``
        processes (default: half the history) and everything before
        them, and runs :func:`repro.core.drift.detect_drift` on the two
        count windows.  Read-only: the model is untouched.
        """
        model = self._model
        if model is None:
            raise InferenceError(
                "detect_drift needs a fitted model: call fit() first, or "
                "resume one with Tends.from_model(TendsModel.load(path))"
            )
        if window is not None and window < 1:
            raise ConfigurationError(f"drift window must be >= 1, got {window}")
        return self._detect_drift_on(
            model,
            window=window or max(model.beta // 2, 1),
            config=config,
            tracer=NULL_TRACER,
            metrics=NULL_METRICS,
        )

    def apply_drift_adaptation(
        self,
        report: "DriftReport",
        *,
        window: int | None = None,
    ) -> TendsResult:
        """Self-heal from a drift verdict: rebase onto the recent window.

        Drops everything before the newest ``window`` processes (default:
        the window the ``report`` tested, :attr:`DriftReport.recent_beta`)
        from the model's statistics and history, recomputes IMI / ``τ`` /
        candidate sets from that window, and re-runs the stage-3 parent
        search **only for** :attr:`DriftReport.affected_nodes`; quiescent
        nodes keep their previous parent sets.  For the re-searched nodes
        the answer is bit-identical to a fresh :meth:`fit` on the window
        (same counts, same ``τ``, same candidates, same search), so with
        every node flagged the whole model matches the fresh fit
        fingerprint — held by ``tests/unit/test_tends_drift.py``.

        Copy-on-write like :meth:`partial_fit`: the model is replaced
        only after the adaptation fully succeeded.
        """
        model = self._model
        if model is None:
            raise InferenceError(
                "apply_drift_adaptation needs a fitted model: call fit() first"
            )
        if not report.drifted:
            raise InferenceError(
                "apply_drift_adaptation needs a drifted report "
                "(report.drifted is False — nothing to heal)"
            )
        window = window or report.recent_beta
        if window < 1:
            raise ConfigurationError(f"adapt window must be >= 1, got {window}")
        trace = self.config.trace
        tracer: Tracer | NullTracer = Tracer() if trace else NULL_TRACER
        metrics: MetricsRegistry | NullMetrics = (
            MetricsRegistry() if trace else NULL_METRICS
        )
        memory: MemoryTracker | NullMemoryTracker = (
            MemoryTracker() if self.config.memory else NULL_MEMORY
        )
        with ambient_tracer(tracer), memory.activate():
            result, adapted = self._run_adapt(
                model, report, window, tracer, metrics, memory
            )
        if trace or memory.enabled:
            result = replace(
                result,
                telemetry=Telemetry(
                    spans=tracer.finished(),
                    metrics=metrics.snapshot(),
                    epoch_offset=tracer.epoch_offset,
                    memory=memory.stages(),
                ),
            )
        self._model = adapted
        return result

    def _detect_drift_on(
        self,
        model: TendsModel,
        *,
        window: int,
        config: "DriftConfig | None",
        tracer: "Tracer | NullTracer",
        metrics: "MetricsRegistry | NullMetrics",
    ) -> "DriftReport":
        """Reference-vs-recent check over ``model``'s counts.

        The recent window is counted from the history tail (``O(W·n²)``);
        the reference is recovered in ``O(n²)`` as ``total − recent`` —
        integer subtraction on additive counts is exact, so both operands
        are bit-identical to counting the two sub-histories directly.
        """
        from repro.core.drift import detect_drift

        window = min(window, model.beta)
        kernel_backend = resolve_kernel(self.config.kernel)
        with tracer.span("tends.drift", window=window):
            recent_statuses = model.statuses.subset(
                range(model.statuses.beta - window, model.statuses.beta)
            )
            recent = SufficientStats.from_statuses(
                recent_statuses, kernel=kernel_backend
            )
            reference = model.stats.subtracted(recent)
            report = detect_drift(reference, recent, config)
        metrics.inc("tends_drift_checks_total")
        if report.drifted:
            metrics.inc("tends_drift_detections_total")
            metrics.inc("tends_drift_pairs_flagged_total", report.n_flagged)
        metrics.set_gauge(
            "tends_drift_nodes_affected", float(len(report.affected_nodes))
        )
        return report

    def _run_adapt(
        self,
        model: TendsModel,
        report: "DriftReport",
        window: int,
        tracer: "Tracer | NullTracer",
        metrics: "MetricsRegistry | NullMetrics",
        memory: "MemoryTracker | NullMemoryTracker" = NULL_MEMORY,
    ) -> tuple[TendsResult, TendsModel]:
        """Rebase onto the newest ``window`` processes and re-search the
        report's affected nodes (validation already done by the callers,
        which also own the copy-on-write installation)."""
        n = model.n_nodes
        window = min(window, model.beta)
        stage_seconds: dict[str, float] = {}
        kernel_backend = resolve_kernel(self.config.kernel)
        metrics.inc("tends_adapt_total")
        with tracer.span(
            "tends.adapt", window=window, nodes=len(report.affected_nodes)
        ) as adapt_span, memory.measure("adapt", adapt_span):
            # Recent-window statistics and history: the exact inputs a
            # fresh fit on the post-change window would see.
            with tracer.span("tends.stats", batch_beta=window) as stats_span:
                with memory.measure("stats", stats_span), Stopwatch() as watch:
                    history = model.statuses.subset(
                        range(model.statuses.beta - window, model.statuses.beta)
                    )
                    stats = SufficientStats.from_statuses(
                        history, kernel=kernel_backend
                    )
                stage_seconds["stats"] = watch.elapsed

            with tracer.span("tends.imi", kind=self.config.mi_kind) as imi_span:
                with memory.measure("imi", imi_span), Stopwatch() as watch:
                    mi = stats.mi_matrix(self.config.mi_kind)
                stage_seconds["imi"] = watch.elapsed

            with tracer.span("tends.threshold") as threshold_span:
                with memory.measure(
                    "threshold", threshold_span
                ), Stopwatch() as watch:
                    threshold, clustering = self._select_threshold(mi, n)
                stage_seconds["threshold"] = watch.elapsed
                threshold_span.set(tau=threshold)

            candidates = tuple(
                tuple(prune_candidates(mi, node, threshold, self.config))
                for node in range(n)
            )
            dirty = [node for node in report.affected_nodes if 0 <= node < n]
            dirty_set = set(dirty)
            clean = [node for node in range(n) if node not in dirty_set]

            with tracer.span(
                "tends.search",
                strategy=self.config.search_strategy,
                dirty=len(dirty),
            ) as search_span:
                with memory.measure("search", search_span), Stopwatch() as watch:
                    outcomes: list = []
                    worker_stats: list[WorkerStats] = []
                    if dirty:
                        search = ParentSearch(history, self.config)
                        items = [(node, list(candidates[node])) for node in dirty]
                        plan = ExecutionPlan.resolve(
                            executor=self.config.executor,
                            n_jobs=self.config.n_jobs,
                            chunk_size=self.config.chunk_size,
                            max_attempts=self.config.max_attempts,
                            chunk_timeout=self.config.chunk_timeout,
                            fallback=self.config.executor_fallback,
                        )
                        executor = ParallelExecutor(plan, tracer=tracer)
                        outcomes, worker_stats = executor.map(
                            search_chunk, search, items
                        )
                        search_span.set(executor=plan.strategy, n_jobs=plan.n_jobs)
                stage_seconds["search"] = watch.elapsed
            adapt_span.set(dirty=len(dirty), clean=len(clean))
        for stats_entry in worker_stats:
            stage_seconds[f"search/{stats_entry.worker}"] = stats_entry.seconds
        for _, diag in outcomes:
            metrics.inc("tends_score_evaluations_total", diag.n_evaluations)

        parent_sets = list(model.parent_sets)
        diagnostics = list(model.diagnostics)
        for node, (parents, diag) in zip(dirty, outcomes):
            parent_sets[node] = tuple(parents)
            diagnostics[node] = diag
        graph = DiffusionGraph(n)
        for node, parents in enumerate(parent_sets):
            for parent in parents:
                graph.add_edge(parent, node)

        info = UpdateInfo(
            batch_beta=0,
            dirty_nodes=tuple(dirty),
            clean_nodes=tuple(clean),
            threshold_changed=threshold != model.threshold,
        )
        result = TendsResult(
            graph=graph.freeze(),
            parent_sets=tuple(parent_sets),
            mi_matrix=mi,
            threshold=threshold,
            clustering=clustering,
            diagnostics=tuple(diagnostics),
            stage_seconds=stage_seconds,
            worker_stats=tuple(worker_stats),
            update=info,
            kernel=kernel_backend,
            drift=report,
        )
        adapted = TendsModel(
            config=self.config,
            stats=stats,
            statuses=history,
            threshold=threshold,
            candidates=candidates,
            parent_sets=result.parent_sets,
            diagnostics=result.diagnostics,
        )
        return result, adapted

    # ------------------------------------------------------------------
    def _candidates_for(
        self,
        mi: np.ndarray,
        node: int,
        threshold: float,
        stable_pairs: np.ndarray | None = None,
    ) -> list[int]:
        """Back-compat alias of :func:`repro.core.search.prune_candidates`
        bound to this estimator's config."""
        return prune_candidates(mi, node, threshold, self.config, stable_pairs)
