"""Propagation-probability estimation for an inferred topology.

The paper focuses on recovering the *edge set* and notes that "a few
existing approaches have presented how to quantify the propagation
probability for a specific edge based on observed infection status
results [28]" (§III).  This module supplies that missing piece so the
library's output is a fully parameterised diffusion network.

Estimator.  Under the independent-cascade model, a node ``v`` with parent
set ``F`` ends a process *uninfected* with probability

    P(X_v = 0 | X_F = π) = (1 − s_v) · Π_{u ∈ F : π_u = 1} (1 − p_{u→v})

where ``s_v`` absorbs seeding and background effects.  Taking the
complementary view per parent: comparing the child's infection frequency
between processes where *only* the subsets of parents differ is noisy at
realistic β, so we use the standard **attributable-risk** estimator

    p̂_{u→v} = max(0, (q₁ − q₀) / (1 − q₀)),

with ``q₁ = P̂(X_v = 1 | X_u = 1)`` and ``q₀ = P̂(X_v = 1 | X_u = 0)``.
``q₀`` estimates the probability that ``v`` is infected through seeding or
its other parents; the formula rescales the excess infection rate under
``u``'s infection to the share of processes where those other causes did
not fire.  For a single-parent node this is exactly the MLE of the edge
probability; with multiple parents it is consistent when parents'
infections are weakly dependent, and empirically recovers the simulator's
Gaussian ``μ`` within a few hundredths (see the unit tests).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.exceptions import DataError
from repro.graphs.digraph import DiffusionGraph
from repro.simulation.statuses import StatusMatrix

__all__ = ["estimate_edge_probabilities", "attributable_risk"]


def attributable_risk(statuses: StatusMatrix, parent: int, child: int) -> float:
    """The attributable-risk probability estimate for one edge.

    Returns 0.0 when the conditioning cells are empty (the parent is
    always or never infected) — an edge with no contrast in the data
    carries no probability information.
    """
    parent_states = statuses.column(parent).astype(bool)
    child_states = statuses.column(child).astype(np.float64)
    n_parent_infected = int(parent_states.sum())
    n_parent_uninfected = statuses.beta - n_parent_infected
    if n_parent_infected == 0 or n_parent_uninfected == 0:
        return 0.0
    q1 = float(child_states[parent_states].mean())
    q0 = float(child_states[~parent_states].mean())
    if q0 >= 1.0:
        return 0.0
    return max(0.0, (q1 - q0) / (1.0 - q0))


def estimate_edge_probabilities(
    graph: DiffusionGraph, statuses: StatusMatrix
) -> dict[tuple[int, int], float]:
    """Estimate a propagation probability for every edge of ``graph``.

    Parameters
    ----------
    graph:
        An inferred (or known) topology over the same nodes as ``statuses``.
    statuses:
        The observed final infection statuses.

    Returns
    -------
    dict
        ``{(parent, child): probability}`` for every directed edge.
    """
    if graph.n_nodes != statuses.n_nodes:
        raise DataError(
            f"graph has {graph.n_nodes} nodes but statuses cover {statuses.n_nodes}"
        )
    return {
        (parent, child): attributable_risk(statuses, parent, child)
        for parent, child in graph.edges()
    }
