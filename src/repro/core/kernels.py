"""Bit-packed popcount kernels for the two counting hot paths.

The complexity analysis (paper §IV-D) puts the cost of TENDS in the
``O(β n²)`` pairwise-count stage behind Eq. 24–25 and the ``O(β |F|)``
contingency counting inside the parent search.  Both reduce to counting
set bits in ANDs of binary columns, so this module packs every status
column (and observation-mask column) into uint64 words — 64 processes
per word — and replaces the dense int64 matrix products of
:class:`~repro.simulation.statuses.StatusMatrix` with blocked popcount
kernels.

Layout: a ``(β, n)`` status matrix becomes an ``(n, W)`` uint64 array
with ``W = ceil(β / 64)``; bit ``ℓ`` of word ``w`` of row ``j`` holds the
status of node ``j`` in process ``64·w + ℓ`` (little-endian bit order,
so :func:`unpack_bits` is ``np.unpackbits(..., bitorder="little")``).
Tail bits of the last word — positions ≥ β — are always zero, which is
what lets every count come straight off a popcount without masking.

The backend is selected exactly like the executor backends: an explicit
``TendsConfig.kernel`` value wins, then the ``REPRO_KERNEL`` environment
variable, then ``"numpy"``.  Both backends are **bit-identical** — the
packed kernels produce the same int64 counts, which feed the same float
pipelines — so the knob only moves wall-clock, never results (proved by
``tests/property/test_prop_kernels.py``).

Popcounting uses ``np.bitwise_count`` (numpy ≥ 2.0) when available and
falls back to a 16-bit lookup table otherwise; the choice is made per
call via the module flag ``_HAS_NATIVE_POPCOUNT`` so tests can force the
fallback path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.obs.trace import current_tracer
from repro.simulation.statuses import StatusMatrix

__all__ = [
    "KERNEL_BACKENDS",
    "ENV_KERNEL",
    "MAX_PACK_COLUMNS",
    "WORD_BITS",
    "resolve_kernel",
    "has_native_popcount",
    "popcount_words",
    "pack_bits",
    "unpack_bits",
    "PackedStatuses",
    "packed_joint_counts",
    "packed_pairwise_complete_counts",
    "packed_infection_counts",
    "packed_observed_counts",
    "packed_family_counts",
]

#: Supported kernel backends, in documentation order.
KERNEL_BACKENDS = ("numpy", "packed")

#: Environment fallback consulted when no explicit backend is configured
#: (mirrors ``REPRO_EXECUTOR`` for the execution backends).
ENV_KERNEL = "REPRO_KERNEL"

#: Bits per packed word.
WORD_BITS = 64

#: Hard cap on the number of columns a contingency grouping may pack:
#: pattern codes are built as ``Σ bit_j << j`` in int64, and 62 bits keep
#: every code positive with headroom — the same constant behind
#: ``StatusMatrix.observed_pattern_counts`` and the parent-set cap
#: ``MAX_PARENT_SET_SIZE`` in ``repro.core.search``.
MAX_PACK_COLUMNS = 62

#: Parent-set sizes up to this bound use the pattern-tree family counter
#: (2^k AND-refinements of the base word row); wider sets fall back to
#: per-row code extraction + ``np.unique``, which is O(β) in memory.
_PATTERN_TREE_MAX_PARENTS = 10

#: Word budget per temporary block in the all-pairs kernel (uint64 words,
#: so ~16 MiB of AND scratch per block at the default).
_BLOCK_WORD_BUDGET = 1 << 21


def resolve_kernel(kernel: str | None = None) -> str:
    """Resolve the kernel backend name.

    ``kernel`` wins when given; otherwise the ``REPRO_KERNEL`` environment
    variable, then ``"numpy"``.  Raises
    :class:`~repro.exceptions.ConfigurationError` on unknown names —
    including unknown values smuggled in through the environment.
    """
    if kernel is None:
        kernel = os.environ.get(ENV_KERNEL) or "numpy"
    if kernel not in KERNEL_BACKENDS:
        raise ConfigurationError(
            f"unknown kernel backend: {kernel!r} "
            f"(expected one of {', '.join(KERNEL_BACKENDS)})"
        )
    return kernel


# ----------------------------------------------------------------------
# popcount primitive: native np.bitwise_count, or a 16-bit lookup table
# ----------------------------------------------------------------------

_HAS_NATIVE_POPCOUNT = hasattr(np, "bitwise_count")

# Set-bit counts of every 16-bit value (64 KiB); a uint64 word popcount
# is the sum over its four 16-bit halves.  Built unconditionally so the
# fallback is exercisable (and testable) even on numpy ≥ 2.0.
_POPCOUNT_TABLE = (
    np.unpackbits(
        np.arange(1 << 16, dtype=np.uint16).view(np.uint8).reshape(-1, 2), axis=1
    )
    .sum(axis=1)
    .astype(np.uint8)
)


def has_native_popcount() -> bool:
    """Whether this numpy provides ``np.bitwise_count`` (numpy ≥ 2.0)."""
    return _HAS_NATIVE_POPCOUNT


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-word set-bit counts as an int64 array of the same shape."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if _HAS_NATIVE_POPCOUNT:
        return np.bitwise_count(words).astype(np.int64)
    halves = words.view(np.uint16).reshape(words.shape + (4,))
    return _POPCOUNT_TABLE[halves].sum(axis=-1, dtype=np.int64)


def _popcount_sum(words: np.ndarray) -> np.ndarray:
    """Sum of set bits along the last (word) axis, as int64.

    ``words`` must be C-contiguous uint64 — the AND temporaries and
    packed rows the kernels feed in always are.
    """
    if _HAS_NATIVE_POPCOUNT:
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    return _POPCOUNT_TABLE[words.view(np.uint16)].sum(axis=-1, dtype=np.int64)


# ----------------------------------------------------------------------
# packing
# ----------------------------------------------------------------------

def _n_words(n_bits: int) -> int:
    return (n_bits + WORD_BITS - 1) // WORD_BITS


def pack_bits(matrix: np.ndarray) -> np.ndarray:
    """Pack a ``(n_bits, n_rows)`` {0, 1} matrix into ``(n_rows, W)``
    uint64 words, ``W = ceil(n_bits / 64)``.

    Bit ``ℓ`` of word ``w`` of output row ``j`` is ``matrix[64·w + ℓ, j]``;
    tail bits beyond ``n_bits`` are zero.  The transposed layout puts each
    *column* of the input (one node's statuses across processes)
    contiguously in memory, which is what the pairwise kernels stream over.
    """
    array = np.ascontiguousarray(matrix, dtype=np.uint8)
    if array.ndim != 2:
        raise DataError(f"pack_bits needs a 2-D matrix, got shape {array.shape}")
    n_bits, n_rows = array.shape
    packed = np.packbits(array.T, axis=1, bitorder="little")
    width = 8 * _n_words(n_bits)
    if packed.shape[1] != width:
        pad = np.zeros((n_rows, width - packed.shape[1]), dtype=np.uint8)
        packed = np.concatenate([packed, pad], axis=1)
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(n_rows, W)`` words back to the
    ``(n_bits, n_rows)`` uint8 {0, 1} matrix."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise DataError(f"unpack_bits needs a 2-D word array, got shape {words.shape}")
    if n_bits < 0 or words.shape[1] != _n_words(n_bits):
        raise DataError(
            f"{words.shape[1]} words cannot hold {n_bits} bits "
            f"(expected {_n_words(max(n_bits, 0))})"
        )
    if n_bits == 0:
        return np.zeros((0, words.shape[0]), dtype=np.uint8)
    bits = np.unpackbits(
        words.view(np.uint8), axis=1, bitorder="little", count=n_bits
    )
    return np.ascontiguousarray(bits.T)


def _full_words(n_bits: int) -> np.ndarray:
    """One packed row with every bit below ``n_bits`` set (tail zeroed) —
    the \"all processes\" base mask of the unmasked family counter."""
    words = np.full(_n_words(n_bits), np.uint64(0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
    tail = n_bits % WORD_BITS
    if words.size and tail:
        words[-1] = np.uint64((1 << tail) - 1)
    return words


# ----------------------------------------------------------------------
# packed observations
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PackedStatuses:
    """Bit-packed form of one :class:`~repro.simulation.statuses.StatusMatrix`.

    Attributes
    ----------
    ones:
        ``(n, W)`` uint64 — the raw status bits (placeholder values under
        an observation mask travel as stored, exactly like
        ``StatusMatrix.values``; the kernels AND with :attr:`mask` before
        any masked count, mirroring the numpy estimators).
    mask:
        ``(n, W)`` uint64 observation bits (1 = observed), or ``None``
        when every entry was observed.
    n_bits:
        ``β`` — the number of packed processes; bits at positions ≥ β are
        zero in every row of both arrays.
    """

    ones: np.ndarray
    mask: np.ndarray | None
    n_bits: int

    def __post_init__(self) -> None:
        if self.ones.ndim != 2 or self.ones.dtype != np.uint64:
            raise DataError(
                f"packed statuses must be 2-D uint64, got "
                f"{self.ones.dtype} with shape {self.ones.shape}"
            )
        if self.n_bits < 0 or self.ones.shape[1] != _n_words(self.n_bits):
            raise DataError(
                f"{self.ones.shape[1]} words per row cannot hold "
                f"{self.n_bits} packed bits"
            )
        if self.mask is not None and (
            self.mask.shape != self.ones.shape or self.mask.dtype != np.uint64
        ):
            raise DataError(
                f"packed mask shape {self.mask.shape} does not match "
                f"packed statuses shape {self.ones.shape}"
            )
        self.ones.setflags(write=False)
        if self.mask is not None:
            self.mask.setflags(write=False)

    @classmethod
    def from_statuses(cls, statuses: StatusMatrix) -> "PackedStatuses":
        """Pack a status matrix (and its observation mask, if any)."""
        if not isinstance(statuses, StatusMatrix):
            statuses = StatusMatrix(statuses)
        with current_tracer().span(
            "kernel.pack", n_nodes=statuses.n_nodes, beta=statuses.beta
        ):
            ones = pack_bits(statuses.values)
            mask = (
                None
                if statuses.mask is None
                else pack_bits(statuses.mask.astype(np.uint8))
            )
        return cls(ones=ones, mask=mask, n_bits=statuses.beta)

    @property
    def n_nodes(self) -> int:
        return int(self.ones.shape[0])

    @property
    def n_words(self) -> int:
        return int(self.ones.shape[1])

    @property
    def has_missing(self) -> bool:
        return self.mask is not None

    def unpack(self) -> StatusMatrix:
        """Exact inverse of :meth:`from_statuses`."""
        data = unpack_bits(self.ones, self.n_bits)
        if self.mask is None:
            return StatusMatrix(data)
        return StatusMatrix(data, unpack_bits(self.mask, self.n_bits).astype(np.bool_))

    # ------------------------------------------------------------------
    # NPZ round-trip
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """Array mapping for ``np.savez`` (see :meth:`from_arrays`)."""
        arrays = {
            "kernel_ones": self.ones,
            "kernel_n_bits": np.array([self.n_bits], dtype=np.int64),
        }
        if self.mask is not None:
            arrays["kernel_mask"] = self.mask
        return arrays

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray]) -> "PackedStatuses":
        """Rebuild from a :meth:`to_arrays` mapping (or an ``np.load``
        archive of one); consistency is re-validated, so a truncated or
        mismatched snapshot raises :class:`~repro.exceptions.DataError`
        instead of miscounting."""
        try:
            ones = np.ascontiguousarray(arrays["kernel_ones"], dtype=np.uint64)
            n_bits = int(np.asarray(arrays["kernel_n_bits"]).reshape(-1)[0])
        except KeyError as error:
            raise DataError(f"packed-status arrays missing entry: {error}") from error
        mask = None
        if "kernel_mask" in arrays:
            mask = np.ascontiguousarray(arrays["kernel_mask"], dtype=np.uint64)
        return cls(ones=ones, mask=mask, n_bits=n_bits)


# ----------------------------------------------------------------------
# all-pairs counting
# ----------------------------------------------------------------------

def _pairwise_popcount(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``out[i, j] = popcount(a[i] & b[j])`` for packed word matrices.

    Blocked over rows of ``a`` so the ``(block, n_b, W)`` AND temporary
    stays within :data:`_BLOCK_WORD_BUDGET` words regardless of ``n``.
    """
    n_a, n_words = a.shape
    n_b = b.shape[0]
    out = np.empty((n_a, n_b), dtype=np.int64)
    if n_words == 0 or n_b == 0:
        out[:] = 0
        return out
    block = max(1, _BLOCK_WORD_BUDGET // (n_b * n_words))
    for start in range(0, n_a, block):
        chunk = a[start : start + block]
        out[start : start + block] = _popcount_sum(
            chunk[:, None, :] & b[None, :, :]
        )
    return out


def packed_infection_counts(packed: PackedStatuses) -> np.ndarray:
    """Per-node infected totals — ``StatusMatrix.infection_counts``."""
    return _popcount_sum(packed.ones)


def packed_observed_counts(packed: PackedStatuses) -> np.ndarray:
    """Per-node observed totals — ``StatusMatrix.observed_counts``."""
    if packed.mask is None:
        return np.full(packed.n_nodes, packed.n_bits, dtype=np.int64)
    return _popcount_sum(packed.mask)


def packed_joint_counts(packed: PackedStatuses) -> dict[str, np.ndarray]:
    """All four pairwise joint counts — ``StatusMatrix.joint_counts``,
    bit for bit.

    Only the ``(i=1, j=1)`` matrix needs an all-pairs popcount pass; the
    other three follow exactly from the per-node marginals, which is what
    turns the dense ``O(β n²)`` matmuls into ``O(β n² / 64)`` word ops.
    """
    with current_tracer().span(
        "kernel.pair_counts",
        kind="joint",
        n_nodes=packed.n_nodes,
        words=packed.n_words,
    ):
        n11 = _pairwise_popcount(packed.ones, packed.ones)
        counts = packed_infection_counts(packed)
    n10 = counts[:, None] - n11
    n01 = counts[None, :] - n11
    n00 = packed.n_bits - n11 - n10 - n01
    return {"11": n11, "10": n10, "01": n01, "00": n00}


def packed_pairwise_complete_counts(
    packed: PackedStatuses,
) -> dict[str, np.ndarray]:
    """Joint counts over pairwise-complete processes —
    ``StatusMatrix.pairwise_complete_counts``, bit for bit.

    Three popcount passes replace the four masked matmuls: observed ones
    against observed ones (``n11``), observed ones against the mask (the
    ``x_i = 1 ∧ obs_i ∧ obs_j`` marginal, whose transpose is the column
    marginal), and mask against mask (``β_ij``); the remaining cells are
    integer-exact differences.
    """
    if packed.mask is None:
        counts = packed_joint_counts(packed)
        counts["obs"] = np.full(
            (packed.n_nodes, packed.n_nodes), packed.n_bits, dtype=np.int64
        )
        return counts
    with current_tracer().span(
        "kernel.pair_counts",
        kind="pairwise-complete",
        n_nodes=packed.n_nodes,
        words=packed.n_words,
    ):
        observed_ones = packed.ones & packed.mask
        n11 = _pairwise_popcount(observed_ones, observed_ones)
        ones_mask = _pairwise_popcount(observed_ones, packed.mask)
        obs = _pairwise_popcount(packed.mask, packed.mask)
    n10 = ones_mask - n11
    n01 = np.ascontiguousarray(ones_mask.T) - n11
    n00 = obs - n11 - n10 - n01
    return {"11": n11, "10": n10, "01": n01, "00": n00, "obs": obs}


# ----------------------------------------------------------------------
# family contingency counting
# ----------------------------------------------------------------------

def packed_family_counts(
    packed: PackedStatuses, child: int, parents: Sequence[int]
) -> tuple[np.ndarray, np.ndarray, int]:
    """``(totals, infected, beta)`` of one (child, parent-set) family.

    Identical — values, dtype, and **ordering** — to the contingency core
    of :func:`repro.core.scoring.family_counts`: totals are the observed
    patterns' counts in ascending pattern-code order (first parent =
    least-significant bit), zero-count patterns dropped, and a family
    with no (complete) rows degrades to ``([0], [0])``.

    Small parent sets use a pattern tree — the family-complete base row
    is AND-refined into ``2^|F|`` pattern word-rows, in ascending code
    order, and popcounted.  Wide sets (beyond
    :data:`_PATTERN_TREE_MAX_PARENTS`) extract per-row codes and group
    them with ``np.unique`` exactly like the numpy path, which keeps the
    memory O(β) all the way to the :data:`MAX_PACK_COLUMNS` cap.

    Kept span-free on purpose: the parent search calls this once per
    candidate combination, so tracing here would dominate traced runs.
    """
    parent_list = [int(p) for p in parents]
    if len(parent_list) > MAX_PACK_COLUMNS:
        raise DataError(f"too many columns for bit-packing: {len(parent_list)}")
    n_bits = packed.n_bits
    if packed.mask is None:
        base = _full_words(n_bits)
        beta = n_bits
    else:
        base = packed.mask[child].copy()
        for parent in parent_list:
            base &= packed.mask[parent]
        beta = int(_popcount_sum(base))
    child_words = packed.ones[child]
    if not parent_list:
        infected = int(_popcount_sum(child_words & base))
        return (
            np.array([beta], dtype=np.int64),
            np.array([infected], dtype=np.int64),
            beta,
        )
    if beta == 0:
        return np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64), 0
    if len(parent_list) <= _PATTERN_TREE_MAX_PARENTS:
        # Pattern tree: refine the base row by one parent column per
        # level, keeping the parent-0-is-LSB ascending code order —
        # zeros block first, ones block second, previous order within.
        words = base[None, :]
        for parent in parent_list:
            column = packed.ones[parent]
            words = np.concatenate([words & ~column, words & column], axis=0)
        totals_full = _popcount_sum(words)
        observed = totals_full > 0
        totals = totals_full[observed]
        infected = _popcount_sum(words[observed] & child_words)
        return totals, infected, beta
    # Wide parent sets: per-row codes + np.unique, the numpy grouping.
    row_mask = unpack_bits(base[None, :], n_bits).reshape(-1).astype(np.bool_)
    columns = np.asarray(parent_list, dtype=np.int64)
    parent_bits = unpack_bits(packed.ones[columns], n_bits)
    weights = 1 << np.arange(len(parent_list), dtype=np.int64)
    codes = parent_bits[row_mask].astype(np.int64) @ weights
    _, inverse, totals = np.unique(codes, return_inverse=True, return_counts=True)
    child_bits = (
        unpack_bits(child_words[None, :], n_bits).reshape(-1)[row_mask]
    ).astype(np.float64)
    infected = np.bincount(
        inverse.reshape(-1), weights=child_bits, minlength=totals.shape[0]
    ).astype(np.int64)
    return totals.astype(np.int64), infected, beta
