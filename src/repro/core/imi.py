"""Infection mutual information (paper §IV-B, Eq. 24–25).

For a node pair ``(v_i, v_j)`` with binary infection variables
``X_i, X_j``, the *pointwise* MI contribution of the outcome
``(X_i = a, X_j = b)`` is

    MI(X_i = a, X_j = b) = P̂(a, b) · log2( P̂(a, b) / (P̂(a) · P̂(b)) )

which is positive when the outcome co-occurs more often than independence
predicts and negative otherwise.  Standard MI sums all four contributions
and therefore cannot distinguish positive from negative infection
correlation.  The paper's *infection MI* keeps the sign information:

    IMI(X_i, X_j) = MI(1,1) + MI(0,0) − |MI(1,0)| − |MI(0,1)|

so that pairs whose infections co-occur (both-infected and both-uninfected
outcomes over-represented) score high, while anti-correlated pairs go
negative and independent pairs sit near zero.

All functions here are fully vectorised over the ``n × n`` pair matrix;
the cost is two ``(n × β) @ (β × n)`` products — the ``O(β n²)`` stage of
the complexity analysis (§IV-D).

>>> from repro.simulation.statuses import StatusMatrix
>>> coupled = StatusMatrix([[1, 1], [0, 0]] * 5)     # always agree
>>> opposed = StatusMatrix([[1, 0], [0, 1]] * 5)     # always disagree
>>> float(infection_mi_matrix(coupled)[0, 1])
1.0
>>> float(infection_mi_matrix(opposed)[0, 1])
-1.0
>>> float(traditional_mi_matrix(opposed)[0, 1])      # MI cannot tell them apart
1.0
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import (
    PackedStatuses,
    packed_infection_counts,
    packed_joint_counts,
    packed_pairwise_complete_counts,
    resolve_kernel,
)
from repro.exceptions import DataError
from repro.simulation.statuses import StatusMatrix

__all__ = [
    "pointwise_mi_terms",
    "mi_terms_from_joint_counts",
    "mi_terms_from_pairwise_counts",
    "imi_from_terms",
    "mi_from_terms",
    "infection_mi_matrix",
    "traditional_mi_matrix",
]


def pointwise_mi_terms(
    statuses: StatusMatrix, *, kernel: str | None = None
) -> dict[str, np.ndarray]:
    """The four pointwise MI matrices, keyed ``"11"``, ``"10"``, ``"01"``, ``"00"``.

    ``result[ab][i, j]`` is ``MI(X_i = a, X_j = b)`` estimated from the
    observed statuses.  Outcomes that never occur contribute 0 (the usual
    ``0 · log 0 = 0`` convention), as do outcomes whose marginals are
    degenerate.

    When the matrix carries an observation mask with missing entries,
    every pair ``(i, j)`` is estimated over its *pairwise-complete*
    processes only — the rows where both statuses were observed — with
    per-pair effective sample size ``β_ij`` and per-pair marginals.  This
    keeps the estimate unbiased under missing-at-random corruption
    instead of counting unobserved entries as "uninfected".  Pairs with
    ``β_ij = 0`` contribute 0.  For fully-observed matrices the code path
    (and hence every floating-point operation) is unchanged.

    Both estimates are pure functions of additive sufficient statistics;
    :func:`mi_terms_from_joint_counts` and
    :func:`mi_terms_from_pairwise_counts` expose the count-based cores so
    cached counts (:class:`repro.core.stats.SufficientStats`) run the
    exact same floating-point pipeline.

    ``kernel`` selects the counting backend (see
    :func:`repro.core.kernels.resolve_kernel`): ``"packed"`` computes the
    identical integer counts with bit-packed popcount kernels before
    entering the same float pipeline, so the terms stay bit-identical.
    """
    if statuses.beta == 0:
        raise DataError("cannot estimate MI from zero diffusion processes")
    if resolve_kernel(kernel) == "packed":
        packed = PackedStatuses.from_statuses(statuses)
        if statuses.has_missing:
            return mi_terms_from_pairwise_counts(
                packed_pairwise_complete_counts(packed)
            )
        return mi_terms_from_joint_counts(
            packed_joint_counts(packed),
            packed_infection_counts(packed),
            statuses.beta,
        )
    if statuses.has_missing:
        return mi_terms_from_pairwise_counts(statuses.pairwise_complete_counts())
    return mi_terms_from_joint_counts(
        statuses.joint_counts(), statuses.infection_counts(), statuses.beta
    )


def mi_terms_from_joint_counts(
    joints: dict[str, np.ndarray],
    infection_counts: np.ndarray,
    beta: int,
) -> dict[str, np.ndarray]:
    """Pointwise MI terms from fully-observed joint counts.

    ``joints`` holds the four ``(n, n)`` pairwise count matrices (keys
    ``"11"``/``"10"``/``"01"``/``"00"``), ``infection_counts`` the per-node
    infected totals, and ``beta`` the number of processes — exactly the
    additive statistics :meth:`StatusMatrix.joint_counts` and
    :meth:`StatusMatrix.infection_counts` produce, whether computed in one
    pass or accumulated batch by batch (integer addition is exact, so both
    routes feed bit-identical counts into the identical float pipeline).
    """
    if beta == 0:
        raise DataError("cannot estimate MI from zero diffusion processes")
    p1 = infection_counts / beta
    p0 = 1.0 - p1
    marginal = {"1": p1, "0": p0}

    terms: dict[str, np.ndarray] = {}
    for key in ("11", "10", "01", "00"):
        a, b = key[0], key[1]
        p_joint = joints[key] / float(beta)
        denominator = np.outer(marginal[a], marginal[b])
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(denominator > 0, p_joint / denominator, 1.0)
            logs = np.where((p_joint > 0) & (ratio > 0), np.log2(ratio), 0.0)
        terms[key] = p_joint * logs
    return terms


def mi_terms_from_pairwise_counts(
    counts: dict[str, np.ndarray],
) -> dict[str, np.ndarray]:
    """Pointwise MI terms over pairwise-complete counts (masked data).

    ``counts`` is the five-matrix dict of
    :meth:`StatusMatrix.pairwise_complete_counts` (the four joint counts
    plus the per-pair effective sample size ``"obs"``).  Identical in
    structure to the clean path, except every quantity is an ``(n, n)``
    matrix: joint probabilities divide by the per-pair ``β_ij`` and the
    marginals are recomputed per pair from the same complete rows
    (``P̂^{(ij)}(X_i = 1) = (n11 + n10) / β_ij``), so joint and marginal
    estimates always refer to the same sample.
    """
    beta_ij = counts["obs"].astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        p1_row = np.where(beta_ij > 0, (counts["11"] + counts["10"]) / beta_ij, 0.0)
        p1_col = np.where(beta_ij > 0, (counts["11"] + counts["01"]) / beta_ij, 0.0)
    marginal_row = {"1": p1_row, "0": np.where(beta_ij > 0, 1.0 - p1_row, 0.0)}
    marginal_col = {"1": p1_col, "0": np.where(beta_ij > 0, 1.0 - p1_col, 0.0)}

    terms: dict[str, np.ndarray] = {}
    for key in ("11", "10", "01", "00"):
        a, b = key[0], key[1]
        with np.errstate(divide="ignore", invalid="ignore"):
            p_joint = np.where(beta_ij > 0, counts[key] / beta_ij, 0.0)
        denominator = marginal_row[a] * marginal_col[b]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(denominator > 0, p_joint / denominator, 1.0)
            logs = np.where((p_joint > 0) & (ratio > 0), np.log2(ratio), 0.0)
        terms[key] = p_joint * logs
    return terms


def imi_from_terms(terms: dict[str, np.ndarray]) -> np.ndarray:
    """Combine pointwise terms into the infection-MI matrix (Eq. 25);
    diagonal zeroed."""
    imi = (
        terms["11"]
        + terms["00"]
        - np.abs(terms["10"])
        - np.abs(terms["01"])
    )
    np.fill_diagonal(imi, 0.0)
    return imi


def mi_from_terms(terms: dict[str, np.ndarray]) -> np.ndarray:
    """Combine pointwise terms into the traditional MI matrix; diagonal
    zeroed, tiny float-noise negatives clamped to 0."""
    mi = terms["11"] + terms["00"] + terms["10"] + terms["01"]
    np.fill_diagonal(mi, 0.0)
    return np.maximum(mi, 0.0)


def infection_mi_matrix(
    statuses: StatusMatrix, *, kernel: str | None = None
) -> np.ndarray:
    """The ``n × n`` infection-MI matrix (Eq. 25); diagonal zeroed.

    ``IMI[i, j]`` measures the positive infection correlation between
    ``v_i`` and ``v_j``.  The measure is symmetric in its arguments, so the
    matrix is symmetric; the diagonal (a node with itself) carries no
    information about edges and is set to 0.  ``kernel`` selects the
    counting backend; the matrix is bit-identical under either.
    """
    return imi_from_terms(pointwise_mi_terms(statuses, kernel=kernel))


def traditional_mi_matrix(
    statuses: StatusMatrix, *, kernel: str | None = None
) -> np.ndarray:
    """Standard mutual information per pair (sum of all four pointwise
    terms); diagonal zeroed.  Used by the paper's Fig. 10–11 ablation
    ("TENDS with traditional MI")."""
    return mi_from_terms(pointwise_mi_terms(statuses, kernel=kernel))
