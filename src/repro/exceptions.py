"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class at API
boundaries.  Sub-classes distinguish configuration mistakes (bad
parameters), data problems (malformed observations), and convergence
failures of iterative solvers.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DataError",
    "GraphError",
    "SimulationError",
    "InferenceError",
    "ConvergenceError",
    "ExecutionError",
    "WorkerCrashError",
    "MethodTimeoutError",
    "CheckpointError",
    "DataQualityWarning",
    "JournalCorruptionWarning",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or inconsistent combination of parameters.

    Also a :class:`ValueError` so that call sites written against the
    standard library idiom (``except ValueError``) keep working.
    """


class DataError(ReproError, ValueError):
    """Observed data (statuses, cascades, seed sets) is malformed."""


class GraphError(ReproError, ValueError):
    """A graph operation received an invalid node, edge, or structure."""


class SimulationError(ReproError, RuntimeError):
    """A diffusion simulation could not be carried out as requested."""


class InferenceError(ReproError, RuntimeError):
    """A network inference algorithm failed to produce a result."""


class ConvergenceError(InferenceError):
    """An iterative solver exhausted its iteration budget without
    meeting its convergence tolerance.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Last observed convergence residual, if the solver tracks one.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class ExecutionError(ReproError, RuntimeError):
    """A parallel execution backend could not complete the requested work.

    Base class for the fault-tolerance layer: raised only after the
    executor's recovery machinery (retries, backend fallback) is
    exhausted, so catching it means the work genuinely could not be done.
    """


class WorkerCrashError(ExecutionError):
    """A worker process died (killed, segfaulted, or OOM-reaped) and the
    crash persisted through every retry and fallback backend.

    Attributes
    ----------
    attempts:
        Number of execution attempts made before giving up.
    """

    def __init__(self, message: str, *, attempts: int | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts


class MethodTimeoutError(ExecutionError, TimeoutError):
    """A unit of work — an executor chunk or a harness method run —
    exceeded its wall-clock budget.

    Also a :class:`TimeoutError` so generic timeout handling
    (``except TimeoutError``) keeps working.

    Attributes
    ----------
    timeout:
        The budget, in seconds, that was exceeded.
    """

    def __init__(self, message: str, *, timeout: float | None = None) -> None:
        super().__init__(message)
        self.timeout = timeout


class CheckpointError(ReproError, RuntimeError):
    """A sweep checkpoint journal is unreadable or internally inconsistent
    beyond the tolerated partial-write truncation of its final line."""


class DataQualityWarning(UserWarning):
    """Observed data is usable but degenerate (all-zero / all-one cascades,
    never- or always-infected nodes); results may carry little signal.

    Emitted by :func:`repro.simulation.statuses.validate_observations` and
    by :meth:`repro.core.tends.Tends.fit` when auditing is enabled.
    """


class JournalCorruptionWarning(UserWarning):
    """An append-only journal carried damaged records that were detected
    (per-record CRC32 or a parse failure before the final line) and
    skipped; the surviving records are intact and the load proceeded.

    Emitted by :func:`repro.evaluation.checkpoint.load_checkpoint` and the
    :mod:`repro.serve` ingest-journal replay.
    """


class ServiceError(ReproError, RuntimeError):
    """The streaming ingest service (:mod:`repro.serve`) was asked to do
    something its current state cannot honour — submitting to a stopped
    service, a full bounded queue under the ``reject`` policy, or opening
    a service directory whose journal and snapshots disagree."""
