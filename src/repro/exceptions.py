"""Exception hierarchy for the :mod:`repro` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class at API
boundaries.  Sub-classes distinguish configuration mistakes (bad
parameters), data problems (malformed observations), and convergence
failures of iterative solvers.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DataError",
    "GraphError",
    "SimulationError",
    "InferenceError",
    "ConvergenceError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or inconsistent combination of parameters.

    Also a :class:`ValueError` so that call sites written against the
    standard library idiom (``except ValueError``) keep working.
    """


class DataError(ReproError, ValueError):
    """Observed data (statuses, cascades, seed sets) is malformed."""


class GraphError(ReproError, ValueError):
    """A graph operation received an invalid node, edge, or structure."""


class SimulationError(ReproError, RuntimeError):
    """A diffusion simulation could not be carried out as requested."""


class InferenceError(ReproError, RuntimeError):
    """A network inference algorithm failed to produce a result."""


class ConvergenceError(InferenceError):
    """An iterative solver exhausted its iteration budget without
    meeting its convergence tolerance.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Last observed convergence residual, if the solver tracks one.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
