"""Command-line interface: ``python -m repro <command>``.

The CLI chains the library's stages through files, so each step can be
run, inspected, and re-run independently:

    python -m repro generate lfr --n 200 --avg-degree 4 -o truth.txt
    python -m repro simulate truth.txt --beta 150 -o statuses.csv
    python -m repro infer statuses.csv -o inferred.txt --model-out model.npz
    python -m repro update --model-in model.npz --batch batch.csv \\
        --model-out model.npz -o inferred.txt
    python -m repro evaluate truth.txt inferred.txt
    python -m repro estimate-probabilities inferred.txt statuses.csv
    python -m repro analyze truth.txt inferred.txt
    python -m repro influence inferred.txt --k 5 --statuses statuses.csv
    python -m repro figure fig1 --scale quick

Graphs travel as edge lists (``repro.graphs.io``), statuses as CSV or NPZ
(``repro.simulation.io``); formats are chosen by file extension.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path

from repro.analysis.compare import compare_topologies
from repro.analysis.influence import greedy_influence_maximization
from repro.core.edge_probabilities import estimate_edge_probabilities
from repro.core.tends import Tends
from repro.evaluation.figures import figure_spec, list_figures
from repro.evaluation.harness import run_experiment
from repro.evaluation.metrics import evaluate_edges
from repro.evaluation.reporting import (
    format_result_table,
    format_series,
    render_markdown_report,
)
from repro.exceptions import ReproError
from repro.graphs import io as graph_io
from repro.graphs.digraph import DiffusionGraph
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.graphs.generators.random_graphs import (
    barabasi_albert_digraph,
    erdos_renyi_digraph,
    random_tree_digraph,
)
from repro.graphs.generators.realworld import dunf, netsci
from repro.graphs.metrics import summarize_graph
from repro.simulation import io as sim_io
from repro.simulation.engine import DiffusionSimulator
from repro.simulation.statuses import StatusMatrix
from repro.utils.logging import enable_console_logging

__all__ = ["main", "build_parser"]

#: ``--log-level`` choices → :mod:`logging` levels.
_LOG_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    """Stage-3 execution backend knobs shared by ``infer`` and ``figure``."""
    parser.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default=None,
        help="parent-search execution backend (default: REPRO_EXECUTOR or serial)",
    )
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        help="parallel workers; -1 = all CPUs (default: REPRO_N_JOBS or 1)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="executions per parallel chunk before its failure is permanent "
        "(default: REPRO_MAX_ATTEMPTS or 3)",
    )
    parser.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        help="per-chunk wall-clock budget in seconds for the pool backends "
        "(default: REPRO_CHUNK_TIMEOUT or unlimited)",
    )
    parser.add_argument(
        "--kernel",
        choices=("numpy", "packed"),
        default=None,
        help="pairwise-count/scoring kernel backend; results are "
        "bit-identical, packed is faster at scale "
        "(default: REPRO_KERNEL or numpy)",
    )


def _add_tiling_arguments(parser: argparse.ArgumentParser) -> None:
    """Tiled sufficient-statistics knobs shared by ``infer``/``update``/
    ``serve`` (see docs/SCALING.md).  Results are bit-identical to the
    dense path; tiling only bounds memory."""
    parser.add_argument(
        "--tile-size",
        type=int,
        default=None,
        help="block the pair-count/IMI matrices into tiles of this many "
        "nodes per side and spill them to disk, so memory stays "
        "~O(n*tile + tile^2) instead of O(n^2); results are bit-identical "
        "(default: dense)",
    )
    parser.add_argument(
        "--spill-dir",
        type=Path,
        default=None,
        help="directory for spilled tiles; persists across runs, so an "
        "interrupted fit resumes from its completed tiles "
        "(default: a temporary directory)",
    )
    parser.add_argument(
        "--max-resident-tiles",
        type=int,
        default=None,
        help="LRU cap on simultaneously memory-mapped tiles (default 16)",
    )


def _tiling_overrides(args: argparse.Namespace) -> dict:
    """The non-None tiling fields of ``args`` as TendsConfig overrides."""
    overrides = {}
    if args.tile_size is not None:
        overrides["tile_size"] = args.tile_size
    if args.spill_dir is not None:
        overrides["spill_dir"] = str(args.spill_dir)
    if args.max_resident_tiles is not None:
        overrides["max_resident_tiles"] = args.max_resident_tiles
    return overrides


def _read_statuses(path: Path) -> StatusMatrix:
    if path.suffix == ".npz":
        return sim_io.read_statuses_npz(path)
    return sim_io.read_statuses_csv(path)


def _write_statuses(statuses: StatusMatrix, path: Path) -> None:
    if path.suffix == ".npz":
        sim_io.write_statuses_npz(statuses, path)
    else:
        sim_io.write_statuses_csv(statuses, path)


def _read_graph(path: Path) -> DiffusionGraph:
    if path.suffix == ".json":
        return graph_io.read_json(path)
    return graph_io.read_edge_list(path)


def _write_graph(graph: DiffusionGraph, path: Path) -> None:
    if path.suffix == ".json":
        graph_io.write_json(graph, path)
    else:
        graph_io.write_edge_list(graph, path)


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Observability outputs shared by ``infer`` (see docs/OBSERVABILITY.md)."""
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record spans/metrics during the fit even without an output "
        "file (inference results are bit-identical either way)",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the span trace here: .jsonl = one span per line, "
        "anything else = Chrome trace_event JSON (chrome://tracing, "
        "ui.perfetto.dev); implies tracing",
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the metrics snapshot as a Prometheus-style text dump; "
        "implies tracing",
    )
    parser.add_argument(
        "--manifest-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write a run manifest (config, seeds, environment, git "
        "revision, metrics, stage timings) as JSON; implies tracing — "
        "feed it to `repro perf-check`",
    )
    parser.add_argument(
        "--memory",
        action="store_true",
        help="attribute memory per pipeline stage (tracemalloc + peak "
        "RSS) on the telemetry and in the run manifest; results are "
        "bit-identical either way",
    )
    parser.add_argument(
        "--trend-out",
        type=Path,
        default=None,
        metavar="LEDGER",
        help="append this run's timing/memory profile to a perf trend "
        "ledger (JSONL; check it with `repro perf-check --trend`); "
        "implies tracing",
    )


def _write_fit_observability(
    args: argparse.Namespace, estimator: Tends, result
) -> None:
    """Emit ``repro infer`` trace / metrics / manifest outputs."""
    telemetry = result.telemetry
    if telemetry is None:
        return
    if args.trace_out is not None:
        from repro.obs import write_chrome_trace, write_spans_jsonl

        if args.trace_out.suffix == ".jsonl":
            write_spans_jsonl(telemetry.spans, args.trace_out)
        else:
            write_chrome_trace(
                telemetry.spans,
                args.trace_out,
                epoch_offset=telemetry.epoch_offset,
            )
        print(f"trace ({len(telemetry.spans)} spans) written to {args.trace_out}")
    if args.metrics_out is not None:
        from repro.obs import write_prometheus

        write_prometheus(telemetry.metrics, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    if args.manifest_out is not None or args.trend_out is not None:
        from repro.obs import append_trend, manifest_for_fit, write_manifest

        manifest = manifest_for_fit(
            result,
            config=estimator.config,
            seeds={
                "bootstrap_seed": args.bootstrap_seed,
                "corruption_seed": args.corruption_seed,
            },
            extra={"statuses": str(args.statuses), "output": str(args.output)},
        )
        if args.manifest_out is not None:
            write_manifest(manifest, args.manifest_out)
            print(f"run manifest written to {args.manifest_out}")
        if args.trend_out is not None:
            append_trend(args.trend_out, manifest, label="infer")
            print(f"trend ledger entry appended to {args.trend_out}")


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------

def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "lfr":
        graph = lfr_benchmark_graph(
            LFRParams(
                n=args.n,
                avg_degree=args.avg_degree,
                tau=args.tau,
                orientation=args.orientation,
            ),
            seed=args.seed,
        )
    elif args.kind == "er":
        graph = erdos_renyi_digraph(args.n, args.density, seed=args.seed)
    elif args.kind == "ba":
        graph = barabasi_albert_digraph(args.n, args.attach, seed=args.seed)
    elif args.kind == "tree":
        graph = random_tree_digraph(args.n, seed=args.seed)
    elif args.kind == "netsci":
        graph = netsci(args.seed)
    else:  # dunf — choices are closed by argparse
        graph = dunf(args.seed)
    _write_graph(graph, args.output)
    summary = summarize_graph(graph)
    print(f"wrote {args.output}: {summary.as_row()}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    graph = _read_graph(args.graph)
    simulator = DiffusionSimulator(
        graph, mu=args.mu, alpha=args.alpha, seed=args.seed
    )
    result = simulator.run(beta=args.beta)
    _write_statuses(result.statuses, args.output)
    print(
        f"simulated {args.beta} processes on {graph.n_nodes} nodes; "
        f"infection fraction {result.infection_fraction():.3f}; "
        f"wrote {args.output}"
    )
    if args.cascades is not None:
        sim_io.write_cascades_jsonl(result.cascades, args.cascades)
        print(f"wrote cascades to {args.cascades}")
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    statuses = _read_statuses(args.statuses)
    # Optional observation corruption before inference (robustness
    # stress-testing from the command line; deterministic per seed).
    if args.flip_rate is not None or args.missing_rate is not None:
        from repro.robustness import apply_corruptions

        steps = []
        if args.flip_rate is not None:
            steps.append(("flip", args.flip_rate))
        if args.missing_rate is not None:
            steps.append(("missing", args.missing_rate))
        records = apply_corruptions(statuses, steps, seed=args.corruption_seed)
        for record in records:
            print(
                f"corrupted: kind={record.kind} rate={record.rate:g} "
                f"realised={record.realised_fraction:.3f}"
            )
        statuses = records[-1].statuses
    # Any observability output implies a traced fit (tracing never
    # changes the inference result, only records it).
    want_telemetry = args.trace or any(
        value is not None
        for value in (
            args.trace_out, args.metrics_out, args.manifest_out, args.trend_out
        )
    )
    estimator = Tends(
        mi_kind=args.mi_kind,
        threshold="stable" if args.stable_threshold else args.threshold,
        threshold_scale=args.threshold_scale,
        search_strategy=args.search_strategy,
        max_combination_size=args.max_combination_size,
        executor=args.executor,
        n_jobs=args.n_jobs,
        chunk_size=args.chunk_size,
        max_attempts=args.max_attempts,
        chunk_timeout=args.chunk_timeout,
        kernel=args.kernel,
        audit=args.audit,
        missing=args.missing,
        bootstrap_samples=args.bootstrap,
        bootstrap_seed=args.bootstrap_seed,
        trace=want_telemetry,
        memory=args.memory,
        **_tiling_overrides(args),
    )
    result = estimator.fit(statuses)
    _write_graph(result.graph, args.output)
    if args.model_out is not None:
        if estimator.model is None:
            print(
                "warning: bootstrap-backed fits have no incremental model; "
                f"nothing written to {args.model_out}",
                file=sys.stderr,
            )
        else:
            estimator.model.save(args.model_out)
            print(f"incremental model written to {args.model_out}")
    _write_fit_observability(args, estimator, result)
    if result.edge_confidence:
        confidences = sorted(result.edge_confidence.values())
        print(
            f"edge confidence over {result.imi_bootstrap.n_samples} bootstrap "
            f"resamples: min={confidences[0]:.2f} "
            f"median={confidences[len(confidences) // 2]:.2f} "
            f"max={confidences[-1]:.2f}"
        )
    total = sum(
        seconds
        for stage, seconds in result.stage_seconds.items()
        if "/" not in stage  # per-worker entries overlap the stage totals
    )
    print(
        f"TENDS: tau = {result.threshold:.6f}, inferred {result.n_edges} edges "
        f"from {statuses.beta} processes in {total:.2f}s; wrote {args.output}"
    )
    if args.verbose_timing:
        for stage, seconds in result.stage_seconds.items():
            print(f"  {stage}: {seconds:.3f}s")
        for stats in result.worker_stats:
            print(
                f"  worker {stats.worker}: {stats.n_items} nodes in "
                f"{stats.n_chunks} chunks"
            )
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    """``repro update``: incremental ``partial_fit`` on a saved model."""
    from repro.core.tends import TendsModel

    model = TendsModel.load(args.model_in)
    overrides = {
        name: value
        for name, value in (
            ("executor", args.executor),
            ("n_jobs", args.n_jobs),
            ("chunk_size", args.chunk_size),
            ("max_attempts", args.max_attempts),
            ("chunk_timeout", args.chunk_timeout),
            ("kernel", args.kernel),
        )
        if value is not None
    }
    overrides.update(_tiling_overrides(args))
    estimator = Tends.from_model(model, **overrides)
    batch = _read_statuses(args.batch)
    result = estimator.partial_fit(batch)
    estimator.model.save(args.model_out)
    info = result.update
    print(
        f"absorbed {info.batch_beta} processes "
        f"(history now {estimator.model.beta}): tau = {result.threshold:.6f}, "
        f"{result.n_edges} edges; re-searched {info.n_dirty} dirty node(s), "
        f"warm-started {info.n_clean}; model written to {args.model_out}"
    )
    if args.output is not None:
        _write_graph(result.graph, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the crash-safe streaming ingest service.

    Batches arrive either as status files dropped into ``--spool``
    (absorbed in name order, then moved to ``<spool>/done/``) or over
    the optional ``--http`` frontend; both paths journal durably before
    acknowledging.  SIGTERM/SIGINT drains the queue, snapshots, and
    exits 0.  See docs/SERVING.md.
    """
    from repro.core.tends import TendsModel
    from repro.serve import BatchPolicy, IngestService

    model = None
    if args.model is not None:
        model = TendsModel.load(args.model)
    overrides = {
        name: value
        for name, value in (
            ("executor", args.executor),
            ("n_jobs", args.n_jobs),
            ("chunk_size", args.chunk_size),
            ("max_attempts", args.max_attempts),
            ("chunk_timeout", args.chunk_timeout),
            ("kernel", args.kernel),
        )
        if value is not None
    }
    overrides.update(_tiling_overrides(args))
    drift_config = None
    if args.drift_alpha is not None:
        from repro.core.drift import DriftConfig

        drift_config = DriftConfig(alpha=args.drift_alpha)
    service = IngestService(
        args.directory,
        model,
        batch_policy=BatchPolicy(
            max_cascades=args.max_cascades,
            max_delay_seconds=args.max_delay,
        ),
        queue_capacity=args.queue_capacity,
        backpressure=args.backpressure,
        snapshot_every=args.snapshot_every,
        hang_timeout=args.hang_timeout,
        drift=args.drift,
        drift_window=args.drift_window,
        drift_config=drift_config,
        quarantine_limit=args.quarantine_limit,
        estimator_overrides=overrides,
    )
    if service.recovered_batches:
        print(f"replayed {service.recovered_batches} journaled batch(es)")
    service.start()
    service.handle_signals()

    server = None
    if args.http is not None:
        from repro.serve.http import start_http_server

        host, _, port = args.http.rpartition(":")
        server = start_http_server(service, host or "127.0.0.1", int(port))
        print("HTTP on %s:%d" % server.server_address[:2])

    spool = args.spool
    done_dir = None
    if spool is not None:
        spool.mkdir(parents=True, exist_ok=True)
        done_dir = spool / "done"
        done_dir.mkdir(exist_ok=True)
    stats = service.stats()
    print(
        f"serving from {args.directory} (model: {stats.model_beta} processes, "
        f"{stats.model_edges} edges; journal at seq {stats.journal_seq})"
    )
    try:
        while not service.shutdown_requested:
            absorbed_any = False
            if spool is not None:
                for path in sorted(spool.iterdir()):
                    if path.is_dir() or path.name.startswith("."):
                        continue
                    if path.suffix not in (".npz", ".csv", ".txt"):
                        continue
                    try:
                        seq = service.submit(_read_statuses(path))
                    except ReproError as error:
                        print(f"spool {path.name}: refused ({error})",
                              file=sys.stderr)
                        path.rename(done_dir / f"{path.name}.refused")
                        continue
                    path.rename(done_dir / path.name)
                    print(f"spool {path.name}: journaled as seq {seq}")
                    absorbed_any = True
            if args.once and not absorbed_any:
                break
            service.wait_for_shutdown(args.poll_interval)
    finally:
        if server is not None:
            server.shutdown()
        service.close(drain=True, timeout=args.drain_timeout)
    final = service.stats()
    print(
        f"stopped at seq {final.absorbed_seq}: {final.absorbed_batches} "
        f"batch(es) absorbed, {final.quarantined} quarantined, "
        f"{final.snapshots_written} snapshot(s) written"
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    truth = _read_graph(args.truth)
    inferred = _read_graph(args.inferred)
    metrics = evaluate_edges(truth, inferred, undirected=args.undirected)
    mode = "undirected" if args.undirected else "directed"
    print(
        f"{mode}: precision = {metrics.precision:.4f}, "
        f"recall = {metrics.recall:.4f}, F-score = {metrics.f_score:.4f} "
        f"(tp={metrics.true_positives}, fp={metrics.false_positives}, "
        f"fn={metrics.false_negatives})"
    )
    return 0


def _cmd_estimate_probabilities(args: argparse.Namespace) -> int:
    graph = _read_graph(args.graph)
    statuses = _read_statuses(args.statuses)
    probabilities = estimate_edge_probabilities(graph, statuses)
    lines = [
        f"{source} {target} {probability:.6f}"
        for (source, target), probability in sorted(probabilities.items())
    ]
    if args.output is not None:
        args.output.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"wrote {len(lines)} edge probabilities to {args.output}")
    else:
        print("\n".join(lines))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.evaluation.archive import load_result

    archives = sorted(args.archives)
    if not archives:
        print("no archive files given", file=sys.stderr)
        return 2
    results = [load_result(path) for path in archives]
    text = render_markdown_report(results)
    if args.output is not None:
        args.output.write_text(text, encoding="utf-8")
        print(f"wrote report for {len(results)} experiments to {args.output}")
    else:
        print(text)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    truth = _read_graph(args.truth)
    inferred = _read_graph(args.inferred)
    report = compare_topologies(truth, inferred, top_hub_count=args.hubs)
    width = max(len(key) for key in report)
    for key, value in report.items():
        print(f"{key.ljust(width)}  {value:.4f}")
    return 0


def _cmd_influence(args: argparse.Namespace) -> int:
    graph = _read_graph(args.graph)
    if args.statuses is not None:
        statuses = _read_statuses(args.statuses)
        probabilities = estimate_edge_probabilities(graph, statuses)
        # Clamp away zero estimates so every edge stays usable.
        probabilities = {
            edge: max(p, 0.01) for edge, p in probabilities.items()
        }
        source = "estimated from statuses"
    else:
        probabilities = {edge: args.probability for edge in graph.edges()}
        source = f"uniform {args.probability}"
    seeds, spread = greedy_influence_maximization(
        graph,
        args.k,
        probabilities,
        n_samples=args.samples,
        seed=args.seed,
    )
    print(
        f"top-{args.k} seeds (edge probabilities {source}): "
        f"{' '.join(str(s) for s in seeds)}"
    )
    print(f"estimated expected spread: {spread:.1f} of {graph.n_nodes} nodes")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.list:
        from repro.evaluation.robustness import list_robustness_figures

        print("available figures:", ", ".join(list_figures()))
        print("robustness benchmarks:", ", ".join(list_robustness_figures()))
        print("drift benchmark: drift")
        print("perf trend charts: trend (requires --ledger)")
        return 0
    if args.figure is not None and (
        args.figure == "robustness" or args.figure.startswith("robustness-")
    ):
        return _run_robustness_figure(args)
    if args.figure == "drift":
        return _run_drift_figure(args)
    if args.figure == "trend":
        return _run_trend_figure(args)
    if args.all:
        figure_ids = list_figures()
    elif args.figure is not None:
        figure_ids = [args.figure]
    else:
        print("specify a figure id, --all, or --list", file=sys.stderr)
        return 2
    from repro.core.executor import execution_env
    from repro.evaluation.checkpoint import checkpoint_path_for

    if (args.resume or args.retry_failed) and args.checkpoint_dir is None:
        print("--resume/--retry-failed require --checkpoint-dir", file=sys.stderr)
        return 2
    for figure_id in figure_ids:
        spec = figure_spec(figure_id, scale=args.scale)
        checkpoint = resume = None
        if args.checkpoint_dir is not None:
            checkpoint = checkpoint_path_for(args.checkpoint_dir, spec.experiment_id)
            if args.resume:
                resume = checkpoint
        harness_metrics = None
        if args.manifest_out is not None:
            from repro.obs import MetricsRegistry

            harness_metrics = MetricsRegistry()
        # Every Tends the harness builds inside this block picks up the
        # requested backend through the environment fallbacks.
        with execution_env(
            executor=args.executor,
            n_jobs=args.n_jobs,
            max_attempts=args.max_attempts,
            chunk_timeout=args.chunk_timeout,
            kernel=args.kernel,
        ):
            result = run_experiment(
                spec,
                seed=args.seed,
                on_error=args.on_error,
                method_timeout=args.method_timeout,
                checkpoint_path=checkpoint,
                resume_from=resume,
                retry_failed=args.retry_failed,
                **({"metrics": harness_metrics} if harness_metrics else {}),
            )
        if args.manifest_out is not None:
            from repro.obs import manifest_for_experiment, write_manifest

            manifest_path = args.manifest_out
            if len(figure_ids) > 1:
                manifest_path = manifest_path.with_name(
                    f"{manifest_path.stem}-{figure_id}{manifest_path.suffix}"
                )
            manifest = manifest_for_experiment(
                result,
                seeds={"seed": args.seed},
                metrics=harness_metrics.snapshot(),
                extra={"scale": args.scale},
            )
            write_manifest(manifest, manifest_path)
            print(f"run manifest written to {manifest_path}")
        failures = result.failures()
        if failures:
            print(
                f"warning: {len(failures)} cell(s) failed "
                f"(on_error={args.on_error})",
                file=sys.stderr,
            )
        print(format_result_table(result))
        print()
        print(format_series(result))
        if args.out is not None:
            from repro.evaluation.archive import save_result

            args.out.mkdir(parents=True, exist_ok=True)
            save_result(result, args.out / f"{figure_id}.json")
            print(f"archived to {args.out / (figure_id + '.json')}")
        if len(figure_ids) > 1:
            print()
    return 0


def _run_robustness_figure(args: argparse.Namespace) -> int:
    """``repro figure robustness[-<kind>]``: the degradation benchmark.

    Bare ``robustness`` sweeps the default corruption kinds; a suffixed id
    runs one kind.  Results archive per kind (JSON) and render as a single
    SVG degradation chart when ``--out`` is given; checkpoint/resume works
    per kind through the standard harness journal.
    """
    from repro.core.executor import execution_env
    from repro.evaluation.robustness import DEFAULT_KINDS, run_robustness_experiment

    if (args.resume or args.retry_failed) and args.checkpoint_dir is None:
        print("--resume/--retry-failed require --checkpoint-dir", file=sys.stderr)
        return 2
    if args.figure == "robustness":
        kinds: tuple[str, ...] = DEFAULT_KINDS
    else:
        kinds = (args.figure[len("robustness-"):],)
    with execution_env(
        executor=args.executor,
        n_jobs=args.n_jobs,
        max_attempts=args.max_attempts,
        chunk_timeout=args.chunk_timeout,
        kernel=args.kernel,
    ):
        results = run_robustness_experiment(
            kinds=kinds,
            scale=args.scale,
            seed=args.seed,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            retry_failed=args.retry_failed,
            on_error=args.on_error,
            method_timeout=args.method_timeout,
        )
    failures = [f for result in results.values() for f in result.failures()]
    if failures:
        print(
            f"warning: {len(failures)} cell(s) failed (on_error={args.on_error})",
            file=sys.stderr,
        )
    for kind, result in results.items():
        print(format_result_table(result))
        print()
        print(format_series(result))
        print()
    if args.out is not None:
        from repro.evaluation.archive import save_result
        from repro.evaluation.plotting import robustness_chart

        args.out.mkdir(parents=True, exist_ok=True)
        for kind, result in results.items():
            save_result(result, args.out / f"robustness-{kind}.json")
            print(f"archived to {args.out / f'robustness-{kind}.json'}")
        figure_path = args.out / "robustness.svg"
        figure_path.write_text(robustness_chart(results), encoding="utf-8")
        print(f"figure written to {figure_path}")
    return 0


def _run_drift_figure(args: argparse.Namespace) -> int:
    """``repro figure drift``: the drift detection/recovery benchmark.

    Streams a mid-stream-rewire scenario through one estimator per mode
    (``ignore`` / ``detect`` / ``adapt``), prints per-mode recovery
    against the post-change-only oracle refit, and (with ``--out``)
    writes the F-score trajectory chart.
    """
    from repro.core.executor import execution_env
    from repro.evaluation.drift import run_drift_experiment

    quick = args.scale == "quick"
    with execution_env(
        executor=args.executor,
        n_jobs=args.n_jobs,
        max_attempts=args.max_attempts,
        chunk_timeout=args.chunk_timeout,
        kernel=args.kernel,
    ):
        # Quick scale trades graph size for a stronger rewire so the
        # change is still detectable from 60-cascade windows.
        result = run_drift_experiment(
            n_nodes=60 if quick else 100,
            beta_pre=180 if quick else 240,
            beta_post=180 if quick else 240,
            batch_beta=60,
            rewire_fraction=0.3 if quick else 0.1,
            seed=args.seed if args.seed else 7,
        )
    print(
        f"drift benchmark: n={result.n_nodes}, change at cascade "
        f"{result.change_point}, rewire {result.rewire_fraction:g}, "
        f"oracle F={result.oracle_f:.3f}"
    )
    for row in result.summary_rows():
        latency = row["detection_latency"]
        latency_text = "-" if latency is None else f"{latency} cascades"
        print(
            f"  {row['mode']:<7} final F={row['final_f']:.3f}  "
            f"recovery={row['recovery_ratio']:.3f}  "
            f"detection latency={latency_text}"
        )
    if args.out is not None:
        from repro.evaluation.plotting import drift_chart

        args.out.mkdir(parents=True, exist_ok=True)
        figure_path = args.out / "drift.svg"
        figure_path.write_text(drift_chart(result), encoding="utf-8")
        print(f"figure written to {figure_path}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile``: one fit under the sampling profiler + memory
    attribution, with collapsed-stack / flamegraph / manifest / trend
    artifacts."""
    from repro.obs import (
        SamplingProfiler,
        append_trend,
        manifest_for_fit,
        write_flamegraph,
        write_manifest,
    )

    statuses = _read_statuses(args.statuses)
    estimator = Tends(
        executor=args.executor,
        n_jobs=args.n_jobs,
        max_attempts=args.max_attempts,
        chunk_timeout=args.chunk_timeout,
        kernel=args.kernel,
        trace=True,
        memory=True,
    )
    with SamplingProfiler(hz=args.hz) as profiler:
        result = estimator.fit(statuses)
    profile = profiler.profile
    if args.output is not None:
        _write_graph(result.graph, args.output)
    total = sum(
        seconds
        for stage, seconds in result.stage_seconds.items()
        if "/" not in stage
    )
    print(
        f"profiled fit: {result.n_edges} edges from {statuses.beta} "
        f"processes in {total:.2f}s "
        f"({profile.samples} samples @ {profile.hz:g} Hz)"
    )
    for stage, seconds in result.stage_seconds.items():
        if "/" not in stage:
            print(f"  stage {stage}: {seconds:.3f}s")
    telemetry = result.telemetry
    if telemetry is not None and telemetry.memory:
        for stage, stats in telemetry.memory.items():
            peak_rss = stats.get("peak_rss_bytes") or 0
            print(
                f"  memory {stage}: alloc={stats['alloc_bytes'] / 1e6:.1f}MB "
                f"peak_alloc={stats['peak_alloc_bytes'] / 1e6:.1f}MB "
                f"peak_rss={peak_rss / 1e6:.1f}MB"
            )
    if profile.samples:
        print(f"hottest frames (top {args.top} by self samples):")
        for frame, count in profile.top(args.top):
            print(f"  {count:>6}  {frame}")
    else:
        print(
            "no samples captured (fit finished within one sampling "
            "interval; raise --hz or use a larger input)"
        )
    if args.collapsed is not None:
        args.collapsed.parent.mkdir(parents=True, exist_ok=True)
        text = profile.collapsed()
        args.collapsed.write_text(text + "\n" if text else "", encoding="utf-8")
        print(f"collapsed stacks written to {args.collapsed}")
    if args.flamegraph is not None:
        write_flamegraph(
            profile.stacks,
            args.flamegraph,
            title=f"repro profile: {args.statuses.name}",
        )
        print(f"flamegraph written to {args.flamegraph}")
    if args.manifest_out is not None or args.trend_out is not None:
        manifest = manifest_for_fit(
            result,
            config=estimator.config,
            seeds={},
            extra={
                "statuses": str(args.statuses),
                "profile_samples": profile.samples,
                "profile_hz": profile.hz,
            },
        )
        if args.manifest_out is not None:
            write_manifest(manifest, args.manifest_out)
            print(f"run manifest written to {args.manifest_out}")
        if args.trend_out is not None:
            append_trend(args.trend_out, manifest, label="profile")
            print(f"trend ledger entry appended to {args.trend_out}")
    return 0


def _run_trend_figure(args: argparse.Namespace) -> int:
    """``repro figure trend``: time/memory trajectory SVGs off a ledger."""
    from repro.exceptions import DataError
    from repro.evaluation.plotting import save_line_chart
    from repro.obs import load_trend, trend_series

    if args.ledger is None:
        print("figure trend requires --ledger LEDGER.jsonl", file=sys.stderr)
        return 2
    entries = load_trend(args.ledger)
    if not entries:
        print(f"error: no readable entries in {args.ledger}", file=sys.stderr)
        return 2
    out_dir = args.out if args.out is not None else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    timings = trend_series(entries, section="timings")
    if timings:
        path = out_dir / "trend-time.svg"
        save_line_chart(
            timings,
            path,
            title=f"perf trend: stage timings ({len(entries)} runs)",
            x_label="ledger entry",
            y_label="seconds",
        )
        written.append(path)
    memory = trend_series(entries, section="memory")
    if memory:
        scaled = {
            metric: [(x, value / 1e6) for x, value in points]
            for metric, points in memory.items()
        }
        path = out_dir / "trend-memory.svg"
        save_line_chart(
            scaled,
            path,
            title=f"perf trend: memory ({len(entries)} runs)",
            x_label="ledger entry",
            y_label="MB",
        )
        written.append(path)
    if not written:
        raise DataError(f"ledger {args.ledger} has no timing or memory series")
    for path in written:
        print(f"figure written to {path}")
    return 0


def _cmd_perf_check(args: argparse.Namespace) -> int:
    """``repro perf-check``: 0 = within budget, 1 = regression, 2 = bad input."""
    from repro.exceptions import DataError
    from repro.obs import (
        check_trend,
        compare_profiles,
        format_report,
        load_timing_profile,
        load_trend,
    )

    try:
        if args.trend is not None:
            if args.subject is not None or args.baseline is not None:
                print(
                    "error: --trend takes no subject/--baseline (the ledger "
                    "is both)",
                    file=sys.stderr,
                )
                return 2
            entries = load_trend(args.trend)
            report = check_trend(
                entries,
                window=args.window,
                max_slowdown=args.max_slowdown,
                min_seconds=args.min_seconds,
                max_memory_growth=args.max_memory_growth,
            )
        else:
            if args.subject is None or args.baseline is None:
                print(
                    "error: need a subject and --baseline (or --trend LEDGER)",
                    file=sys.stderr,
                )
                return 2
            current = load_timing_profile(args.subject)
            baseline = load_timing_profile(args.baseline)
            report = compare_profiles(
                current,
                baseline,
                max_slowdown=args.max_slowdown,
                min_seconds=args.min_seconds,
            )
    except DataError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_report(report))
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TENDS diffusion-network reconstruction toolkit",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="enable console logging on the repro logger: -v = INFO, "
        "-vv = DEBUG (recovery events always log at WARNING)",
    )
    parser.add_argument(
        "--log-level",
        choices=tuple(_LOG_LEVELS),
        default=None,
        help="explicit console log level (overrides -v)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a ground-truth network")
    generate.add_argument(
        "kind", choices=("lfr", "er", "ba", "tree", "netsci", "dunf")
    )
    generate.add_argument("--n", type=int, default=200)
    generate.add_argument("--avg-degree", type=float, default=4.0)
    generate.add_argument("--tau", type=float, default=2.0)
    generate.add_argument(
        "--orientation", choices=("reciprocal", "random"), default="reciprocal"
    )
    generate.add_argument("--density", type=float, default=0.02, help="ER edge probability")
    generate.add_argument("--attach", type=int, default=2, help="BA attachment count")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", type=Path, required=True)
    generate.set_defaults(func=_cmd_generate)

    simulate = subparsers.add_parser("simulate", help="simulate diffusion processes")
    simulate.add_argument("graph", type=Path)
    simulate.add_argument("--beta", type=int, default=150)
    simulate.add_argument("--mu", type=float, default=0.3)
    simulate.add_argument("--alpha", type=float, default=0.15)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("-o", "--output", type=Path, required=True)
    simulate.add_argument(
        "--cascades", type=Path, default=None, help="also write cascades (JSONL)"
    )
    simulate.set_defaults(func=_cmd_simulate)

    infer = subparsers.add_parser("infer", help="run TENDS on a status matrix")
    infer.add_argument("statuses", type=Path)
    infer.add_argument("--mi-kind", choices=("infection", "traditional"), default="infection")
    infer.add_argument("--threshold", type=float, default=None)
    infer.add_argument("--threshold-scale", type=float, default=1.0)
    infer.add_argument(
        "--search-strategy",
        choices=("greedy-rescoring", "ranked-union"),
        default="greedy-rescoring",
    )
    infer.add_argument("--max-combination-size", type=int, default=1)
    _add_executor_arguments(infer)
    _add_tiling_arguments(infer)
    infer.add_argument("--chunk-size", type=int, default=None)
    infer.add_argument(
        "--audit",
        choices=("warn", "strict", "ignore"),
        default="warn",
        help="degenerate-observation policy: warn (default), strict "
        "(refuse), or ignore",
    )
    infer.add_argument(
        "--missing",
        choices=("pairwise", "refuse", "zero-fill"),
        default="pairwise",
        help="missing-data policy for masked observations: pairwise "
        "(default, mask-aware counts), refuse, or zero-fill",
    )
    infer.add_argument(
        "--flip-rate",
        type=float,
        default=None,
        help="corrupt the observations first: flip each status with this "
        "probability (robustness stress test)",
    )
    infer.add_argument(
        "--missing-rate",
        type=float,
        default=None,
        help="corrupt the observations first: mark each status unobserved "
        "with this probability (applied after --flip-rate)",
    )
    infer.add_argument(
        "--corruption-seed",
        type=int,
        default=0,
        help="seed for --flip-rate/--missing-rate corruption (default 0)",
    )
    infer.add_argument(
        "--bootstrap",
        type=int,
        default=None,
        metavar="B",
        help="bootstrap the IMI matrix with B resamples and report "
        "per-edge confidence scores",
    )
    infer.add_argument(
        "--bootstrap-seed",
        type=int,
        default=0,
        help="seed for the bootstrap resampling streams (default 0)",
    )
    infer.add_argument(
        "--stable-threshold",
        action="store_true",
        help="stability-screened pruning: keep only pairs whose bootstrap "
        "IMI confidence interval clears the auto-selected tau "
        "(implies a bootstrap; overrides --threshold)",
    )
    infer.add_argument(
        "--verbose-timing",
        action="store_true",
        help="print per-stage and per-worker timing breakdowns",
    )
    infer.add_argument(
        "--model-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="checkpoint the fitted incremental model (NPZ) for later "
        "`repro update` runs",
    )
    _add_obs_arguments(infer)
    infer.add_argument("-o", "--output", type=Path, required=True)
    infer.set_defaults(func=_cmd_infer)

    update = subparsers.add_parser(
        "update",
        help="incrementally absorb a batch of processes into a saved model",
        description="Load a TENDS model checkpoint, partial_fit a batch of "
        "newly observed statuses (bit-identical to refitting the full "
        "history), and save the updated model.",
    )
    update.add_argument(
        "--model-in",
        type=Path,
        required=True,
        help="model checkpoint written by `repro infer --model-out` or a "
        "previous `repro update`",
    )
    update.add_argument(
        "--batch",
        type=Path,
        required=True,
        help="newly observed statuses (CSV or NPZ) to absorb",
    )
    update.add_argument(
        "--model-out",
        type=Path,
        required=True,
        help="where to write the updated model (may equal --model-in)",
    )
    _add_executor_arguments(update)
    _add_tiling_arguments(update)
    update.add_argument("--chunk-size", type=int, default=None)
    update.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        help="also write the updated inferred graph",
    )
    update.set_defaults(func=_cmd_update)

    serve = subparsers.add_parser(
        "serve",
        help="run the crash-safe streaming ingest service",
        description="Long-running service that journals incoming cascade "
        "batches durably (WAL, fsync + CRC), absorbs them incrementally "
        "via partial_fit, and serves the current inferred network to "
        "concurrent readers.  Kill-safe: restart replays the journal to a "
        "bit-identical model.  See docs/SERVING.md.",
    )
    serve.add_argument(
        "directory",
        type=Path,
        help="service state directory (journal, quarantine, snapshots)",
    )
    serve.add_argument(
        "--model",
        type=Path,
        default=None,
        help="bootstrap model checkpoint; required on first open of an "
        "empty directory, ignored afterwards",
    )
    serve.add_argument(
        "--spool",
        type=Path,
        default=None,
        help="directory watched for status files (.npz/.csv/.txt) to "
        "ingest; processed files move to <spool>/done/",
    )
    serve.add_argument(
        "--http",
        default=None,
        metavar="[HOST:]PORT",
        help="also serve the HTTP frontend (POST /ingest, GET /edges "
        "/health /stats /metrics); binds 127.0.0.1 unless HOST is given",
    )
    serve.add_argument(
        "--max-cascades",
        type=int,
        default=64,
        help="absorb as soon as this many cascades are pending",
    )
    serve.add_argument(
        "--max-delay",
        type=float,
        default=1.0,
        help="absorb after the oldest pending batch waited this many seconds",
    )
    serve.add_argument(
        "--queue-capacity",
        type=int,
        default=1024,
        help="bounded-queue capacity in pending cascades",
    )
    serve.add_argument(
        "--backpressure",
        choices=("block", "reject", "shed"),
        default="block",
        help="full-queue policy (docs/SERVING.md#backpressure)",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=8,
        help="crash-atomic model snapshot cadence, in absorbed batches",
    )
    serve.add_argument(
        "--hang-timeout",
        type=float,
        default=30.0,
        help="watchdog restarts the absorb loop after this many seconds "
        "without a heartbeat",
    )
    serve.add_argument(
        "--drift",
        choices=("off", "detect", "adapt", "snapshot-adapt"),
        default="off",
        help="per-pair drift policy after each absorb: log-only detection, "
        "self-healing adaptation, or snapshot-before-adapt "
        "(docs/ROBUSTNESS.md#drift)",
    )
    serve.add_argument(
        "--drift-window",
        type=int,
        default=None,
        help="recent-window size in cascades for the drift comparison "
        "(default: the just-absorbed batch)",
    )
    serve.add_argument(
        "--drift-alpha",
        type=float,
        default=None,
        help="drift detector significance level (default 0.01; lower it "
        "on large graphs — the BH correction runs over ~n²/2 pair tests)",
    )
    serve.add_argument(
        "--quarantine-limit",
        type=int,
        default=1024,
        help="max quarantined batches kept on disk; older entries covered "
        "by a snapshot are compacted away",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        help="spool scan interval in seconds",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        help="max seconds to wait for the queue to drain on shutdown "
        "(default: wait indefinitely; undrained batches stay journaled)",
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help="drain the spool once, absorb, snapshot, and exit (scripting)",
    )
    _add_executor_arguments(serve)
    _add_tiling_arguments(serve)
    serve.add_argument("--chunk-size", type=int, default=None)
    serve.set_defaults(func=_cmd_serve)

    evaluate = subparsers.add_parser("evaluate", help="score an inferred topology")
    evaluate.add_argument("truth", type=Path)
    evaluate.add_argument("inferred", type=Path)
    evaluate.add_argument("--undirected", action="store_true")
    evaluate.set_defaults(func=_cmd_evaluate)

    estimate = subparsers.add_parser(
        "estimate-probabilities",
        help="estimate per-edge propagation probabilities",
    )
    estimate.add_argument("graph", type=Path)
    estimate.add_argument("statuses", type=Path)
    estimate.add_argument("-o", "--output", type=Path, default=None)
    estimate.set_defaults(func=_cmd_estimate_probabilities)

    report = subparsers.add_parser(
        "report", help="render archived experiment results as Markdown"
    )
    report.add_argument("archives", type=Path, nargs="*")
    report.add_argument("-o", "--output", type=Path, default=None)
    report.set_defaults(func=_cmd_report)

    analyze = subparsers.add_parser(
        "analyze", help="structural truth-vs-inferred comparison report"
    )
    analyze.add_argument("truth", type=Path)
    analyze.add_argument("inferred", type=Path)
    analyze.add_argument("--hubs", type=int, default=10)
    analyze.set_defaults(func=_cmd_analyze)

    influence = subparsers.add_parser(
        "influence", help="greedy influence-maximising seed selection"
    )
    influence.add_argument("graph", type=Path)
    influence.add_argument("--k", type=int, default=5)
    influence.add_argument(
        "--statuses",
        type=Path,
        default=None,
        help="estimate edge probabilities from these statuses",
    )
    influence.add_argument("--probability", type=float, default=0.3)
    influence.add_argument("--samples", type=int, default=100)
    influence.add_argument("--seed", type=int, default=0)
    influence.set_defaults(func=_cmd_influence)

    figure = subparsers.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("figure", nargs="?", default=None)
    figure.add_argument("--scale", choices=("quick", "full"), default="quick")
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument("--list", action="store_true")
    figure.add_argument("--all", action="store_true", help="run every figure")
    _add_executor_arguments(figure)
    figure.add_argument(
        "--out", type=Path, default=None, help="archive results (JSON) here"
    )
    figure.add_argument(
        "--on-error",
        choices=("raise", "skip", "retry"),
        default="raise",
        help="per-method failure boundary: raise (default, fail fast), "
        "skip (record the failure, keep sweeping), retry (re-run, then skip)",
    )
    figure.add_argument(
        "--method-timeout",
        type=float,
        default=None,
        help="per-method wall-clock budget in seconds "
        "(a timeout counts as a failure under --on-error)",
    )
    figure.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="journal completed cells to DIR/<figure>.checkpoint.jsonl",
    )
    figure.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already journaled under --checkpoint-dir",
    )
    figure.add_argument(
        "--retry-failed",
        action="store_true",
        help="with --resume: re-run journaled cells that recorded a failure",
    )
    figure.add_argument(
        "--manifest-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write one run manifest per figure (method timings, harness "
        "counters); with --all the figure id is appended to the stem",
    )
    figure.add_argument(
        "--ledger",
        type=Path,
        default=None,
        metavar="LEDGER",
        help="for `figure trend`: the perf trend ledger (JSONL) to chart",
    )
    figure.set_defaults(func=_cmd_figure)

    perf_check = subparsers.add_parser(
        "perf-check",
        help="fail when a run manifest regressed against a baseline",
        description="Compare the timing profile of a run manifest (or "
        "benchmark archive) against a baseline one and exit non-zero on "
        "slowdowns beyond the budget.",
    )
    perf_check.add_argument(
        "subject",
        type=Path,
        nargs="?",
        default=None,
        help="current run manifest / benchmark archive",
    )
    perf_check.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline manifest / archive to compare against",
    )
    perf_check.add_argument(
        "--trend",
        type=Path,
        default=None,
        metavar="LEDGER",
        help="check the newest entry of a perf trend ledger (JSONL, see "
        "`repro infer --trend-out`) against the rolling median of the "
        "previous --window entries instead of a pairwise comparison",
    )
    perf_check.add_argument(
        "--window",
        type=int,
        default=5,
        help="with --trend: rolling-baseline window size (default 5)",
    )
    perf_check.add_argument(
        "--max-slowdown",
        type=float,
        default=1.5,
        help="permitted current/baseline ratio per timing entry (default 1.5)",
    )
    perf_check.add_argument(
        "--min-seconds",
        type=float,
        default=0.01,
        help="skip entries faster than this on both sides (default 0.01s)",
    )
    perf_check.add_argument(
        "--max-memory-growth",
        type=float,
        default=1.5,
        help="with --trend: permitted current/baseline ratio per memory "
        "entry (default 1.5)",
    )
    perf_check.set_defaults(func=_cmd_perf_check)

    profile = subparsers.add_parser(
        "profile",
        help="run one profiled fit (sampling profiler + memory attribution)",
        description="Fit the status matrix under the sampling wall-clock "
        "profiler with per-stage memory attribution enabled, and print the "
        "hottest frames and peak memory per stage.  Optional artifacts: "
        "collapsed stacks, an SVG flamegraph, a run manifest, and a perf "
        "trend ledger entry.",
    )
    profile.add_argument(
        "statuses", type=Path, help="status matrix (.npz) to fit"
    )
    profile.add_argument(
        "--hz",
        type=float,
        default=97.0,
        help="sampling rate in samples/second (default 97; prime, to dodge "
        "lockstep with periodic work)",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many hottest frames to print (default 10)",
    )
    profile.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        help="also write the inferred graph here",
    )
    profile.add_argument(
        "--collapsed",
        type=Path,
        default=None,
        metavar="FILE",
        help="write collapsed stacks ('frame;frame count' lines, the "
        "flamegraph.pl interchange format)",
    )
    profile.add_argument(
        "--flamegraph",
        type=Path,
        default=None,
        metavar="FILE",
        help="write a self-contained SVG flamegraph",
    )
    profile.add_argument(
        "--manifest-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write a run manifest (timings + memory) for `repro perf-check`",
    )
    profile.add_argument(
        "--trend-out",
        type=Path,
        default=None,
        metavar="LEDGER",
        help="append this run's profile to a perf trend ledger (JSONL)",
    )
    _add_executor_arguments(profile)
    profile.set_defaults(func=_cmd_profile)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None:
        enable_console_logging(_LOG_LEVELS[args.log_level])
    elif args.verbose:
        enable_console_logging(
            logging.DEBUG if args.verbose >= 2 else logging.INFO
        )
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`): exit quietly.
        sys.stderr.close()
        return 0
