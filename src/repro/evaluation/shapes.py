"""Machine-checkable versions of the paper's qualitative claims.

The reproduction target is not absolute numbers (different substrate,
different hardware) but the *shape* of every figure: who wins, what
trends up or down, where the crossovers sit.  This module encodes each
§V claim as a predicate over an :class:`ExperimentResult`, so that

* the figure benches can assert the load-bearing shapes,
* ``EXPERIMENTS.md`` can be regenerated with an honest PASS/FAIL per
  claim (failures are reported, not hidden).

Helpers deliberately allow sampling noise: "insensitive" tolerates a
bounded relative spread, "trend" compares the means of the first and
last thirds of a series rather than demanding monotonicity point by
point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.evaluation.harness import ExperimentResult

__all__ = [
    "ShapeOutcome",
    "ShapeCheck",
    "FIGURE_SHAPES",
    "check_figure_shapes",
    "best_method",
    "fastest_method",
    "insensitive",
    "trend",
]


@dataclass(frozen=True)
class ShapeOutcome:
    """One claim's verdict against measured data."""

    claim: str
    passed: bool
    detail: str

    def as_row(self) -> dict[str, str]:
        return {
            "claim": self.claim,
            "verdict": "PASS" if self.passed else "FAIL",
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ShapeCheck:
    """A named predicate over an experiment result."""

    claim: str
    predicate: Callable[[ExperimentResult], tuple[bool, str]]

    def run(self, result: ExperimentResult) -> ShapeOutcome:
        passed, detail = self.predicate(result)
        return ShapeOutcome(claim=self.claim, passed=passed, detail=detail)


# ----------------------------------------------------------------------
# series helpers
# ----------------------------------------------------------------------

def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def insensitive(values: Sequence[float], *, spread: float = 0.15) -> bool:
    """True when the series varies by at most ``spread`` (absolute F units)."""
    return (max(values) - min(values)) <= spread if values else True


def trend(values: Sequence[float]) -> float:
    """Mean of the last third minus mean of the first third (sign = direction)."""
    if len(values) < 2:
        return 0.0
    k = max(1, len(values) // 3)
    return _mean(values[-k:]) - _mean(values[:k])


def best_method(result: ExperimentResult, metric: str = "f_score") -> str:
    """Method with the highest mean of ``metric`` across the sweep."""
    series = result.series(metric)
    return max(series, key=lambda name: _mean(series[name]))


def fastest_method(result: ExperimentResult) -> str:
    """Method with the lowest mean runtime across the sweep."""
    series = result.series("runtime_s")
    return min(series, key=lambda name: _mean(series[name]))


# ----------------------------------------------------------------------
# claim constructors
# ----------------------------------------------------------------------

def _claim_best(method: str, *, margin: float = 0.0) -> ShapeCheck:
    def predicate(result: ExperimentResult) -> tuple[bool, str]:
        series = result.series("f_score")
        target = _mean(series[method])
        others = {name: _mean(vals) for name, vals in series.items() if name != method}
        runner_up = max(others.values()) if others else 0.0
        return (
            target >= runner_up - margin,
            f"mean F: {method}={target:.3f}, best other={runner_up:.3f}",
        )

    return ShapeCheck(f"{method} achieves the best accuracy", predicate)


def _claim_fastest(method: str) -> ShapeCheck:
    def predicate(result: ExperimentResult) -> tuple[bool, str]:
        actual = fastest_method(result)
        series = result.series("runtime_s")
        return (
            actual == method,
            f"fastest={actual}; mean runtimes="
            + ", ".join(f"{k}={_mean(v):.2f}s" for k, v in series.items()),
        )

    return ShapeCheck(f"{method} is the fastest method", predicate)


def _claim_runtime_ratio(fast: str, slow: str, factor: float) -> ShapeCheck:
    """Runtime advantage at the sweep's canonical (middle) point.

    Evaluating at the paper's operating point rather than the sweep mean
    keeps the claim about the *algorithms*: TENDS's weak-signal sweep ends
    inflate its mean runtime (candidate sets explode before pruning bites
    — the paper's own §V-G observation), which is reported separately by
    the insensitivity and trend claims.
    """

    def predicate(result: ExperimentResult) -> tuple[bool, str]:
        series = result.series("runtime_s")
        middle = len(result.spec.points) // 2
        label = result.spec.points[middle].label
        fast_time = series[fast][middle]
        slow_time = series[slow][middle]
        ratio = slow_time / fast_time if fast_time > 0 else float("inf")
        return (
            ratio >= factor,
            f"at {label}: {slow}/{fast} runtime ratio = {ratio:.1f}x "
            f"(need >= {factor}x)",
        )

    return ShapeCheck(
        f"{fast} is at least {factor}x faster than {slow} at the canonical point",
        predicate,
    )


def _claim_insensitive(method: str, *, spread: float = 0.15) -> ShapeCheck:
    def predicate(result: ExperimentResult) -> tuple[bool, str]:
        values = result.series("f_score")[method]
        return (
            insensitive(values, spread=spread),
            f"{method} F range = [{min(values):.3f}, {max(values):.3f}]",
        )

    return ShapeCheck(
        f"{method} accuracy is insensitive to the sweep (spread <= {spread})",
        predicate,
    )


def _claim_trend(method: str, direction: str, *, metric: str = "f_score",
                 tolerance: float = 0.02) -> ShapeCheck:
    sign = 1.0 if direction == "up" else -1.0

    def predicate(result: ExperimentResult) -> tuple[bool, str]:
        values = result.series(metric)[method]
        delta = trend(values)
        return (
            sign * delta >= -tolerance,
            f"{method} {metric} first->last trend = {delta:+.3f}",
        )

    word = "improves" if direction == "up" else "degrades"
    return ShapeCheck(f"{method} {metric} {word} across the sweep", predicate)


def _claim_peak_near(method: str, low: float, high: float) -> ShapeCheck:
    def predicate(result: ExperimentResult) -> tuple[bool, str]:
        series = result.series("f_score")[method]
        points = [p.value for p in result.spec.points]
        peak = points[max(range(len(series)), key=lambda i: series[i])]
        return (
            low <= peak <= high,
            f"{method} F peaks at x = {peak:g} (expected in [{low:g}, {high:g}])",
        )

    return ShapeCheck(
        f"{method} accuracy peaks near the auto-selected threshold", predicate
    )


def _claim_dominates(better: str, worse: str, *, margin: float = 0.0) -> ShapeCheck:
    def predicate(result: ExperimentResult) -> tuple[bool, str]:
        series = result.series("f_score")
        a, b = _mean(series[better]), _mean(series[worse])
        return (a >= b - margin, f"mean F: {better}={a:.3f}, {worse}={b:.3f}")

    return ShapeCheck(f"{better} is at least as accurate as {worse}", predicate)


# ----------------------------------------------------------------------
# per-figure claim registry (paper §V-B … §V-H)
# ----------------------------------------------------------------------

_COMPARISON_CORE = (
    _claim_best("TENDS", margin=0.02),
    _claim_fastest("LIFT"),
    _claim_runtime_ratio("TENDS", "MulTree", 2.0),
)

FIGURE_SHAPES: dict[str, tuple[ShapeCheck, ...]] = {
    # §V-B: TENDS insensitive to network size and best; others degrade.
    "fig1": _COMPARISON_CORE
    + (
        _claim_insensitive("TENDS"),
        _claim_trend("NetRate", "down"),
        _claim_trend("MulTree", "down"),
    ),
    # §V-C: accuracy of MulTree/TENDS/LIFT decreases with average degree.
    "fig2": _COMPARISON_CORE
    + (
        _claim_trend("TENDS", "down", tolerance=0.05),
        _claim_trend("MulTree", "down", tolerance=0.05),
        _claim_trend("TENDS", "up", metric="runtime_s", tolerance=0.5),
    ),
    # §V-D: TENDS best and insensitive to degree dispersion.
    "fig3": _COMPARISON_CORE + (_claim_insensitive("TENDS"),),
    # §V-E: TENDS best and insensitive to the initial infection ratio.
    "fig4": _COMPARISON_CORE + (_claim_insensitive("TENDS", spread=0.2),),
    "fig5": _COMPARISON_CORE + (_claim_insensitive("TENDS", spread=0.2),),
    # §V-F: accuracy increases with the propagation probability.
    "fig6": _COMPARISON_CORE + (_claim_trend("MulTree", "up", tolerance=0.05),),
    "fig7": _COMPARISON_CORE + (_claim_trend("MulTree", "up", tolerance=0.05),),
    # §V-G: more processes -> more accurate; TENDS best.  The runtime
    # claim here is the paper's own quirk — TENDS takes *longer* at small
    # beta because weak pruning leaves more candidates — rather than the
    # mean MulTree ratio, which the beta=50 point skews.
    "fig8": (
        _claim_best("TENDS", margin=0.02),
        _claim_fastest("LIFT"),
        _claim_trend("TENDS", "up"),
        _claim_trend("MulTree", "up"),
        ShapeCheck(
            "TENDS is slower at the smallest beta than at the largest "
            "(weak pruning costs time — paper §V-G)",
            lambda result: (
                result.series("runtime_s")["TENDS"][0]
                > result.series("runtime_s")["TENDS"][-1],
                "TENDS runtime first point {:.2f}s vs last {:.2f}s".format(
                    result.series("runtime_s")["TENDS"][0],
                    result.series("runtime_s")["TENDS"][-1],
                ),
            ),
        ),
    ),
    "fig9": (
        _claim_best("TENDS", margin=0.02),
        _claim_fastest("LIFT"),
        _claim_trend("TENDS", "up"),
        _claim_trend("MulTree", "up"),
        ShapeCheck(
            "TENDS is slower at the smallest beta than at the largest "
            "(weak pruning costs time — paper §V-G)",
            lambda result: (
                result.series("runtime_s")["TENDS"][0]
                > result.series("runtime_s")["TENDS"][-1],
                "TENDS runtime first point {:.2f}s vs last {:.2f}s".format(
                    result.series("runtime_s")["TENDS"][0],
                    result.series("runtime_s")["TENDS"][-1],
                ),
            ),
        ),
    ),
    # §V-H: the 2-means tau is near-optimal; IMI beats traditional MI.
    "fig10": (
        _claim_peak_near("TENDS(IMI)", 0.6, 1.5),
        _claim_dominates("TENDS(IMI)", "TENDS(MI)", margin=0.01),
    ),
    "fig11": (
        _claim_peak_near("TENDS(IMI)", 0.6, 1.5),
        _claim_dominates("TENDS(IMI)", "TENDS(MI)", margin=0.01),
    ),
}


def check_figure_shapes(result: ExperimentResult) -> list[ShapeOutcome]:
    """Evaluate every registered claim for the result's figure.

    Unknown experiment ids get an empty list (custom specs have no paper
    claims attached).
    """
    checks = FIGURE_SHAPES.get(result.spec.experiment_id, ())
    return [check.run(result) for check in checks]
