"""Plain-text table rendering for experiment results.

The benches print (and archive) the same rows the paper's figures plot:
one block per sweep point with per-method F-score and runtime columns.
Everything is dependency-free ASCII so output survives logs and diffs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.evaluation.harness import ExperimentResult

__all__ = [
    "format_rows",
    "format_result_table",
    "format_series",
    "render_markdown_report",
]


def format_rows(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    float_digits: int = 4,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    rendered = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
        for r in rendered
    ]
    return "\n".join([header, separator, *body])


def format_result_table(result: ExperimentResult) -> str:
    """Full report for one experiment: title plus aggregated rows.

    The ``failed`` column appears only when some cell actually failed, so
    clean runs render exactly as before; a trailing note lists the failed
    cells with their captured errors."""
    spec = result.spec
    failures = result.failures()
    columns = ["point", "method", "f_score", "runtime_s", "replicates"]
    if failures:
        columns.append("failed")
    lines = [
        f"{spec.experiment_id}: {spec.title}",
        f"x-axis: {spec.x_label}; replicates: {spec.replicates}",
        "",
        format_rows(result.aggregated(), columns=columns),
    ]
    if failures:
        lines.append("")
        lines.append(f"failed cells ({len(failures)}):")
        for r in failures:
            lines.append(
                f"  {r.point_label} rep={r.replicate} {r.method} "
                f"[attempts={r.attempts}]: {r.error}"
            )
    return "\n".join(lines)


def render_markdown_report(results: Sequence[ExperimentResult]) -> str:
    """Render experiment results as a Markdown document.

    One section per experiment: an F-score table and a runtime table
    (methods × sweep points), followed by the paper-shape verdicts when
    the experiment is a registered figure.  This is the machine-updatable
    core of ``EXPERIMENTS.md`` — regenerate it from archived JSON results
    (:mod:`repro.evaluation.archive`) without re-running anything.
    """
    from repro.evaluation.shapes import check_figure_shapes

    lines: list[str] = ["# Experiment report", ""]
    for result in results:
        spec = result.spec
        lines.append(f"## {spec.experiment_id} — {spec.title}")
        lines.append("")
        points = [p.label for p in spec.points]
        for metric, label, digits in (
            ("f_score", "F-score", 3),
            ("runtime_s", "runtime (s)", 2),
        ):
            series = result.series(metric)
            lines.append(f"**{label}**")
            lines.append("")
            lines.append("| method | " + " | ".join(points) + " |")
            lines.append("|---" * (len(points) + 1) + "|")
            for method, values in series.items():
                cells = " | ".join(f"{v:.{digits}f}" for v in values)
                lines.append(f"| {method} | {cells} |")
            lines.append("")
        outcomes = check_figure_shapes(result)
        if outcomes:
            lines.append("**paper-shape claims**")
            lines.append("")
            lines.append("| verdict | claim | measured |")
            lines.append("|---|---|---|")
            for outcome in outcomes:
                verdict = "PASS" if outcome.passed else "FAIL"
                lines.append(f"| {verdict} | {outcome.claim} | {outcome.detail} |")
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def format_series(result: ExperimentResult) -> str:
    """Compact per-method series (the plotted lines), one row per method."""
    points = [p.label for p in result.spec.points]
    f_series = result.series("f_score")
    t_series = result.series("runtime_s")
    lines = ["points: " + ", ".join(points)]
    for method, values in f_series.items():
        lines.append(
            f"F  {method:>12}: " + ", ".join(f"{v:.3f}" for v in values)
        )
    for method, values in t_series.items():
        lines.append(
            f"t  {method:>12}: " + ", ".join(f"{v:.2f}s" for v in values)
        )
    return "\n".join(lines)
