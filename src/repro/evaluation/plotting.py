"""Dependency-free SVG line charts for experiment results.

The container this library targets has no plotting stack, so figures are
rendered as hand-built SVG: a titled axes box, per-series polylines with
point markers, and a legend.  The output is a plain-text SVG document —
viewable in any browser, diffable in review, and writable next to the
JSON archives without new dependencies.

Two layers:

* :func:`render_line_chart` — generic ``{name: [(x, y), ...]}`` chart;
* :func:`robustness_chart` — the degradation benchmark's figure: one
  line per (corruption kind, method) over the corruption-rate sweep,
  built from :func:`repro.evaluation.robustness.run_robustness_experiment`
  output.  ``NaN`` points (failed cells) are skipped, so a partially
  failed sweep still renders.
* :func:`drift_chart` — the drift-recovery figure: per-mode F-score
  trajectories over the cascade stream, with the change point drawn as
  a vertical marker series, from
  :func:`repro.evaluation.drift.run_drift_experiment` output.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Mapping, Sequence
from xml.sax.saxutils import escape

from repro.exceptions import ConfigurationError

__all__ = [
    "drift_chart",
    "render_line_chart",
    "robustness_chart",
    "save_line_chart",
]

Series = Mapping[str, Sequence[tuple[float, float]]]

#: Colour-blind-safe palette (Okabe–Ito), cycled per series.
_PALETTE = (
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#E69F00",
    "#56B4E9",
    "#F0E442",
    "#000000",
)

_MARKERS = ("circle", "square", "diamond", "triangle")


def _finite_points(points: Sequence[tuple[float, float]]) -> list[tuple[float, float]]:
    return [
        (float(x), float(y))
        for x, y in points
        if math.isfinite(float(x)) and math.isfinite(float(y))
    ]


def _ticks(low: float, high: float, count: int = 5) -> list[float]:
    if high <= low:
        return [low]
    step = (high - low) / (count - 1)
    return [low + step * i for i in range(count)]


def _marker_svg(shape: str, x: float, y: float, colour: str) -> str:
    if shape == "circle":
        return f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" fill="{colour}"/>'
    if shape == "square":
        return (
            f'<rect x="{x - 3:.1f}" y="{y - 3:.1f}" width="6" height="6" '
            f'fill="{colour}"/>'
        )
    if shape == "diamond":
        return (
            f'<path d="M {x:.1f} {y - 4:.1f} L {x + 4:.1f} {y:.1f} '
            f'L {x:.1f} {y + 4:.1f} L {x - 4:.1f} {y:.1f} Z" fill="{colour}"/>'
        )
    return (  # triangle
        f'<path d="M {x:.1f} {y - 4:.1f} L {x + 4:.1f} {y + 3:.1f} '
        f'L {x - 4:.1f} {y + 3:.1f} Z" fill="{colour}"/>'
    )


def render_line_chart(
    series: Series,
    *,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 720,
    height: int = 460,
    y_range: tuple[float, float] | None = None,
) -> str:
    """Render named point series as an SVG line chart (returns SVG text).

    ``series`` maps a legend label to ``(x, y)`` points; non-finite points
    are dropped per series.  ``y_range`` pins the y axis (e.g. ``(0, 1)``
    for F-scores); by default both axes fit the data with a small margin.
    """
    cleaned = {name: _finite_points(pts) for name, pts in series.items()}
    cleaned = {name: pts for name, pts in cleaned.items() if pts}
    if not cleaned:
        raise ConfigurationError("no finite data points to plot")

    xs = [x for pts in cleaned.values() for x, _ in pts]
    ys = [y for pts in cleaned.values() for _, y in pts]
    x_low, x_high = min(xs), max(xs)
    if x_high == x_low:
        x_low, x_high = x_low - 0.5, x_high + 0.5
    if y_range is not None:
        y_low, y_high = y_range
    else:
        y_low, y_high = min(ys), max(ys)
        pad = 0.05 * (y_high - y_low or 1.0)
        y_low, y_high = y_low - pad, y_high + pad

    margin_left, margin_right = 64, 180
    margin_top, margin_bottom = 44, 56
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    def px(x: float) -> float:
        return margin_left + (x - x_low) / (x_high - x_low) * plot_w

    def py(y: float) -> float:
        return margin_top + (1.0 - (y - y_low) / (y_high - y_low)) * plot_h

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<rect x="{margin_left}" y="{margin_top}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333"/>',
    ]
    if title:
        parts.append(
            f'<text x="{margin_left + plot_w / 2:.1f}" y="24" '
            f'text-anchor="middle" font-size="15">{escape(title)}</text>'
        )
    # Axis ticks, grid lines, labels.
    for tick in _ticks(x_low, x_high):
        x = px(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{margin_top + plot_h}" x2="{x:.1f}" '
            f'y2="{margin_top + plot_h + 5}" stroke="#333"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{margin_top + plot_h + 20}" '
            f'text-anchor="middle">{tick:g}</text>'
        )
    for tick in _ticks(y_low, y_high):
        y = py(tick)
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" '
            f'x2="{margin_left + plot_w}" y2="{y:.1f}" '
            f'stroke="#ddd" stroke-dasharray="3,3"/>'
        )
        parts.append(
            f'<text x="{margin_left - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{tick:.2f}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{margin_left + plot_w / 2:.1f}" y="{height - 12}" '
            f'text-anchor="middle">{escape(x_label)}</text>'
        )
    if y_label:
        y_mid = margin_top + plot_h / 2
        parts.append(
            f'<text x="16" y="{y_mid:.1f}" text-anchor="middle" '
            f'transform="rotate(-90 16 {y_mid:.1f})">{escape(y_label)}</text>'
        )
    # Series lines + legend.
    for index, (name, pts) in enumerate(cleaned.items()):
        colour = _PALETTE[index % len(_PALETTE)]
        marker = _MARKERS[index % len(_MARKERS)]
        ordered = sorted(pts)
        coords = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in ordered)
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{colour}" '
            f'stroke-width="2"/>'
        )
        for x, y in ordered:
            parts.append(_marker_svg(marker, px(x), py(y), colour))
        legend_y = margin_top + 10 + index * 20
        legend_x = margin_left + plot_w + 14
        parts.append(
            f'<line x1="{legend_x}" y1="{legend_y}" x2="{legend_x + 22}" '
            f'y2="{legend_y}" stroke="{colour}" stroke-width="2"/>'
        )
        parts.append(_marker_svg(marker, legend_x + 11, legend_y, colour))
        parts.append(
            f'<text x="{legend_x + 28}" y="{legend_y + 4}">{escape(name)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_line_chart(series: Series, path: "str | Path", **kwargs) -> Path:
    """Render and write a chart; returns the written path."""
    path = Path(path)
    path.write_text(render_line_chart(series, **kwargs), encoding="utf-8")
    return path


def robustness_chart(
    results: Mapping[str, "object"],
    *,
    metric: str = "f_score",
    title: str = "F-score vs observation corruption",
) -> str:
    """The degradation-benchmark figure from per-kind experiment results.

    ``results`` is the ``{kind: ExperimentResult}`` mapping produced by
    :func:`repro.evaluation.robustness.run_robustness_experiment`.  Each
    (kind, method) pair becomes one line over the corruption-rate sweep;
    failed cells (``nan``) are skipped.
    """
    series: dict[str, list[tuple[float, float]]] = {}
    for kind, result in results.items():
        for row in result.aggregated():
            name = f"{row['method']} [{kind}]"
            series.setdefault(name, []).append(
                (float(row["value"]), float(row[metric]))
            )
    y_range = (0.0, 1.0) if metric == "f_score" else None
    return render_line_chart(
        series,
        title=title,
        x_label="corruption rate",
        y_label=metric.replace("_", " "),
        y_range=y_range,
    )


def drift_chart(
    result: "object",
    *,
    title: str = "F-score recovery after mid-stream rewiring",
) -> str:
    """The drift-recovery figure from a
    :class:`~repro.evaluation.drift.DriftExperimentResult`.

    One line per mode (F-score against the truth behind the newest
    cascade, per batch), plus a near-vertical two-point series marking
    the change point — the moment the ground truth was rewired.
    """
    series: dict[str, list[tuple[float, float]]] = dict(result.series())
    change = float(result.change_point)
    # A vertical line as a degenerate series: two points sharing x,
    # spanning the fixed (0, 1) F-score range.
    series[f"change point (β={result.change_point})"] = [
        (change, 0.0),
        (change, 1.0),
    ]
    return render_line_chart(
        series,
        title=title,
        x_label="cascades consumed",
        y_label="F-score vs current truth",
        y_range=(0.0, 1.0),
    )
