"""Degradation benchmark: F-score vs observation-corruption rate.

The paper's evaluation assumes exact final statuses; this benchmark
measures how inference quality degrades when they are corrupted.  Each
corruption kind gets its own experiment spec — a sweep over corruption
*rate* on a fixed small benchmark graph — whose observations are
corrupted through the :class:`~repro.evaluation.harness.SweepPoint`
``observation_transform`` hook.  Everything else (method isolation,
checkpoint/resume, archives, reports) is the standard harness machinery,
so a robustness run survives crashes and resumes bit-identically like
any figure run.

The default method roster contrasts the missing-data policies directly:

* ``TENDS`` — the mask-aware default (``missing="pairwise"``);
* ``TENDS(zero-fill)`` — the legacy biased policy (unobserved = 0);
* ``CORR`` — the φ-correlation floor (mask-unaware, sees zero-filled
  values implicitly).

Only status-consuming methods participate: the corruption models operate
on the status matrix, and handing un-corrupted cascades to timestamp
methods would silently benchmark them on clean data.

Run via :func:`run_robustness_experiment` or ``repro figure robustness``
(CLI; ``--checkpoint-dir``/``--resume`` supported).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Sequence

from repro.baselines.base import Observations, TendsInferrer
from repro.baselines.correlation import CorrelationRanker
from repro.evaluation.harness import (
    ExperimentResult,
    ExperimentSpec,
    MethodSpec,
    SweepPoint,
    run_experiment,
)
from repro.exceptions import ConfigurationError
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph

__all__ = [
    "DEFAULT_KINDS",
    "corruption_transform",
    "list_robustness_figures",
    "robustness_methods",
    "robustness_spec",
    "run_robustness_experiment",
]

#: Corruption kinds benchmarked by the bare ``robustness`` figure id.
DEFAULT_KINDS: tuple[str, ...] = ("flip", "missing")

#: Benchmark substrate: a small LFR graph (Table II style, n = 100).
_BENCH_PARAMS = LFRParams(n=100, avg_degree=4, tau=2)

_FULL_RATES: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3)
_QUICK_RATES: tuple[float, ...] = (0.0, 0.15, 0.3)


def corruption_transform(
    kind: str, rate: float
) -> Callable[[Observations, int], Observations]:
    """Build a harness observation transform applying one corruption.

    The returned callable matches the
    :class:`~repro.evaluation.harness.SweepPoint` ``observation_transform``
    signature: it corrupts the simulated status matrix with the
    harness-derived cell seed (deterministic per cell, shared by every
    method at the point) and returns a **status-only** observation bundle
    — corrupting statuses while passing clean cascades through would
    silently benchmark timestamp methods on clean data.
    """
    from repro.robustness.corruption import corrupt

    def transform(observations: Observations, seed: int) -> Observations:
        record = corrupt(observations.statuses, kind, rate, seed=seed)
        return Observations.from_statuses(record.statuses)

    return transform


def robustness_methods(
    *, include: Sequence[str] = ("TENDS", "TENDS(zero-fill)", "CORR")
) -> tuple[MethodSpec, ...]:
    """The status-only roster of the degradation benchmark.

    ``TENDS`` runs the mask-aware ``missing="pairwise"`` default;
    ``TENDS(zero-fill)`` the legacy biased policy (the gap between the two
    is the benchmark's headline result); ``CORR`` is the mask-unaware
    correlation floor.
    """
    registry: dict[str, MethodSpec] = {
        "TENDS": MethodSpec("TENDS", lambda ctx: TendsInferrer(audit="ignore")),
        "TENDS(zero-fill)": MethodSpec(
            "TENDS(zero-fill)",
            lambda ctx: TendsInferrer(missing="zero-fill", audit="ignore"),
        ),
        "CORR": MethodSpec(
            "CORR", lambda ctx: CorrelationRanker(ctx.true_edge_count)
        ),
    }
    chosen: list[MethodSpec] = []
    for name in include:
        if name not in registry:
            raise ConfigurationError(
                f"unknown robustness method {name!r}; available: {sorted(registry)}"
            )
        chosen.append(registry[name])
    return tuple(chosen)


def _rates_for(scale: str) -> tuple[float, ...]:
    if scale not in ("full", "quick"):
        raise ConfigurationError(f"scale must be 'full' or 'quick', got {scale!r}")
    return _FULL_RATES if scale == "full" else _QUICK_RATES


def robustness_spec(
    kind: str,
    scale: str = "full",
    *,
    replicates: int = 1,
    rates: Sequence[float] | None = None,
    methods: tuple[MethodSpec, ...] | None = None,
) -> ExperimentSpec:
    """Experiment spec for one corruption kind's rate sweep.

    ``kind`` is a :data:`repro.robustness.CORRUPTION_KINDS` name; the
    experiment id is ``robustness-<kind>``.  Rate 0.0 (included by
    default) is the clean baseline every curve starts from.
    """
    from repro.robustness.corruption import CORRUPTION_KINDS

    if kind not in CORRUPTION_KINDS:
        raise ConfigurationError(
            f"unknown corruption kind {kind!r}; "
            f"expected one of {sorted(CORRUPTION_KINDS)}"
        )
    rate_values = tuple(rates) if rates is not None else _rates_for(scale)
    beta = 150 if scale == "full" else 60
    points = tuple(
        SweepPoint(
            label=f"{kind}={rate:g}",
            value=rate,
            graph_factory=lambda seed: lfr_benchmark_graph(_BENCH_PARAMS, seed=seed),
            beta=beta,
            observation_transform=corruption_transform(kind, rate),
        )
        for rate in rate_values
    )
    return ExperimentSpec(
        experiment_id=f"robustness-{kind}",
        title=f"F-score degradation under '{kind}' corruption",
        x_label=f"{kind} corruption rate",
        points=points,
        methods=methods if methods is not None else robustness_methods(),
        replicates=replicates,
    )


def list_robustness_figures() -> list[str]:
    """Robustness figure ids (the family behind ``repro figure robustness``)."""
    from repro.robustness.corruption import CORRUPTION_KINDS

    return ["robustness"] + [f"robustness-{kind}" for kind in CORRUPTION_KINDS]


def run_robustness_experiment(
    *,
    kinds: Sequence[str] = DEFAULT_KINDS,
    scale: str = "quick",
    seed: int = 0,
    replicates: int = 1,
    rates: Sequence[float] | None = None,
    methods: tuple[MethodSpec, ...] | None = None,
    checkpoint_dir: "str | Path | None" = None,
    resume: bool = False,
    retry_failed: bool = False,
    on_error: str = "raise",
    method_timeout: float | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, ExperimentResult]:
    """Run the degradation benchmark: corruption kind × rate sweeps.

    One harness experiment per kind (each with its own checkpoint file
    under ``checkpoint_dir``, named by experiment id), sharing the seed
    derivation, failure boundary, and resume semantics of
    :func:`~repro.evaluation.harness.run_experiment`.  Returns
    ``{kind: ExperimentResult}``; feed it to
    :func:`repro.evaluation.plotting.robustness_chart` for the figure.
    """
    from repro.evaluation.checkpoint import checkpoint_path_for

    results: dict[str, ExperimentResult] = {}
    for kind in kinds:
        spec = robustness_spec(
            kind, scale, replicates=replicates, rates=rates, methods=methods
        )
        checkpoint = resume_from = None
        if checkpoint_dir is not None:
            checkpoint = checkpoint_path_for(checkpoint_dir, spec.experiment_id)
            if resume:
                resume_from = checkpoint
        results[kind] = run_experiment(
            spec,
            seed=seed,
            progress=progress,
            on_error=on_error,
            method_timeout=method_timeout,
            checkpoint_path=checkpoint,
            resume_from=resume_from,
            retry_failed=retry_failed,
        )
    return results
