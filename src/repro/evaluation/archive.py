"""Experiment-result persistence.

Full-scale figure runs take minutes; analysing them (shape checks,
report tables, paper-vs-measured diffs) should not require re-running
them.  This module serialises an :class:`ExperimentResult` to a JSON
document and rebuilds a fully functional result from it — the rebuilt
object carries stub graph/method factories (the data is already
collected) but supports every read API: ``aggregated()``, ``series()``,
report formatting, and :func:`repro.evaluation.shapes.check_figure_shapes`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.baselines.base import TendsInferrer
from repro.evaluation.harness import (
    ExperimentResult,
    ExperimentSpec,
    MethodResult,
    MethodSpec,
    SweepPoint,
)
from repro.evaluation.metrics import EdgeMetrics
from repro.exceptions import DataError
from repro.graphs.digraph import DiffusionGraph

__all__ = [
    "result_to_json",
    "result_from_json",
    "save_result",
    "load_result",
]

PathLike = Union[str, Path]

_FORMAT = "repro.experiment_result"


def result_to_json(result: ExperimentResult) -> dict:
    """Serialise a result (spec metadata + every measurement) to a dict."""
    spec = result.spec
    return {
        "format": _FORMAT,
        "version": 2,
        "spec": {
            "experiment_id": spec.experiment_id,
            "title": spec.title,
            "x_label": spec.x_label,
            "replicates": spec.replicates,
            "points": [
                {
                    "label": p.label,
                    "value": p.value,
                    "mu": p.mu,
                    "alpha": p.alpha,
                    "beta": p.beta,
                }
                for p in spec.points
            ],
            "methods": [m.name for m in spec.methods],
        },
        "results": [
            {
                "point_label": r.point_label,
                "point_value": r.point_value,
                "method": r.method,
                "replicate": r.replicate,
                "tp": r.metrics.true_positives,
                "fp": r.metrics.false_positives,
                "fn": r.metrics.false_negatives,
                "runtime_seconds": r.runtime_seconds,
                "threshold": r.threshold,
                "error": r.error,
                "attempts": r.attempts,
            }
            for r in result.results
        ],
    }


def _stub_graph_factory(seed: int) -> DiffusionGraph:
    raise DataError(
        "this experiment result was loaded from an archive; "
        "its sweep points cannot generate new networks"
    )


def result_from_json(document: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_json` output.

    The rebuilt spec carries stub factories: re-*running* the experiment
    requires the original figure spec, but every analysis API works.
    """
    if document.get("format") != _FORMAT:
        raise DataError(
            f"not an experiment-result document: format={document.get('format')!r}"
        )
    try:
        spec_doc = document["spec"]
        points = tuple(
            SweepPoint(
                label=p["label"],
                value=float(p["value"]),
                graph_factory=_stub_graph_factory,
                mu=float(p["mu"]),
                alpha=float(p["alpha"]),
                beta=int(p["beta"]),
            )
            for p in spec_doc["points"]
        )
        methods = tuple(
            MethodSpec(name, lambda ctx: TendsInferrer())
            for name in spec_doc["methods"]
        )
        spec = ExperimentSpec(
            experiment_id=spec_doc["experiment_id"],
            title=spec_doc["title"],
            x_label=spec_doc["x_label"],
            points=points,
            methods=methods,
            replicates=int(spec_doc["replicates"]),
        )
        results = tuple(
            MethodResult(
                experiment_id=spec.experiment_id,
                point_label=r["point_label"],
                point_value=float(r["point_value"]),
                method=r["method"],
                replicate=int(r["replicate"]),
                metrics=EdgeMetrics(int(r["tp"]), int(r["fp"]), int(r["fn"])),
                runtime_seconds=float(r["runtime_seconds"]),
                threshold=(None if r["threshold"] is None else float(r["threshold"])),
                # Absent in version-1 archives: every cell was a success.
                error=r.get("error"),
                attempts=int(r.get("attempts", 1)),
            )
            for r in document["results"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"malformed experiment-result document: {exc}") from exc
    return ExperimentResult(spec=spec, results=results)


def save_result(result: ExperimentResult, path: PathLike) -> None:
    """Write a result archive as JSON."""
    Path(path).write_text(json.dumps(result_to_json(result)), encoding="utf-8")


def load_result(path: PathLike) -> ExperimentResult:
    """Read a result archive written by :func:`save_result`."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DataError(f"{path}: invalid JSON: {exc}") from exc
    return result_from_json(document)
