"""Accuracy metrics for inferred topologies (paper §V-A, Performance Criteria).

The paper reports the F-score of inferred directed edges:

    Precision = TP / (TP + FP),  Recall = TP / (TP + FN),
    F = 2 · P · R / (P + R)

with true positives counted over exact directed edges.  For algorithms
that output confidence scores instead of a hard topology (NetRate), the
paper "use[s] different thresholds to find the highest F-score and
report[s] it" — :func:`best_threshold_metrics` implements exactly that
sweep over the score-sorted prefix sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.exceptions import DataError
from repro.graphs.digraph import DiffusionGraph

__all__ = [
    "EdgeMetrics",
    "evaluate_edges",
    "best_threshold_metrics",
    "precision_recall_curve",
    "average_precision",
]

Edge = tuple[int, int]


@dataclass(frozen=True)
class EdgeMetrics:
    """Precision / recall / F-score with raw confusion counts."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f_score(self) -> float:
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0

    def as_row(self) -> dict[str, float]:
        return {
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f_score": round(self.f_score, 4),
            "tp": self.true_positives,
            "fp": self.false_positives,
            "fn": self.false_negatives,
        }


def _as_edge_set(edges: DiffusionGraph | Iterable[Edge]) -> frozenset[Edge]:
    if isinstance(edges, DiffusionGraph):
        return edges.edge_set()
    return frozenset((int(s), int(t)) for s, t in edges)


def evaluate_edges(
    truth: DiffusionGraph | Iterable[Edge],
    predicted: DiffusionGraph | Iterable[Edge],
    *,
    undirected: bool = False,
) -> EdgeMetrics:
    """Compare a predicted edge set against the ground truth.

    Parameters
    ----------
    truth, predicted:
        Graphs or iterables of ``(source, target)`` pairs.
    undirected:
        When ``True``, edges are compared as unordered pairs — used by the
        direction-ambiguity ablation, *not* by the paper's headline metric.
    """
    true_set = _as_edge_set(truth)
    pred_set = _as_edge_set(predicted)
    if undirected:
        true_set = frozenset(tuple(sorted(e)) for e in true_set)
        pred_set = frozenset(tuple(sorted(e)) for e in pred_set)
    tp = len(true_set & pred_set)
    return EdgeMetrics(
        true_positives=tp,
        false_positives=len(pred_set) - tp,
        false_negatives=len(true_set) - tp,
    )


def best_threshold_metrics(
    truth: DiffusionGraph | Iterable[Edge],
    edge_scores: Mapping[Edge, float],
) -> tuple[EdgeMetrics, float]:
    """Highest-F operating point over all score thresholds.

    Sorts edges by descending score and evaluates every prefix (each
    prefix corresponds to one threshold); returns the best metrics and the
    score of the last edge included at that operating point.  This is the
    preferential treatment the paper grants NetRate (§V-A).
    """
    true_set = _as_edge_set(truth)
    if not true_set:
        raise DataError("ground truth has no edges; F-score is undefined")
    ranked = sorted(edge_scores.items(), key=lambda item: (-item[1], item[0]))
    best = EdgeMetrics(0, 0, len(true_set))
    best_f = best.f_score
    best_threshold = float("inf")
    tp = 0
    for rank, (edge, score) in enumerate(ranked, start=1):
        if edge in true_set:
            tp += 1
        metrics = EdgeMetrics(tp, rank - tp, len(true_set) - tp)
        if metrics.f_score > best_f:
            best, best_f, best_threshold = metrics, metrics.f_score, float(score)
    return best, best_threshold


def average_precision(
    truth: DiffusionGraph | Iterable[Edge],
    edge_scores: Mapping[Edge, float],
) -> float:
    """Average precision (area under the PR curve, step interpolation).

    A threshold-free accuracy summary for score-producing methods —
    complements the paper's best-threshold F by not granting the method an
    oracle operating point.  Edges of the truth never ranked by the method
    contribute zero recall mass, so AP ∈ [0, 1] and equals 1 only when
    every true edge is ranked above every false one.
    """
    true_set = _as_edge_set(truth)
    if not true_set:
        raise DataError("ground truth has no edges; average precision undefined")
    ranked = sorted(edge_scores.items(), key=lambda item: (-item[1], item[0]))
    tp = 0
    total = 0.0
    for rank, (edge, _score) in enumerate(ranked, start=1):
        if edge in true_set:
            tp += 1
            total += tp / rank
    return total / len(true_set)


def precision_recall_curve(
    truth: DiffusionGraph | Iterable[Edge],
    edge_scores: Mapping[Edge, float],
) -> np.ndarray:
    """``(k, 3)`` array of (threshold, precision, recall) over all prefixes."""
    true_set = _as_edge_set(truth)
    if not true_set:
        raise DataError("ground truth has no edges; curve is undefined")
    ranked = sorted(edge_scores.items(), key=lambda item: (-item[1], item[0]))
    rows = np.empty((len(ranked), 3))
    tp = 0
    for rank, (edge, score) in enumerate(ranked, start=1):
        if edge in true_set:
            tp += 1
        rows[rank - 1] = (score, tp / rank, tp / len(true_set))
    return rows
