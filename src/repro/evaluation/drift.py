"""Detection-latency / recovery benchmark for the drift machinery.

A :class:`~repro.robustness.scenarios.DriftStream` rewires the truth
mid-stream; this experiment feeds its cascades batch by batch to one
estimator per *mode* and scores each published graph against the truth
*behind the newest cascade*:

* ``ignore`` — today's static-assumption ``partial_fit``: pre- and
  post-change evidence silently averaged into one wrong network (the
  failure the ISSUE names);
* ``detect`` — detection on, model still accumulating (measures pure
  detection latency without the healing);
* ``adapt`` — the self-healing path: on a flagged report the model is
  rebased onto the recent window and only the affected nodes re-searched.

Headline numbers, per mode: the post-change F-score trajectory, the
detection latency in cascades (first flagged batch after the change
point), and ``recovery_ratio`` — the final F-score over the F-score of
an **oracle refit** that fits only post-change cascades (the best any
detector-driven method could do).  The acceptance bar is
``recovery_ratio >= 0.95`` for ``adapt`` while re-searching only flagged
nodes.

Run via :func:`run_drift_experiment` or ``repro figure drift`` (CLI,
SVG chart included); ``bench_drift_recovery.py`` tracks the wall-clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.drift import DriftConfig
from repro.core.tends import Tends
from repro.evaluation.metrics import evaluate_edges
from repro.exceptions import ConfigurationError
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.robustness.scenarios import DriftEvent, DriftStream, simulate_drift_stream

__all__ = [
    "DRIFT_MODES",
    "DriftCell",
    "DriftExperimentResult",
    "drift_stream_spec",
    "run_drift_experiment",
]

#: Estimator modes the benchmark contrasts, in plot order.
DRIFT_MODES = ("ignore", "detect", "adapt")


@dataclass(frozen=True)
class DriftCell:
    """One (mode, batch) measurement of the streaming estimator."""

    mode: str
    batch_index: int
    cascades_seen: int
    f_score: float
    drifted: bool
    adapted: bool
    n_dirty: int
    error: str | None = None


@dataclass(frozen=True)
class DriftExperimentResult:
    """Everything one drift benchmark run produced.

    ``cells`` carries the per-batch trajectories; ``detection_latency``
    maps each detecting mode to cascades between the change point and
    the end of the first flagged batch (``None`` = never detected);
    ``recovery_ratio`` is final F over the oracle post-change refit's F.
    """

    n_nodes: int
    beta_pre: int
    beta_post: int
    batch_beta: int
    rewire_fraction: float
    seed: int
    change_point: int
    cells: tuple[DriftCell, ...]
    oracle_f: float
    final_f: Mapping[str, float]
    detection_latency: Mapping[str, int | None]
    recovery_ratio: Mapping[str, float]

    def series(self) -> dict[str, list[tuple[float, float]]]:
        """``{mode: [(cascades_seen, f_score), ...]}`` for charting."""
        out: dict[str, list[tuple[float, float]]] = {}
        for cell in self.cells:
            if math.isnan(cell.f_score):
                continue
            out.setdefault(cell.mode, []).append(
                (float(cell.cascades_seen), cell.f_score)
            )
        return out

    def summary_rows(self) -> list[dict]:
        """One row per mode for the CLI table."""
        rows = []
        for mode in sorted(self.final_f):
            rows.append(
                {
                    "mode": mode,
                    "final_f": self.final_f[mode],
                    "oracle_f": self.oracle_f,
                    "recovery_ratio": self.recovery_ratio[mode],
                    "detection_latency": self.detection_latency.get(mode),
                }
            )
        return rows


def drift_stream_spec(
    *,
    n_nodes: int = 100,
    avg_degree: int = 4,
    beta_pre: int = 240,
    beta_post: int = 240,
    rewire_fraction: float = 0.1,
    seed: int = 7,
) -> DriftStream:
    """The benchmark substrate: one LFR truth (same family as the
    corruption benchmark), one mid-stream rewire."""
    truth = lfr_benchmark_graph(
        LFRParams(n=n_nodes, avg_degree=avg_degree, tau=2), seed=seed
    )
    return simulate_drift_stream(
        truth,
        [DriftEvent(at_cascade=beta_pre, rewire_fraction=rewire_fraction)],
        beta=beta_pre + beta_post,
        seed=seed,
    )


def run_drift_experiment(
    *,
    n_nodes: int = 100,
    avg_degree: int = 4,
    beta_pre: int = 240,
    beta_post: int = 240,
    batch_beta: int = 60,
    rewire_fraction: float = 0.1,
    seed: int = 7,
    modes: Sequence[str] = DRIFT_MODES,
    drift_config: DriftConfig | None = None,
    drift_window: int | None = None,
    stream: DriftStream | None = None,
) -> DriftExperimentResult:
    """Stream a drift scenario through one estimator per mode.

    Every mode consumes the *same* stream in the same ``batch_beta``-sized
    batches: a warmup :meth:`~repro.core.tends.Tends.fit` on the first
    batch, then ``partial_fit`` per batch with the mode's drift policy.
    A cell whose update raises records ``f_score=nan`` plus the error and
    the mode's stream continues — method isolation, like the harness.
    """
    for mode in modes:
        if mode not in DRIFT_MODES:
            raise ConfigurationError(
                f"unknown drift benchmark mode {mode!r} "
                f"(choose from {', '.join(DRIFT_MODES)})"
            )
    if batch_beta < 1:
        raise ConfigurationError(f"batch_beta must be >= 1, got {batch_beta}")
    if stream is None:
        stream = drift_stream_spec(
            n_nodes=n_nodes,
            avg_degree=avg_degree,
            beta_pre=beta_pre,
            beta_post=beta_post,
            rewire_fraction=rewire_fraction,
            seed=seed,
        )
    else:
        n_nodes = stream.n_nodes
        beta_pre = stream.change_points[0] if stream.change_points else stream.beta
        beta_post = stream.beta - beta_pre
    if stream.beta < 2 * batch_beta:
        raise ConfigurationError(
            f"stream of {stream.beta} cascades is too short for "
            f"batch_beta={batch_beta} (need at least two batches)"
        )
    # BH runs over ~n²/2 highly correlated pair tests here; one node's
    # legitimate marginal fluctuation can push ~n of them under a 1e-2
    # cutoff at once.  1e-3 keeps those flukes quiet while a 10% rewire
    # still flags on the first post-change batch (p-values < 1e-7).
    config = drift_config or DriftConfig(alpha=1e-3)
    statuses = stream.statuses
    boundaries = list(range(batch_beta, statuses.beta + 1, batch_beta))
    if boundaries[-1] != statuses.beta:
        boundaries.append(statuses.beta)

    # Oracle: a fresh fit on post-change cascades only — the ceiling any
    # detector-driven recovery can reach on this stream.
    post = statuses.subset(range(beta_pre, statuses.beta))
    oracle = Tends().fit(post)
    oracle_f = evaluate_edges(stream.final_graph(), oracle.graph).f_score

    cells: list[DriftCell] = []
    final_f: dict[str, float] = {}
    detection_latency: dict[str, int | None] = {}
    for mode in modes:
        estimator = Tends()
        first_detection: int | None = None
        last_f = math.nan
        for index, stop in enumerate(boundaries):
            start = boundaries[index - 1] if index else 0
            chunk = statuses.subset(range(start, stop))
            drifted = adapted = False
            n_dirty = 0
            error: str | None = None
            try:
                if index == 0:
                    result = estimator.fit(chunk)
                else:
                    result = estimator.partial_fit(
                        chunk,
                        drift="ignore" if mode == "ignore" else mode,
                        drift_window=drift_window,
                        drift_config=config,
                    )
                    report = result.drift
                    if report is not None and report.drifted:
                        drifted = True
                        if first_detection is None and stop > beta_pre:
                            first_detection = stop
                        if mode == "adapt":
                            adapted = True
                            n_dirty = len(report.affected_nodes)
                truth_now = stream.graph_at(stop - 1)
                last_f = evaluate_edges(truth_now, result.graph).f_score
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # method isolation, harness-style
                error = f"{type(exc).__name__}: {exc}"
                last_f = math.nan
            cells.append(
                DriftCell(
                    mode=mode,
                    batch_index=index,
                    cascades_seen=stop,
                    f_score=last_f,
                    drifted=drifted,
                    adapted=adapted,
                    n_dirty=n_dirty,
                    error=error,
                )
            )
        final_f[mode] = last_f
        if mode != "ignore":
            detection_latency[mode] = (
                None if first_detection is None else first_detection - beta_pre
            )
    recovery_ratio = {
        mode: (final_f[mode] / oracle_f if oracle_f > 0 else math.nan)
        for mode in final_f
    }
    return DriftExperimentResult(
        n_nodes=n_nodes,
        beta_pre=beta_pre,
        beta_post=beta_post,
        batch_beta=batch_beta,
        rewire_fraction=rewire_fraction,
        seed=seed,
        change_point=beta_pre,
        cells=tuple(cells),
        oracle_f=oracle_f,
        final_f=final_f,
        detection_latency=detection_latency,
        recovery_ratio=recovery_ratio,
    )
