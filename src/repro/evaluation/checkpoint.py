"""Append-only sweep checkpoints: journal cells, resume after a crash.

A paper-scale sweep is many ``(sweep point, method, trial)`` cells, each
potentially minutes of work.  The harness journals every completed cell
to a JSONL file as soon as it is measured, so a crash (or Ctrl-C)
anywhere in the sweep loses at most the cell in flight;
``run_experiment(..., resume_from=...)`` then skips every journaled cell
and recomputes only the missing ones.  Because cell seeds are derived
independently per ``(point, replicate)``, a resumed run is bit-identical
to an uninterrupted one.

Design constraints the format serves:

* **append-only** — a crash mid-write corrupts at most the final line;
  :func:`load_checkpoint` tolerates (and drops) a truncated last line,
  while corruption anywhere *else* raises
  :class:`~repro.exceptions.CheckpointError` (that is not a partial
  write — the file is damaged).
* **idempotent** — duplicate cells (e.g. a cell journaled by both a
  crashed run and its resume) are deduplicated on load, last write wins.
* **self-describing** — every line carries the experiment id, so loading
  against the wrong experiment fails loudly instead of silently mixing
  sweeps.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Union

from repro.exceptions import CheckpointError
from repro.obs.metrics import NULL_METRICS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.evaluation.harness import MethodResult
    from repro.obs.metrics import MetricsRegistry, NullMetrics

__all__ = [
    "CellKey",
    "CheckpointJournal",
    "cell_key",
    "checkpoint_path_for",
    "load_checkpoint",
    "method_result_to_json",
    "method_result_from_json",
]

PathLike = Union[str, Path]

#: Identity of one sweep cell: (point label, replicate, method name).
CellKey = tuple[str, int, str]

_FORMAT = "repro.method_result"


def cell_key(point_label: str, replicate: int, method: str) -> CellKey:
    """The journal key of one ``(sweep point, trial, method)`` cell."""
    return (str(point_label), int(replicate), str(method))


def checkpoint_path_for(directory: PathLike, experiment_id: str) -> Path:
    """Canonical checkpoint location for one experiment under ``directory``
    (used by ``repro figure --checkpoint-dir/--resume``)."""
    return Path(directory) / f"{experiment_id}.checkpoint.jsonl"


def method_result_to_json(result: "MethodResult") -> dict:
    """Serialise one measurement to a journal line payload."""
    return {
        "format": _FORMAT,
        "experiment_id": result.experiment_id,
        "point_label": result.point_label,
        "point_value": result.point_value,
        "method": result.method,
        "replicate": result.replicate,
        "tp": result.metrics.true_positives,
        "fp": result.metrics.false_positives,
        "fn": result.metrics.false_negatives,
        "runtime_seconds": result.runtime_seconds,
        "threshold": result.threshold,
        "error": result.error,
        "attempts": result.attempts,
    }


def method_result_from_json(document: Mapping) -> "MethodResult":
    """Rebuild a :class:`~repro.evaluation.harness.MethodResult` from a
    journal line; raises :class:`CheckpointError` on malformed payloads."""
    from repro.evaluation.harness import MethodResult
    from repro.evaluation.metrics import EdgeMetrics

    if document.get("format") != _FORMAT:
        raise CheckpointError(
            f"not a checkpoint record: format={document.get('format')!r}"
        )
    try:
        threshold = document["threshold"]
        return MethodResult(
            experiment_id=str(document["experiment_id"]),
            point_label=str(document["point_label"]),
            # JSON round-trips int/float faithfully; coercing to float here
            # would make a resumed archive differ from the original on
            # integer sweep axes (e.g. network size).
            point_value=document["point_value"],
            method=str(document["method"]),
            replicate=int(document["replicate"]),
            metrics=EdgeMetrics(
                int(document["tp"]), int(document["fp"]), int(document["fn"])
            ),
            runtime_seconds=float(document["runtime_seconds"]),
            threshold=None if threshold is None else float(threshold),
            error=document.get("error"),
            attempts=int(document.get("attempts", 1)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint record: {exc}") from exc


class CheckpointJournal:
    """Append-only JSONL journal of completed sweep cells.

    Opens lazily on the first :meth:`record`, appends one JSON line per
    measurement, and flushes to the OS after every line so a crash loses
    at most the line being written.  Usable as a context manager.

    Parameters
    ----------
    path:
        Journal location; parent directories are created on first write.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; every
        successful append increments ``checkpoint_writes_total``.
        Defaults to the no-op registry.
    """

    def __init__(
        self,
        path: PathLike,
        metrics: "MetricsRegistry | NullMetrics" = NULL_METRICS,
    ) -> None:
        self.path = Path(path)
        self._handle: io.TextIOWrapper | None = None
        self._metrics = metrics

    def record(self, result: "MethodResult") -> None:
        """Append one measurement and flush it to disk."""
        if self._handle is None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            except OSError as exc:
                raise CheckpointError(
                    f"cannot open checkpoint {self.path}: {exc}"
                ) from exc
        line = json.dumps(method_result_to_json(result), separators=(",", ":"))
        try:
            self._handle.write(line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            raise CheckpointError(
                f"cannot append to checkpoint {self.path}: {exc}"
            ) from exc
        self._metrics.inc("checkpoint_writes_total")

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_checkpoint(
    path: PathLike, *, experiment_id: str | None = None
) -> dict[CellKey, "MethodResult"]:
    """Load a journal into ``{cell key: MethodResult}``.

    A missing file is an empty checkpoint (first run).  A truncated or
    corrupt **final** line — the partial-write signature of a crash — is
    dropped silently; corruption on any earlier line raises
    :class:`CheckpointError`.  Duplicate cells keep the last occurrence.
    When ``experiment_id`` is given, a record from a different experiment
    raises :class:`CheckpointError` instead of contaminating the resume.
    """
    path = Path(path)
    if not path.exists():
        return {}
    try:
        raw_lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    lines = [(i, line) for i, line in enumerate(raw_lines) if line.strip()]
    cells: dict[CellKey, "MethodResult"] = {}
    for position, (line_number, line) in enumerate(lines):
        try:
            document = json.loads(line)
            result = method_result_from_json(document)
        except (json.JSONDecodeError, CheckpointError) as exc:
            if position == len(lines) - 1:
                # Partial write of the line in flight when the run died.
                continue
            raise CheckpointError(
                f"{path}:{line_number + 1}: corrupt checkpoint line "
                f"(not a trailing partial write): {exc}"
            ) from exc
        if experiment_id is not None and result.experiment_id != experiment_id:
            raise CheckpointError(
                f"{path}:{line_number + 1}: record belongs to experiment "
                f"{result.experiment_id!r}, expected {experiment_id!r}"
            )
        cells[cell_key(result.point_label, result.replicate, result.method)] = (
            result
        )
    return cells
