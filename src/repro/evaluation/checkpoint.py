"""Append-only sweep checkpoints: journal cells, resume after a crash.

A paper-scale sweep is many ``(sweep point, method, trial)`` cells, each
potentially minutes of work.  The harness journals every completed cell
to a JSONL file as soon as it is measured, so a crash (or Ctrl-C)
anywhere in the sweep loses at most the cell in flight;
``run_experiment(..., resume_from=...)`` then skips every journaled cell
and recomputes only the missing ones.  Because cell seeds are derived
independently per ``(point, replicate)``, a resumed run is bit-identical
to an uninterrupted one.

Design constraints the format serves:

* **append-only** — a crash mid-write corrupts at most the final line;
  :func:`load_checkpoint` tolerates (and drops) a truncated last line.
* **integrity-checked** — every record carries a CRC32 of its canonical
  payload, so corruption *anywhere* in the file (a mid-line bit flip,
  not just a torn tail) is detected; damaged records are skipped with a
  :class:`~repro.exceptions.JournalCorruptionWarning` and the surviving
  records still resume bit-identically.
* **idempotent** — duplicate cells (e.g. a cell journaled by both a
  crashed run and its resume) are deduplicated on load, last write wins;
  byte-identical replays of the same record are flagged as duplicates.
* **self-describing** — every line carries the experiment id, so loading
  against the wrong experiment fails loudly instead of silently mixing
  sweeps.

The durable-line primitives (:class:`DurableJsonlWriter`,
:func:`scan_journal`, :func:`with_crc` / :func:`crc_of_document`) are
shared with the streaming ingest write-ahead journal in
:mod:`repro.serve.journal`, which layers sequence numbers and batch
payloads on the same fsync + CRC contract.
"""

from __future__ import annotations

import io
import json
import os
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Union

from repro.exceptions import CheckpointError, JournalCorruptionWarning
from repro.obs.metrics import NULL_METRICS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.evaluation.harness import MethodResult
    from repro.obs.metrics import MetricsRegistry, NullMetrics

__all__ = [
    "CellKey",
    "CheckpointJournal",
    "DurableJsonlWriter",
    "JournalLine",
    "cell_key",
    "checkpoint_path_for",
    "crc_of_document",
    "load_checkpoint",
    "method_result_to_json",
    "method_result_from_json",
    "scan_journal",
    "with_crc",
]

PathLike = Union[str, Path]

#: Identity of one sweep cell: (point label, replicate, method name).
CellKey = tuple[str, int, str]

_FORMAT = "repro.method_result"

#: Record key holding the integrity checksum; excluded from the checksum
#: itself so a record can be verified from its parsed form.
CRC_KEY = "crc"


# ----------------------------------------------------------------------
# durable JSONL primitives (shared with the serve ingest journal)
# ----------------------------------------------------------------------

def crc_of_document(document: Mapping) -> int:
    """CRC32 of a record's canonical JSON payload (``crc`` key excluded).

    Canonical form is compact separators + sorted keys, so the checksum
    is stable across writer and reader regardless of key order, and a
    parsed record can be re-verified without keeping the raw line.
    """
    payload = {key: value for key, value in document.items() if key != CRC_KEY}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


def with_crc(document: Mapping) -> dict:
    """A copy of ``document`` carrying its :func:`crc_of_document`."""
    record = dict(document)
    record[CRC_KEY] = crc_of_document(document)
    return record


@dataclass(frozen=True)
class JournalLine:
    """One scanned journal line: its parse/verify outcome.

    Attributes
    ----------
    number:
        1-based line number in the file.
    document:
        The parsed record, or ``None`` when the line is damaged.
    error:
        Why the line was rejected (``None`` for a good line).
    torn:
        True when the damage is on the final line — the partial-write
        signature of a crash, tolerated rather than corruption.
    """

    number: int
    document: dict | None
    error: str | None
    torn: bool = False

    @property
    def ok(self) -> bool:
        return self.document is not None


def scan_journal(path: PathLike, *, verify_crc: bool = True) -> list[JournalLine]:
    """Parse and integrity-check every non-blank line of a JSONL journal.

    Returns one :class:`JournalLine` per line, in file order.  A line
    fails when it is not valid JSON, not a JSON object, or (with
    ``verify_crc``) carries a ``crc`` field that does not match its
    payload.  Records without a ``crc`` field are accepted — journals
    written before the checksum existed stay loadable.  A missing file
    scans as empty.  Unreadable files raise :class:`CheckpointError`.
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        raw_lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise CheckpointError(f"cannot read journal {path}: {exc}") from exc
    entries = [(i + 1, line) for i, line in enumerate(raw_lines) if line.strip()]
    scanned: list[JournalLine] = []
    for position, (number, line) in enumerate(entries):
        final = position == len(entries) - 1
        try:
            document = json.loads(line)
        except json.JSONDecodeError as exc:
            scanned.append(
                JournalLine(number, None, f"not valid JSON: {exc}", torn=final)
            )
            continue
        if not isinstance(document, dict):
            scanned.append(
                JournalLine(
                    number, None, "not a JSON object", torn=final
                )
            )
            continue
        if verify_crc and CRC_KEY in document:
            stored = document[CRC_KEY]
            expected = crc_of_document(document)
            if stored != expected:
                scanned.append(
                    JournalLine(
                        number,
                        None,
                        f"CRC mismatch (stored {stored!r}, payload {expected})",
                        torn=final,
                    )
                )
                continue
        scanned.append(JournalLine(number, document, None))
    return scanned


class DurableJsonlWriter:
    """Append-only fsynced JSONL writer with per-record CRC32.

    Opens lazily on the first :meth:`append` (parent directories are
    created), writes one compact JSON line per record with a ``crc``
    field added, and flushes + fsyncs after every line, so a crash loses
    at most the line in flight and every line that *did* land verifies.
    Usable as a context manager.
    """

    def __init__(self, path: PathLike, *, crc: bool = True) -> None:
        self.path = Path(path)
        self._crc = crc
        self._handle: io.TextIOWrapper | None = None

    def append(self, document: Mapping) -> dict:
        """Write one record durably; returns the record as written
        (including its ``crc``)."""
        record = with_crc(document) if self._crc else dict(document)
        if self._handle is None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            except OSError as exc:
                raise CheckpointError(
                    f"cannot open journal {self.path}: {exc}"
                ) from exc
        line = json.dumps(record, separators=(",", ":"))
        try:
            self._handle.write(line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            raise CheckpointError(
                f"cannot append to journal {self.path}: {exc}"
            ) from exc
        return record

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def __enter__(self) -> "DurableJsonlWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def cell_key(point_label: str, replicate: int, method: str) -> CellKey:
    """The journal key of one ``(sweep point, trial, method)`` cell."""
    return (str(point_label), int(replicate), str(method))


def checkpoint_path_for(directory: PathLike, experiment_id: str) -> Path:
    """Canonical checkpoint location for one experiment under ``directory``
    (used by ``repro figure --checkpoint-dir/--resume``)."""
    return Path(directory) / f"{experiment_id}.checkpoint.jsonl"


def method_result_to_json(result: "MethodResult") -> dict:
    """Serialise one measurement to a journal line payload."""
    return {
        "format": _FORMAT,
        "experiment_id": result.experiment_id,
        "point_label": result.point_label,
        "point_value": result.point_value,
        "method": result.method,
        "replicate": result.replicate,
        "tp": result.metrics.true_positives,
        "fp": result.metrics.false_positives,
        "fn": result.metrics.false_negatives,
        "runtime_seconds": result.runtime_seconds,
        "threshold": result.threshold,
        "error": result.error,
        "attempts": result.attempts,
    }


def method_result_from_json(document: Mapping) -> "MethodResult":
    """Rebuild a :class:`~repro.evaluation.harness.MethodResult` from a
    journal line; raises :class:`CheckpointError` on malformed payloads."""
    from repro.evaluation.harness import MethodResult
    from repro.evaluation.metrics import EdgeMetrics

    if document.get("format") != _FORMAT:
        raise CheckpointError(
            f"not a checkpoint record: format={document.get('format')!r}"
        )
    try:
        threshold = document["threshold"]
        return MethodResult(
            experiment_id=str(document["experiment_id"]),
            point_label=str(document["point_label"]),
            # JSON round-trips int/float faithfully; coercing to float here
            # would make a resumed archive differ from the original on
            # integer sweep axes (e.g. network size).
            point_value=document["point_value"],
            method=str(document["method"]),
            replicate=int(document["replicate"]),
            metrics=EdgeMetrics(
                int(document["tp"]), int(document["fp"]), int(document["fn"])
            ),
            runtime_seconds=float(document["runtime_seconds"]),
            threshold=None if threshold is None else float(threshold),
            error=document.get("error"),
            attempts=int(document.get("attempts", 1)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint record: {exc}") from exc


class CheckpointJournal:
    """Append-only JSONL journal of completed sweep cells.

    Opens lazily on the first :meth:`record`, appends one CRC32-stamped
    JSON line per measurement via :class:`DurableJsonlWriter`, and
    flushes + fsyncs after every line so a crash loses at most the line
    being written.  Usable as a context manager.

    Parameters
    ----------
    path:
        Journal location; parent directories are created on first write.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; every
        successful append increments ``checkpoint_writes_total``.
        Defaults to the no-op registry.
    """

    def __init__(
        self,
        path: PathLike,
        metrics: "MetricsRegistry | NullMetrics" = NULL_METRICS,
    ) -> None:
        self.path = Path(path)
        self._writer = DurableJsonlWriter(path)
        self._metrics = metrics

    @property
    def _handle(self) -> io.TextIOWrapper | None:
        """Back-compat view of the underlying file handle (tests assert
        on close semantics through it)."""
        return self._writer._handle

    def record(self, result: "MethodResult") -> None:
        """Append one measurement and flush it to disk."""
        try:
            self._writer.append(method_result_to_json(result))
        except CheckpointError as exc:
            raise CheckpointError(str(exc).replace("journal", "checkpoint", 1)) from exc
        self._metrics.inc("checkpoint_writes_total")

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _warn_corrupt(path: Path, detail: str) -> None:
    warnings.warn(
        f"{path}: {detail}", JournalCorruptionWarning, stacklevel=3
    )


def load_checkpoint(
    path: PathLike, *, experiment_id: str | None = None
) -> dict[CellKey, "MethodResult"]:
    """Load a journal into ``{cell key: MethodResult}``.

    A missing file is an empty checkpoint (first run).  A truncated or
    corrupt **final** line — the partial-write signature of a crash — is
    dropped silently.  A damaged record anywhere *else* (bit flip, bad
    CRC, malformed payload) is detected, skipped, and reported with a
    :class:`~repro.exceptions.JournalCorruptionWarning`; the surviving
    records still load, so a resume recomputes the damaged cells instead
    of refusing the whole journal.  Duplicate cells keep the last
    occurrence; a byte-identical replay of an already-loaded record is
    flagged as a duplicate.  When ``experiment_id`` is given, a record
    from a different experiment raises :class:`CheckpointError` instead
    of contaminating the resume.
    """
    path = Path(path)
    cells: dict[CellKey, "MethodResult"] = {}
    payloads: dict[CellKey, int] = {}
    scanned = scan_journal(path)
    final_number = scanned[-1].number if scanned else 0
    for line in scanned:
        if not line.ok:
            if line.torn:
                # Partial write of the line in flight when the run died.
                continue
            _warn_corrupt(
                path,
                f"line {line.number}: corrupt checkpoint record skipped "
                f"({line.error})",
            )
            continue
        try:
            result = method_result_from_json(line.document)
        except CheckpointError as exc:
            if line.number == final_number:
                continue
            _warn_corrupt(
                path,
                f"line {line.number}: corrupt checkpoint record skipped ({exc})",
            )
            continue
        if experiment_id is not None and result.experiment_id != experiment_id:
            raise CheckpointError(
                f"{path}:{line.number}: record belongs to experiment "
                f"{result.experiment_id!r}, expected {experiment_id!r}"
            )
        key = cell_key(result.point_label, result.replicate, result.method)
        payload_crc = crc_of_document(line.document)
        if key in payloads and payloads[key] == payload_crc:
            _warn_corrupt(
                path,
                f"line {line.number}: duplicate record for cell {key} skipped "
                "(byte-identical replay)",
            )
            continue
        payloads[key] = payload_crc
        cells[key] = result
    return cells
