"""Per-figure experiment definitions (paper §V-B … §V-H, plus Table II).

Each builder returns an :class:`~repro.evaluation.harness.ExperimentSpec`
that regenerates one figure's data: the F-score panel comes from the
``f_score`` series and the running-time panel from the ``runtime_s``
series of the same run.

Two scales are supported:

* ``"full"`` — the paper's parameters (β = 150, all five sweep values,
  the real network sizes);
* ``"quick"`` — the same networks and sweep shape at reduced β and, for
  the β sweep itself, a 3-point subset; intended for CI-style smoke runs.

Table II is not an experiment but an inventory of the fifteen LFR graphs;
:func:`table2_rows` regenerates it from the actual generator output.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.baselines.base import TendsInferrer
from repro.evaluation.harness import (
    ExperimentSpec,
    MethodContext,
    MethodSpec,
    SweepPoint,
    default_methods,
)
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import DiffusionGraph
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.graphs.generators.realworld import dunf, netsci
from repro.graphs.metrics import summarize_graph

__all__ = ["FIGURES", "figure_spec", "list_figures", "table2_rows", "LFR_TABLE2"]

#: Paper defaults (§V-B …): β diffusion processes, seed ratio, mean prob.
PAPER_BETA = 150
PAPER_ALPHA = 0.15
PAPER_MU = 0.3

#: Table II: the fifteen LFR benchmark graphs, keyed LFR1..LFR15.
LFR_TABLE2: dict[str, LFRParams] = {}
for _index, _n in enumerate((100, 150, 200, 250, 300), start=1):
    LFR_TABLE2[f"LFR{_index}"] = LFRParams(n=_n, avg_degree=4, tau=2)
for _index, _k in enumerate((2, 3, 4, 5, 6), start=6):
    LFR_TABLE2[f"LFR{_index}"] = LFRParams(n=200, avg_degree=_k, tau=2)
for _index, _tau in enumerate((1.0, 1.5, 2.0, 2.5, 3.0), start=11):
    LFR_TABLE2[f"LFR{_index}"] = LFRParams(n=200, avg_degree=4, tau=_tau)


def _lfr_factory(params: LFRParams) -> Callable[[int], DiffusionGraph]:
    return lambda seed: lfr_benchmark_graph(params, seed=seed)


def _fixed_factory(builder: Callable[[int], DiffusionGraph]) -> Callable[[int], DiffusionGraph]:
    # Real-world surrogates are pinned to a fixed seed so every sweep point
    # sees the *same* network, as with a real dataset.
    return lambda seed: builder(0)


def _scale_beta(scale: str, beta: int) -> int:
    return beta if scale == "full" else min(beta, 60)


def _check_scale(scale: str) -> None:
    if scale not in ("full", "quick"):
        raise ConfigurationError(f"scale must be 'full' or 'quick', got {scale!r}")


# ----------------------------------------------------------------------
# synthetic-network figures (LFR sweeps)
# ----------------------------------------------------------------------

def fig1_network_size(scale: str = "full") -> ExperimentSpec:
    """Fig. 1: effect of diffusion network size (LFR1–5, n = 100…300)."""
    _check_scale(scale)
    points = tuple(
        SweepPoint(
            label=f"n={params.n}",
            value=params.n,
            graph_factory=_lfr_factory(params),
            beta=_scale_beta(scale, PAPER_BETA),
        )
        for params in (LFR_TABLE2[f"LFR{i}"] for i in range(1, 6))
    )
    return ExperimentSpec(
        experiment_id="fig1",
        title="Effect of Diffusion Network Size",
        x_label="number of nodes n",
        points=points,
        methods=default_methods(),
    )


def fig2_average_degree(scale: str = "full") -> ExperimentSpec:
    """Fig. 2: effect of average node degree (LFR6–10, κ = 2…6)."""
    _check_scale(scale)
    points = tuple(
        SweepPoint(
            label=f"k={int(params.avg_degree)}",
            value=params.avg_degree,
            graph_factory=_lfr_factory(params),
            beta=_scale_beta(scale, PAPER_BETA),
        )
        for params in (LFR_TABLE2[f"LFR{i}"] for i in range(6, 11))
    )
    return ExperimentSpec(
        experiment_id="fig2",
        title="Effect of Average Node Degree",
        x_label="average degree k",
        points=points,
        methods=default_methods(),
    )


def fig3_degree_dispersion(scale: str = "full") -> ExperimentSpec:
    """Fig. 3: effect of node degree dispersion (LFR11–15, τ = 1…3)."""
    _check_scale(scale)
    points = tuple(
        SweepPoint(
            label=f"tau={params.tau:g}",
            value=params.tau,
            graph_factory=_lfr_factory(params),
            beta=_scale_beta(scale, PAPER_BETA),
        )
        for params in (LFR_TABLE2[f"LFR{i}"] for i in range(11, 16))
    )
    return ExperimentSpec(
        experiment_id="fig3",
        title="Effect of Node Degree Dispersion",
        x_label="degree distribution parameter tau",
        points=points,
        methods=default_methods(),
    )


# ----------------------------------------------------------------------
# real-world-network figures (NetSci / DUNF sweeps)
# ----------------------------------------------------------------------

_REAL_NETWORKS: dict[str, Callable[[int], DiffusionGraph]] = {
    "netsci": _fixed_factory(netsci),
    "dunf": _fixed_factory(dunf),
}


def _alpha_sweep(network: str, fig_id: str, scale: str) -> ExperimentSpec:
    _check_scale(scale)
    factory = _REAL_NETWORKS[network]
    points = tuple(
        SweepPoint(
            label=f"alpha={alpha:.2f}",
            value=alpha,
            graph_factory=factory,
            alpha=alpha,
            beta=_scale_beta(scale, PAPER_BETA),
        )
        for alpha in (0.05, 0.10, 0.15, 0.20, 0.25)
    )
    return ExperimentSpec(
        experiment_id=fig_id,
        title=f"Effect of Initial Infection Ratio on {network}",
        x_label="initial infection ratio alpha",
        points=points,
        methods=default_methods(),
    )


def _mu_sweep(network: str, fig_id: str, scale: str) -> ExperimentSpec:
    _check_scale(scale)
    factory = _REAL_NETWORKS[network]
    points = tuple(
        SweepPoint(
            label=f"mu={mu:.2f}",
            value=mu,
            graph_factory=factory,
            mu=mu,
            beta=_scale_beta(scale, PAPER_BETA),
        )
        for mu in (0.20, 0.25, 0.30, 0.35, 0.40)
    )
    return ExperimentSpec(
        experiment_id=fig_id,
        title=f"Effect of Propagation Probability on {network}",
        x_label="mean propagation probability mu",
        points=points,
        methods=default_methods(),
    )


def _beta_sweep(network: str, fig_id: str, scale: str) -> ExperimentSpec:
    _check_scale(scale)
    factory = _REAL_NETWORKS[network]
    betas = (50, 100, 150, 200, 250) if scale == "full" else (50, 150, 250)
    points = tuple(
        SweepPoint(
            label=f"beta={beta}",
            value=beta,
            graph_factory=factory,
            beta=beta,
        )
        for beta in betas
    )
    return ExperimentSpec(
        experiment_id=fig_id,
        title=f"Effect of Number of Diffusion Processes on {network}",
        x_label="number of diffusion processes beta",
        points=points,
        methods=default_methods(),
    )


def fig4_alpha_netsci(scale: str = "full") -> ExperimentSpec:
    """Fig. 4: initial infection ratio sweep on NetSci."""
    return _alpha_sweep("netsci", "fig4", scale)


def fig5_alpha_dunf(scale: str = "full") -> ExperimentSpec:
    """Fig. 5: initial infection ratio sweep on DUNF."""
    return _alpha_sweep("dunf", "fig5", scale)


def fig6_mu_netsci(scale: str = "full") -> ExperimentSpec:
    """Fig. 6: propagation probability sweep on NetSci."""
    return _mu_sweep("netsci", "fig6", scale)


def fig7_mu_dunf(scale: str = "full") -> ExperimentSpec:
    """Fig. 7: propagation probability sweep on DUNF."""
    return _mu_sweep("dunf", "fig7", scale)


def fig8_beta_netsci(scale: str = "full") -> ExperimentSpec:
    """Fig. 8: number-of-processes sweep on NetSci."""
    return _beta_sweep("netsci", "fig8", scale)


def fig9_beta_dunf(scale: str = "full") -> ExperimentSpec:
    """Fig. 9: number-of-processes sweep on DUNF."""
    return _beta_sweep("dunf", "fig9", scale)


# ----------------------------------------------------------------------
# pruning ablation figures (TENDS threshold sweep + MI vs IMI)
# ----------------------------------------------------------------------

def _tends_threshold_methods() -> tuple[MethodSpec, ...]:
    """Two TENDS variants whose pruning threshold tracks the sweep point:
    the paper's infection MI and the traditional-MI ablation."""

    def infection_factory(ctx: MethodContext):
        scale = float(ctx.point.value) if ctx.point is not None else 1.0
        return TendsInferrer(mi_kind="infection", threshold_scale=scale)

    def traditional_factory(ctx: MethodContext):
        scale = float(ctx.point.value) if ctx.point is not None else 1.0
        return TendsInferrer(mi_kind="traditional", threshold_scale=scale)

    return (
        MethodSpec("TENDS(IMI)", infection_factory),
        MethodSpec("TENDS(MI)", traditional_factory),
    )


def _pruning_sweep(network: str, fig_id: str, scale: str) -> ExperimentSpec:
    _check_scale(scale)
    factory = _REAL_NETWORKS[network]
    scales = (0.4, 0.6, 0.8, 1.0, 1.5, 2.0)
    points = tuple(
        SweepPoint(
            label=f"{s:g}tau",
            value=s,
            graph_factory=factory,
            beta=_scale_beta(scale, PAPER_BETA),
        )
        for s in scales
    )
    return ExperimentSpec(
        experiment_id=fig_id,
        title=f"Effect of Infection MI-based Pruning on {network}",
        x_label="pruning threshold (multiples of the auto-selected tau)",
        points=points,
        methods=_tends_threshold_methods(),
    )


def fig10_pruning_netsci(scale: str = "full") -> ExperimentSpec:
    """Fig. 10: pruning-threshold sweep + MI-vs-IMI ablation on NetSci."""
    return _pruning_sweep("netsci", "fig10", scale)


def fig11_pruning_dunf(scale: str = "full") -> ExperimentSpec:
    """Fig. 11: pruning-threshold sweep + MI-vs-IMI ablation on DUNF."""
    return _pruning_sweep("dunf", "fig11", scale)


# ----------------------------------------------------------------------
# registry + Table II
# ----------------------------------------------------------------------

FIGURES: dict[str, Callable[[str], ExperimentSpec]] = {
    "fig1": fig1_network_size,
    "fig2": fig2_average_degree,
    "fig3": fig3_degree_dispersion,
    "fig4": fig4_alpha_netsci,
    "fig5": fig5_alpha_dunf,
    "fig6": fig6_mu_netsci,
    "fig7": fig7_mu_dunf,
    "fig8": fig8_beta_netsci,
    "fig9": fig9_beta_dunf,
    "fig10": fig10_pruning_netsci,
    "fig11": fig11_pruning_dunf,
}


def list_figures() -> list[str]:
    """Figure ids in paper order."""
    return list(FIGURES)


def figure_spec(
    figure_id: str, scale: str = "full", *, replicates: int = 1
) -> ExperimentSpec:
    """Look up a figure's experiment spec by id (``"fig1"`` … ``"fig11"``).

    The robustness degradation-benchmark family is addressable here too:
    ``"robustness-<kind>"`` (e.g. ``"robustness-missing"``) resolves via
    :func:`repro.evaluation.robustness.robustness_spec`.  Those ids are
    deliberately *not* part of :func:`list_figures`, which stays pinned to
    the paper's eleven figures.

    ``replicates`` reruns every sweep cell with independent seeds and lets
    the harness report mean/min/max F-scores (the paper reports single
    runs; replicates > 1 smooth seed noise for shape checks).
    """
    if figure_id.startswith("robustness-"):
        from repro.evaluation.robustness import robustness_spec

        return robustness_spec(
            figure_id[len("robustness-"):], scale, replicates=replicates
        )
    if figure_id not in FIGURES:
        from repro.evaluation.robustness import list_robustness_figures

        raise ConfigurationError(
            f"unknown figure {figure_id!r}; available: "
            f"{list_figures() + list_robustness_figures()}"
        )
    spec = FIGURES[figure_id](scale)
    if replicates != 1:
        from dataclasses import replace

        spec = replace(spec, replicates=replicates)
    return spec


def table2_rows(*, seed: int = 0) -> list[dict[str, object]]:
    """Regenerate Table II: properties of the fifteen LFR benchmark graphs.

    Each row reports the requested parameters alongside the realised
    statistics of the generated graph, so the table doubles as a generator
    validation.
    """
    rows: list[dict[str, object]] = []
    for name, params in LFR_TABLE2.items():
        graph = lfr_benchmark_graph(params, seed=seed)
        summary = summarize_graph(graph)
        rows.append(
            {
                "graph": name,
                "n": params.n,
                "k_requested": params.avg_degree,
                "tau": params.tau,
                "m_realised": summary.n_edges,
                "k_realised": round(summary.avg_degree, 3),
                "degree_std": round(summary.total_degree_std, 3),
            }
        )
    return rows
