"""Evaluation harness: metrics, experiment runner, per-figure specs."""

from repro.evaluation.archive import (
    load_result,
    result_from_json,
    result_to_json,
    save_result,
)
from repro.evaluation.drift import (
    DRIFT_MODES,
    DriftCell,
    DriftExperimentResult,
    run_drift_experiment,
)
from repro.evaluation.metrics import (
    EdgeMetrics,
    best_threshold_metrics,
    evaluate_edges,
    precision_recall_curve,
)
from repro.evaluation.harness import (
    ExperimentResult,
    ExperimentSpec,
    MethodResult,
    MethodSpec,
    SweepPoint,
    default_methods,
    run_experiment,
)
from repro.evaluation.figures import (
    FIGURES,
    figure_spec,
    list_figures,
    table2_rows,
)
from repro.evaluation.reporting import format_result_table, format_rows
from repro.evaluation.shapes import (
    FIGURE_SHAPES,
    ShapeCheck,
    ShapeOutcome,
    check_figure_shapes,
)

__all__ = [
    "DRIFT_MODES",
    "DriftCell",
    "DriftExperimentResult",
    "run_drift_experiment",
    "EdgeMetrics",
    "evaluate_edges",
    "best_threshold_metrics",
    "precision_recall_curve",
    "MethodSpec",
    "MethodResult",
    "SweepPoint",
    "ExperimentSpec",
    "ExperimentResult",
    "default_methods",
    "run_experiment",
    "FIGURES",
    "figure_spec",
    "list_figures",
    "table2_rows",
    "format_result_table",
    "format_rows",
    "FIGURE_SHAPES",
    "ShapeCheck",
    "ShapeOutcome",
    "check_figure_shapes",
    "result_to_json",
    "result_from_json",
    "save_result",
    "load_result",
]
