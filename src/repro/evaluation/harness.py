"""Experiment runner: sweep → simulate → infer → score, per method.

The paper's evaluation figures all share one protocol: sweep a single
parameter (network size, average degree, dispersion, α, μ, β, pruning
threshold), simulate ``β`` diffusion processes per sweep point, run every
algorithm on the *same* observations, and report per-algorithm F-score and
running time.  :func:`run_experiment` implements that protocol once;
``repro.evaluation.figures`` instantiates it per figure.

Fault tolerance
---------------
A sweep is many ``(point, method, trial)`` cells and a single fragile
baseline must not discard the finished ones.  Each method run therefore
executes inside a failure boundary: ``on_error="skip"`` records the
captured exception as a failed :class:`MethodResult` (F-score ``nan``)
and moves on, ``"retry"`` re-runs the method up to ``method_attempts``
times first, and ``"raise"`` (the default) preserves the historical
fail-fast behaviour.  A ``method_timeout`` bounds each method's
wall-clock; completed cells can be journaled to an append-only JSONL
checkpoint and skipped on a resumed run (``checkpoint_path`` /
``resume_from`` — see :mod:`repro.evaluation.checkpoint`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.baselines.base import (
    InferenceOutput,
    NetworkInferrer,
    Observations,
    TendsInferrer,
)
from repro.baselines.correlation import CorrelationRanker
from repro.baselines.lift import Lift
from repro.baselines.multree import MulTree
from repro.baselines.netinf import NetInf
from repro.baselines.netrate import NetRate
from repro.baselines.path import Path as PathBaseline
from repro.evaluation.metrics import (
    EdgeMetrics,
    best_threshold_metrics,
    evaluate_edges,
)
from repro.exceptions import ConfigurationError, MethodTimeoutError
from repro.graphs.digraph import DiffusionGraph
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.telemetry import Telemetry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer, ambient_tracer
from repro.simulation.engine import DiffusionSimulator
from repro.utils.rng import derive_seed
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_positive_int

__all__ = [
    "GraphFactory",
    "MethodContext",
    "MethodSpec",
    "SweepPoint",
    "ExperimentSpec",
    "MethodResult",
    "ExperimentResult",
    "ON_ERROR_POLICIES",
    "default_methods",
    "run_experiment",
]

#: A graph factory maps a derived seed to a ground-truth network.
GraphFactory = Callable[[int], DiffusionGraph]


@dataclass(frozen=True)
class MethodContext:
    """What a method factory may inspect before constructing an inferrer.

    ``true_edge_count`` exists because the paper's protocol hands MulTree
    and LIFT the real number of edges ``m`` (§V-A); ``point`` lets
    per-sweep-point method variants (the Fig. 10–11 threshold sweep) read
    the current x value.
    """

    truth: DiffusionGraph
    observations: Observations
    point: "SweepPoint | None" = None

    @property
    def true_edge_count(self) -> int:
        return self.truth.n_edges


@dataclass(frozen=True)
class MethodSpec:
    """One algorithm entry in a comparison.

    Attributes
    ----------
    name:
        Label for report tables.
    factory:
        Builds the inferrer for one (network, observations) cell.
    best_threshold:
        When ``True``, accuracy is the best F-score over the method's
        edge-score thresholds (the paper's preferential treatment of
        NetRate) instead of the hard topology it returned.
    """

    name: str
    factory: Callable[[MethodContext], NetworkInferrer]
    best_threshold: bool = False


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis position of a figure.

    Attributes
    ----------
    label / value:
        Tick label (e.g. ``"n=200"``) and numeric x value.
    graph_factory:
        Ground-truth network builder for this point.
    mu / alpha / beta:
        Simulation parameters (paper defaults 0.3 / 0.15 / 150).
    observation_transform:
        Optional hook applied to the simulated observations before any
        method sees them, as ``transform(observations, seed)`` with a
        seed derived from the cell seed (so the transform is
        deterministic per cell and independent of method order).  The
        robustness degradation benchmark injects observation corruption
        here; every method at the point still sees the *same* corrupted
        data.  Scoring remains against the clean ground-truth graph.
    """

    label: str
    value: float
    graph_factory: GraphFactory
    mu: float = 0.3
    alpha: float = 0.15
    beta: int = 150
    observation_transform: (
        "Callable[[Observations, int], Observations] | None"
    ) = None


@dataclass(frozen=True)
class ExperimentSpec:
    """A full figure: sweep points × methods × replicates."""

    experiment_id: str
    title: str
    x_label: str
    points: tuple[SweepPoint, ...]
    methods: tuple[MethodSpec, ...]
    replicates: int = 1

    def __post_init__(self) -> None:
        check_positive_int("replicates", self.replicates)
        if not self.points:
            raise ConfigurationError(f"{self.experiment_id}: no sweep points")
        if not self.methods:
            raise ConfigurationError(f"{self.experiment_id}: no methods")


@dataclass(frozen=True)
class MethodResult:
    """One (sweep point, method, replicate) measurement.

    A *failed* cell (the method raised or timed out inside the harness
    failure boundary) carries ``error`` — the captured exception message —
    zeroed metrics, and an F-score of ``nan`` so failures can never be
    mistaken for a legitimate 0.0.

    ``telemetry`` holds the :class:`~repro.obs.telemetry.Telemetry` the
    method's inferrer recorded, when it recorded any (TENDS with
    ``trace=True``).  It is in-memory only: checkpoints and archives do
    not serialise it, so a resumed cell always carries ``None``.
    """

    experiment_id: str
    point_label: str
    point_value: float
    method: str
    replicate: int
    metrics: EdgeMetrics
    runtime_seconds: float
    threshold: float | None = None  # best-threshold operating point, if used
    error: str | None = None  # captured exception when the method failed
    attempts: int = 1  # executions inside the failure boundary
    telemetry: Telemetry | None = None  # per-fit spans/metrics (not journaled)

    @property
    def ok(self) -> bool:
        """True when the method produced a real measurement."""
        return self.error is None

    @property
    def f_score(self) -> float:
        if self.error is not None:
            return math.nan
        return self.metrics.f_score

    @classmethod
    def failed(
        cls,
        spec: "ExperimentSpec",
        point: "SweepPoint",
        replicate: int,
        method: str,
        exception: BaseException,
        runtime_seconds: float,
        attempts: int,
    ) -> "MethodResult":
        """Record a method crash/timeout as data instead of killing the sweep."""
        return cls(
            experiment_id=spec.experiment_id,
            point_label=point.label,
            point_value=point.value,
            method=method,
            replicate=replicate,
            metrics=EdgeMetrics(0, 0, 0),
            runtime_seconds=runtime_seconds,
            threshold=None,
            error=f"{type(exception).__name__}: {exception}",
            attempts=attempts,
        )


@dataclass(frozen=True)
class ExperimentResult:
    """All measurements of one experiment, with aggregation helpers."""

    spec: ExperimentSpec
    results: tuple[MethodResult, ...]

    def methods(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.results:
            seen.setdefault(r.method, None)
        return list(seen)

    def failures(self) -> list[MethodResult]:
        """Cells whose method crashed or timed out (``error`` set)."""
        return [r for r in self.results if not r.ok]

    def aggregated(self) -> list[dict[str, float | str]]:
        """One row per (point, method): mean F-score and mean runtime.

        Failed replicates are excluded from the means (their F-score is
        ``nan`` and would poison the aggregate) but reported in the
        ``failed`` column; a cell whose every replicate failed keeps its
        row with ``nan`` aggregates so the failure stays visible.
        """
        groups: dict[tuple[str, float, str], list[MethodResult]] = {}
        for r in self.results:
            groups.setdefault((r.point_label, r.point_value, r.method), []).append(r)
        rows: list[dict[str, float | str]] = []
        for (label, value, method), cell in sorted(
            groups.items(), key=lambda kv: (kv[0][1], kv[0][2])
        ):
            good = [r for r in cell if r.ok]
            f_scores = [r.f_score for r in good]
            runtimes = [r.runtime_seconds for r in good]
            rows.append(
                {
                    "point": label,
                    "value": value,
                    "method": method,
                    "f_score": (
                        sum(f_scores) / len(f_scores) if f_scores else math.nan
                    ),
                    "f_score_min": min(f_scores) if f_scores else math.nan,
                    "f_score_max": max(f_scores) if f_scores else math.nan,
                    "runtime_s": (
                        sum(runtimes) / len(runtimes) if runtimes else math.nan
                    ),
                    "replicates": len(cell),
                    "failed": len(cell) - len(good),
                }
            )
        return rows

    def series(self, field_name: str = "f_score") -> dict[str, list[float]]:
        """Per-method series over the sweep (for plotting/shape checks)."""
        rows = self.aggregated()
        ordered_points = [p.label for p in self.spec.points]
        output: dict[str, list[float]] = {}
        for method in self.methods():
            by_point = {
                row["point"]: float(row[field_name])
                for row in rows
                if row["method"] == method
            }
            output[method] = [by_point[p] for p in ordered_points if p in by_point]
        return output


# ----------------------------------------------------------------------
# method roster
# ----------------------------------------------------------------------

def default_methods(
    *,
    include: Iterable[str] = ("TENDS", "NetRate", "MulTree", "LIFT"),
    netrate_iterations: int = 60,
    tends_overrides: Mapping[str, object] | None = None,
) -> tuple[MethodSpec, ...]:
    """The paper's §V-A roster (plus optional NetInf / CORR extensions).

    MulTree, LIFT, NetInf and CORR receive the true edge count ``m`` via
    the :class:`MethodContext`, per the paper's protocol; NetRate gets the
    best-threshold treatment.  ``tends_overrides`` forwards
    :class:`~repro.core.config.TendsConfig` fields to the TENDS entry —
    e.g. ``{"executor": "process", "n_jobs": 4}`` to parallelise the
    parent searches (figure runs additionally honour the
    ``REPRO_EXECUTOR`` / ``REPRO_N_JOBS`` environment fallbacks even
    without overrides; see :mod:`repro.core.executor`).
    """
    tends_kwargs = dict(tends_overrides or {})
    registry: dict[str, MethodSpec] = {
        "TENDS": MethodSpec("TENDS", lambda ctx: TendsInferrer(**tends_kwargs)),
        "NetRate": MethodSpec(
            "NetRate",
            lambda ctx: NetRate(max_iterations=netrate_iterations),
            best_threshold=True,
        ),
        "MulTree": MethodSpec(
            "MulTree", lambda ctx: MulTree(ctx.true_edge_count)
        ),
        "LIFT": MethodSpec("LIFT", lambda ctx: Lift(ctx.true_edge_count)),
        "NetInf": MethodSpec("NetInf", lambda ctx: NetInf(ctx.true_edge_count)),
        "CORR": MethodSpec(
            "CORR", lambda ctx: CorrelationRanker(ctx.true_edge_count)
        ),
        "PATH": MethodSpec("PATH", lambda ctx: PathBaseline(ctx.true_edge_count)),
    }
    chosen: list[MethodSpec] = []
    for name in include:
        if name not in registry:
            raise ConfigurationError(
                f"unknown method {name!r}; available: {sorted(registry)}"
            )
        chosen.append(registry[name])
    return tuple(chosen)


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------

ON_ERROR_POLICIES = ("raise", "skip", "retry")


def run_experiment(
    spec: ExperimentSpec,
    *,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
    on_error: str = "raise",
    method_attempts: int = 2,
    method_timeout: float | None = None,
    checkpoint_path: "str | Path | None" = None,
    resume_from: "str | Path | None" = None,
    retry_failed: bool = False,
    tracer: "Tracer | NullTracer" = NULL_TRACER,
    metrics: "MetricsRegistry | NullMetrics" = NULL_METRICS,
) -> ExperimentResult:
    """Execute an experiment spec and collect every measurement.

    Seeding is deterministic: each (point, replicate) derives its own seed
    from ``seed`` and the point label, so adding methods or reordering
    points never changes the simulated data — and a resumed run is
    bit-identical to an uninterrupted one.

    Parameters
    ----------
    spec / seed / progress:
        As before: the sweep definition, master seed, and an optional
        progress callback.
    on_error:
        Failure boundary around each method run.  ``"raise"`` (default)
        propagates the first method exception — the historical fail-fast
        behaviour.  ``"skip"`` records the captured exception as a failed
        :class:`MethodResult` (F-score ``nan``) and continues the sweep.
        ``"retry"`` re-runs the failing method up to ``method_attempts``
        times, then records the failure like ``"skip"``.
    method_attempts:
        Executions per method under ``on_error="retry"`` (>= 1).
    method_timeout:
        Per-method wall-clock budget in seconds.  A method exceeding it is
        treated as having raised
        :class:`~repro.exceptions.MethodTimeoutError` (so ``on_error``
        decides what happens).  The method runs on a worker thread when a
        timeout is set; a timed-out method cannot be preempted, only
        abandoned — its thread finishes in the background.
    checkpoint_path:
        Journal every completed cell to this append-only JSONL file (see
        :mod:`repro.evaluation.checkpoint`).  May equal ``resume_from``.
    resume_from:
        Load this checkpoint and skip every journaled cell; sweep points
        whose cells are all journaled are not even re-simulated.
    retry_failed:
        When resuming, re-run journaled cells that recorded a failure
        instead of carrying the failure over.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`.  When enabled, the
        sweep records a ``harness.run`` span with one ``harness.cell``
        span per method run, installed as the ambient tracer for the
        duration (so executor/search spans of traced methods nest
        underneath).  Defaults to the zero-overhead null tracer.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        harness counters (cells run / failed / resumed, method retries,
        checkpoint writes).  Defaults to the no-op registry.
    """
    if on_error not in ON_ERROR_POLICIES:
        raise ConfigurationError(
            f"unknown on_error policy {on_error!r}; available: {ON_ERROR_POLICIES}"
        )
    check_positive_int("method_attempts", method_attempts)
    if method_timeout is not None and method_timeout <= 0:
        raise ConfigurationError(
            f"method_timeout must be positive, got {method_timeout}"
        )

    from repro.evaluation.checkpoint import CheckpointJournal, cell_key, load_checkpoint

    completed: dict[tuple[str, int, str], MethodResult] = {}
    if resume_from is not None:
        completed = load_checkpoint(resume_from, experiment_id=spec.experiment_id)
        if retry_failed:
            completed = {key: r for key, r in completed.items() if r.ok}

    journal = (
        CheckpointJournal(checkpoint_path, metrics=metrics)
        if checkpoint_path is not None
        else None
    )
    results: list[MethodResult] = []
    try:
        with ambient_tracer(tracer), tracer.span(
            "harness.run", experiment=spec.experiment_id
        ):
            for point in spec.points:
                for replicate in range(spec.replicates):
                    missing = [
                        method
                        for method in spec.methods
                        if cell_key(point.label, replicate, method.name)
                        not in completed
                    ]
                    if not missing:
                        # Every cell of this (point, replicate) is journaled:
                        # skip the simulation entirely.  Cell seeds are derived
                        # independently, so other cells are unaffected.
                        results.extend(
                            completed[cell_key(point.label, replicate, m.name)]
                            for m in spec.methods
                        )
                        metrics.inc(
                            "harness_cells_resumed_total", len(spec.methods)
                        )
                        continue
                    cell_seed = derive_seed(
                        seed, spec.experiment_id, point.label, replicate
                    )
                    with tracer.span(
                        "harness.simulate", point=point.label, replicate=replicate
                    ):
                        truth = point.graph_factory(cell_seed)
                        simulator = DiffusionSimulator(
                            truth,
                            mu=point.mu,
                            alpha=point.alpha,
                            seed=derive_seed(cell_seed, "simulation"),
                        )
                        observations = Observations.from_simulation(
                            simulator.run(point.beta)
                        )
                        if point.observation_transform is not None:
                            observations = point.observation_transform(
                                observations, derive_seed(cell_seed, "corruption")
                            )
                    context = MethodContext(
                        truth=truth, observations=observations, point=point
                    )
                    for method in spec.methods:
                        key = cell_key(point.label, replicate, method.name)
                        if key in completed:
                            results.append(completed[key])
                            metrics.inc("harness_cells_resumed_total")
                            continue
                        if progress is not None:
                            progress(
                                f"[{spec.experiment_id}] {point.label} "
                                f"rep={replicate} {method.name}"
                            )
                        with tracer.span(
                            "harness.cell",
                            point=point.label,
                            replicate=replicate,
                            method=method.name,
                        ):
                            result = _run_method_guarded(
                                spec,
                                point,
                                replicate,
                                method,
                                context,
                                on_error=on_error,
                                method_attempts=method_attempts,
                                method_timeout=method_timeout,
                            )
                        results.append(result)
                        metrics.inc("harness_cells_total")
                        if not result.ok:
                            metrics.inc("harness_cells_failed_total")
                        if result.attempts > 1:
                            metrics.inc(
                                "harness_method_retries_total",
                                result.attempts - 1,
                            )
                        if journal is not None:
                            journal.record(result)
    finally:
        if journal is not None:
            journal.close()
    return ExperimentResult(spec=spec, results=tuple(results))


def _run_method_guarded(
    spec: ExperimentSpec,
    point: SweepPoint,
    replicate: int,
    method: MethodSpec,
    context: MethodContext,
    *,
    on_error: str,
    method_attempts: int,
    method_timeout: float | None,
) -> MethodResult:
    """The failure boundary: one method run, isolated from the sweep.

    ``KeyboardInterrupt``/``SystemExit`` always propagate — a Ctrl-C must
    stop the sweep (the checkpoint preserves finished cells), never be
    recorded as a method failure.
    """
    attempts = 1 if on_error != "retry" else method_attempts
    last_error: BaseException | None = None
    with Stopwatch() as watch:
        for attempt in range(1, attempts + 1):
            try:
                return replace(
                    _run_method(
                        spec, point, replicate, method, context,
                        timeout=method_timeout,
                    ),
                    attempts=attempt,
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                last_error = exc
                if on_error == "raise":
                    raise
    assert last_error is not None
    return MethodResult.failed(
        spec, point, replicate, method.name, last_error, watch.elapsed, attempts
    )


def _run_method(
    spec: ExperimentSpec,
    point: SweepPoint,
    replicate: int,
    method: MethodSpec,
    context: MethodContext,
    *,
    timeout: float | None = None,
) -> MethodResult:
    inferrer = method.factory(context)
    with Stopwatch() as watch:
        output = _infer_with_timeout(inferrer, context.observations, timeout)
    # Inferrers that keep their last fit result around (TendsInferrer)
    # may have recorded telemetry; surface it on the measurement.
    telemetry = getattr(getattr(inferrer, "last_result", None), "telemetry", None)
    threshold: float | None = None
    if method.best_threshold and output.edge_scores:
        metrics, threshold = best_threshold_metrics(context.truth, output.edge_scores)
    else:
        metrics = evaluate_edges(context.truth, output.graph)
    return MethodResult(
        experiment_id=spec.experiment_id,
        point_label=point.label,
        point_value=point.value,
        method=method.name,
        replicate=replicate,
        metrics=metrics,
        runtime_seconds=watch.elapsed,
        threshold=threshold,
        telemetry=telemetry if isinstance(telemetry, Telemetry) else None,
    )


def _infer_with_timeout(
    inferrer: NetworkInferrer, observations: Observations, timeout: float | None
) -> InferenceOutput:
    """Run ``inferrer.infer`` with an optional wall-clock budget.

    Without a timeout the call runs inline (zero overhead, the historical
    code path).  With one, it runs on a single worker thread and a missed
    deadline raises :class:`~repro.exceptions.MethodTimeoutError`; the
    abandoned thread finishes in the background (Python cannot kill it),
    so method factories should produce side-effect-free inferrers.
    """
    if timeout is None:
        return inferrer.infer(observations)
    from concurrent.futures import ThreadPoolExecutor
    from concurrent.futures import TimeoutError as FutureTimeoutError

    pool = ThreadPoolExecutor(max_workers=1, thread_name_prefix="method")
    try:
        future = pool.submit(inferrer.infer, observations)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            future.cancel()
            raise MethodTimeoutError(
                f"{type(inferrer).__name__}.infer exceeded its "
                f"{timeout}s budget",
                timeout=timeout,
            ) from None
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
