"""Experiment runner: sweep → simulate → infer → score, per method.

The paper's evaluation figures all share one protocol: sweep a single
parameter (network size, average degree, dispersion, α, μ, β, pruning
threshold), simulate ``β`` diffusion processes per sweep point, run every
algorithm on the *same* observations, and report per-algorithm F-score and
running time.  :func:`run_experiment` implements that protocol once;
``repro.evaluation.figures`` instantiates it per figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping, Sequence

from repro.baselines.base import (
    InferenceOutput,
    NetworkInferrer,
    Observations,
    TendsInferrer,
)
from repro.baselines.correlation import CorrelationRanker
from repro.baselines.lift import Lift
from repro.baselines.multree import MulTree
from repro.baselines.netinf import NetInf
from repro.baselines.netrate import NetRate
from repro.baselines.path import Path
from repro.evaluation.metrics import (
    EdgeMetrics,
    best_threshold_metrics,
    evaluate_edges,
)
from repro.exceptions import ConfigurationError
from repro.graphs.digraph import DiffusionGraph
from repro.simulation.engine import DiffusionSimulator
from repro.utils.rng import derive_seed
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_positive_int

__all__ = [
    "GraphFactory",
    "MethodContext",
    "MethodSpec",
    "SweepPoint",
    "ExperimentSpec",
    "MethodResult",
    "ExperimentResult",
    "default_methods",
    "run_experiment",
]

#: A graph factory maps a derived seed to a ground-truth network.
GraphFactory = Callable[[int], DiffusionGraph]


@dataclass(frozen=True)
class MethodContext:
    """What a method factory may inspect before constructing an inferrer.

    ``true_edge_count`` exists because the paper's protocol hands MulTree
    and LIFT the real number of edges ``m`` (§V-A); ``point`` lets
    per-sweep-point method variants (the Fig. 10–11 threshold sweep) read
    the current x value.
    """

    truth: DiffusionGraph
    observations: Observations
    point: "SweepPoint | None" = None

    @property
    def true_edge_count(self) -> int:
        return self.truth.n_edges


@dataclass(frozen=True)
class MethodSpec:
    """One algorithm entry in a comparison.

    Attributes
    ----------
    name:
        Label for report tables.
    factory:
        Builds the inferrer for one (network, observations) cell.
    best_threshold:
        When ``True``, accuracy is the best F-score over the method's
        edge-score thresholds (the paper's preferential treatment of
        NetRate) instead of the hard topology it returned.
    """

    name: str
    factory: Callable[[MethodContext], NetworkInferrer]
    best_threshold: bool = False


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis position of a figure.

    Attributes
    ----------
    label / value:
        Tick label (e.g. ``"n=200"``) and numeric x value.
    graph_factory:
        Ground-truth network builder for this point.
    mu / alpha / beta:
        Simulation parameters (paper defaults 0.3 / 0.15 / 150).
    """

    label: str
    value: float
    graph_factory: GraphFactory
    mu: float = 0.3
    alpha: float = 0.15
    beta: int = 150


@dataclass(frozen=True)
class ExperimentSpec:
    """A full figure: sweep points × methods × replicates."""

    experiment_id: str
    title: str
    x_label: str
    points: tuple[SweepPoint, ...]
    methods: tuple[MethodSpec, ...]
    replicates: int = 1

    def __post_init__(self) -> None:
        check_positive_int("replicates", self.replicates)
        if not self.points:
            raise ConfigurationError(f"{self.experiment_id}: no sweep points")
        if not self.methods:
            raise ConfigurationError(f"{self.experiment_id}: no methods")


@dataclass(frozen=True)
class MethodResult:
    """One (sweep point, method, replicate) measurement."""

    experiment_id: str
    point_label: str
    point_value: float
    method: str
    replicate: int
    metrics: EdgeMetrics
    runtime_seconds: float
    threshold: float | None = None  # best-threshold operating point, if used

    @property
    def f_score(self) -> float:
        return self.metrics.f_score


@dataclass(frozen=True)
class ExperimentResult:
    """All measurements of one experiment, with aggregation helpers."""

    spec: ExperimentSpec
    results: tuple[MethodResult, ...]

    def methods(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.results:
            seen.setdefault(r.method, None)
        return list(seen)

    def aggregated(self) -> list[dict[str, float | str]]:
        """One row per (point, method): mean F-score and mean runtime."""
        groups: dict[tuple[str, float, str], list[MethodResult]] = {}
        for r in self.results:
            groups.setdefault((r.point_label, r.point_value, r.method), []).append(r)
        rows: list[dict[str, float | str]] = []
        for (label, value, method), cell in sorted(
            groups.items(), key=lambda kv: (kv[0][1], kv[0][2])
        ):
            f_scores = [r.f_score for r in cell]
            runtimes = [r.runtime_seconds for r in cell]
            rows.append(
                {
                    "point": label,
                    "value": value,
                    "method": method,
                    "f_score": sum(f_scores) / len(f_scores),
                    "f_score_min": min(f_scores),
                    "f_score_max": max(f_scores),
                    "runtime_s": sum(runtimes) / len(runtimes),
                    "replicates": len(cell),
                }
            )
        return rows

    def series(self, field_name: str = "f_score") -> dict[str, list[float]]:
        """Per-method series over the sweep (for plotting/shape checks)."""
        rows = self.aggregated()
        ordered_points = [p.label for p in self.spec.points]
        output: dict[str, list[float]] = {}
        for method in self.methods():
            by_point = {
                row["point"]: float(row[field_name])
                for row in rows
                if row["method"] == method
            }
            output[method] = [by_point[p] for p in ordered_points if p in by_point]
        return output


# ----------------------------------------------------------------------
# method roster
# ----------------------------------------------------------------------

def default_methods(
    *,
    include: Iterable[str] = ("TENDS", "NetRate", "MulTree", "LIFT"),
    netrate_iterations: int = 60,
    tends_overrides: Mapping[str, object] | None = None,
) -> tuple[MethodSpec, ...]:
    """The paper's §V-A roster (plus optional NetInf / CORR extensions).

    MulTree, LIFT, NetInf and CORR receive the true edge count ``m`` via
    the :class:`MethodContext`, per the paper's protocol; NetRate gets the
    best-threshold treatment.  ``tends_overrides`` forwards
    :class:`~repro.core.config.TendsConfig` fields to the TENDS entry —
    e.g. ``{"executor": "process", "n_jobs": 4}`` to parallelise the
    parent searches (figure runs additionally honour the
    ``REPRO_EXECUTOR`` / ``REPRO_N_JOBS`` environment fallbacks even
    without overrides; see :mod:`repro.core.executor`).
    """
    tends_kwargs = dict(tends_overrides or {})
    registry: dict[str, MethodSpec] = {
        "TENDS": MethodSpec("TENDS", lambda ctx: TendsInferrer(**tends_kwargs)),
        "NetRate": MethodSpec(
            "NetRate",
            lambda ctx: NetRate(max_iterations=netrate_iterations),
            best_threshold=True,
        ),
        "MulTree": MethodSpec(
            "MulTree", lambda ctx: MulTree(ctx.true_edge_count)
        ),
        "LIFT": MethodSpec("LIFT", lambda ctx: Lift(ctx.true_edge_count)),
        "NetInf": MethodSpec("NetInf", lambda ctx: NetInf(ctx.true_edge_count)),
        "CORR": MethodSpec(
            "CORR", lambda ctx: CorrelationRanker(ctx.true_edge_count)
        ),
        "PATH": MethodSpec("PATH", lambda ctx: Path(ctx.true_edge_count)),
    }
    chosen: list[MethodSpec] = []
    for name in include:
        if name not in registry:
            raise ConfigurationError(
                f"unknown method {name!r}; available: {sorted(registry)}"
            )
        chosen.append(registry[name])
    return tuple(chosen)


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------

def run_experiment(
    spec: ExperimentSpec,
    *,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> ExperimentResult:
    """Execute an experiment spec and collect every measurement.

    Seeding is deterministic: each (point, replicate) derives its own seed
    from ``seed`` and the point label, so adding methods or reordering
    points never changes the simulated data.
    """
    results: list[MethodResult] = []
    for point in spec.points:
        for replicate in range(spec.replicates):
            cell_seed = derive_seed(seed, spec.experiment_id, point.label, replicate)
            truth = point.graph_factory(cell_seed)
            simulator = DiffusionSimulator(
                truth,
                mu=point.mu,
                alpha=point.alpha,
                seed=derive_seed(cell_seed, "simulation"),
            )
            observations = Observations.from_simulation(simulator.run(point.beta))
            context = MethodContext(
                truth=truth, observations=observations, point=point
            )
            for method in spec.methods:
                if progress is not None:
                    progress(
                        f"[{spec.experiment_id}] {point.label} rep={replicate} {method.name}"
                    )
                results.append(
                    _run_method(spec, point, replicate, method, context)
                )
    return ExperimentResult(spec=spec, results=tuple(results))


def _run_method(
    spec: ExperimentSpec,
    point: SweepPoint,
    replicate: int,
    method: MethodSpec,
    context: MethodContext,
) -> MethodResult:
    inferrer = method.factory(context)
    with Stopwatch() as watch:
        output = inferrer.infer(context.observations)
    threshold: float | None = None
    if method.best_threshold and output.edge_scores:
        metrics, threshold = best_threshold_metrics(context.truth, output.edge_scores)
    else:
        metrics = evaluate_edges(context.truth, output.graph)
    return MethodResult(
        experiment_id=spec.experiment_id,
        point_label=point.label,
        point_value=point.value,
        method=method.name,
        replicate=replicate,
        metrics=metrics,
        runtime_seconds=watch.elapsed,
        threshold=threshold,
    )
