"""PATH — reconstructing a graph from path traces (Gripon & Rabbat, ISIT 2013).

PATH is the first of the two timestamp-free related works the paper
discusses (§II-B): it consumes *path-connected node sets* — the node sets
of diffusion paths of a fixed length through the network — and inserts
edges between the nodes that co-occur most frequently.  The paper excludes
it from its comparison because complete path traces "are often
unaccessible in natural diffusion processes"; we include it as an
extension baseline by granting it the strongest possible version of its
input: ground-truth diffusion paths extracted from the simulator's
infector attribution (:meth:`repro.simulation.cascades.Cascade.infection_paths`).

Reconstruction rule.  Gripon & Rabbat score unordered node pairs by their
co-occurrence across the (unordered) path sets and keep the most frequent
pairs.  Our paths are ordered, which lets the estimator additionally
orient its edges: each *adjacent* pair ``(path[i], path[i+1])`` votes for
the directed edge, and the top-``m`` edges by vote count are emitted.
Scoring only adjacent pairs is strictly more informative than the paper's
unordered-set formulation, so this implementation upper-bounds what PATH
could achieve — which makes the comparison against TENDS conservative.
"""

from __future__ import annotations

from collections import Counter

from repro.baselines.base import InferenceOutput, NetworkInferrer, Observations
from repro.exceptions import DataError
from repro.graphs.digraph import DiffusionGraph
from repro.utils.validation import check_positive_int

__all__ = ["Path"]


class Path(NetworkInferrer):
    """Frequent-pair reconstruction from fixed-length diffusion paths.

    Parameters
    ----------
    n_edges:
        Number of edges to output (like MulTree/LIFT, PATH needs the
        budget supplied).
    path_length:
        Number of nodes per extracted path (Gripon & Rabbat analyse
        length-3 traces; that is the default).
    """

    name = "PATH"
    requires = frozenset({"cascades"})

    def __init__(self, n_edges: int, *, path_length: int = 3) -> None:
        self.n_edges = check_positive_int("n_edges", n_edges)
        if path_length < 2:
            raise DataError(f"path_length must be >= 2, got {path_length}")
        self.path_length = path_length

    def path_sets(self, observations: Observations) -> list[tuple[int, ...]]:
        """Extract every ground-truth path of the configured length."""
        self.check_applicable(observations)
        assert observations.cascades is not None  # check_applicable guarantees it
        paths: list[tuple[int, ...]] = []
        missing_attribution = 0
        for cascade in observations.cascades:
            if cascade.infectors is None:
                missing_attribution += 1
                continue
            paths.extend(cascade.infection_paths(self.path_length))
        if missing_attribution == len(observations.cascades):
            raise DataError(
                "PATH requires cascades with infector attribution "
                "(simulator-produced); none of the observed cascades carry it"
            )
        return paths

    def infer(self, observations: Observations) -> InferenceOutput:
        paths = self.path_sets(observations)
        votes: Counter[tuple[int, int]] = Counter()
        for path in paths:
            for source, target in zip(path, path[1:]):
                votes[(source, target)] += 1
        graph = DiffusionGraph(observations.n_nodes)
        scores: dict[tuple[int, int], float] = {}
        for (source, target), count in votes.most_common():
            if graph.n_edges >= self.n_edges:
                break
            graph.add_edge(source, target)
            scores[(source, target)] = float(count)
        return InferenceOutput(graph=graph.freeze(), edge_scores=scores)
