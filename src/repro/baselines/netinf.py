"""NetInf — inferring networks of diffusion (Gomez-Rodriguez et al., KDD 2010).

NetInf models each cascade's likelihood under a graph ``G`` by the *single
most probable propagation tree* consistent with the observed infection
order: each non-seed infection is attributed to its best available parent.
Adding an edge ``(j → i)`` to ``G`` improves a cascade exactly when ``j``
is a better explanation for ``i``'s infection than the current best
parent, so the marginal gain of an edge is

    gain(j → i) = Σ_c max(0, log w_c(j,i) − log best_c(i))

which is monotone and submodular in the edge set; the classic greedy with
lazy (CELF) re-evaluation therefore achieves the (1 − 1/e) guarantee.
Infections with no tree parent are carried by an ε-background edge, as in
the original paper.

NetInf is not part of the paper's headline comparison (MulTree supersedes
it) but is included as an extension baseline and for the MulTree-vs-NetInf
ablation bench.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.baselines._cascadetrees import (
    EPSILON_WEIGHT,
    CandidateEdgeTable,
    build_candidate_table,
)
from repro.baselines.base import InferenceOutput, NetworkInferrer, Observations
from repro.graphs.digraph import DiffusionGraph
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["NetInf"]

#: Gains below this are treated as zero (the edge explains nothing).
_GAIN_EPS = 1e-12


class NetInf(NetworkInferrer):
    """Best-single-tree submodular greedy inference from cascades.

    Parameters
    ----------
    n_edges:
        Edge budget (the standard NetInf input).
    transmission_prob:
        Assumed per-round transmission probability for the geometric edge
        weights; defaults to the experiments' mean propagation probability.
    """

    name = "NetInf"
    requires = frozenset({"cascades"})

    def __init__(self, n_edges: int, *, transmission_prob: float = 0.3) -> None:
        self.n_edges = check_positive_int("n_edges", n_edges)
        self.transmission_prob = check_fraction("transmission_prob", transmission_prob)

    def infer(self, observations: Observations) -> InferenceOutput:
        self.check_applicable(observations)
        assert observations.cascades is not None  # check_applicable guarantees it
        table = build_candidate_table(observations.cascades, self.transmission_prob)
        graph, scores = _greedy_best_tree(
            table, observations.beta, observations.n_nodes, self.n_edges
        )
        return InferenceOutput(graph=graph, edge_scores=scores)


def _greedy_best_tree(
    table: CandidateEdgeTable, beta: int, n: int, budget: int
) -> tuple[DiffusionGraph, dict[tuple[int, int], float]]:
    """CELF greedy on the best-tree objective."""
    graph = DiffusionGraph(n)
    scores: dict[tuple[int, int], float] = {}
    if table.n_candidates == 0:
        return graph.freeze(), scores

    log_eps = np.log(EPSILON_WEIGHT)
    # best_log[c, i]: log-weight of i's current best parent in cascade c.
    best_log = np.full((beta, n), log_eps)
    log_probs = np.log(table.probabilities)

    def gain(index: int) -> float:
        lo, hi = int(table.offsets[index]), int(table.offsets[index + 1])
        cs = table.cascade_ids[lo:hi]
        target = int(table.edges[index, 1])
        improvements = log_probs[lo:hi] - best_log[cs, target]
        return float(np.maximum(improvements, 0.0).sum())

    heap: list[tuple[float, int]] = [(-gain(e), e) for e in range(table.n_candidates)]
    heapq.heapify(heap)

    while heap and graph.n_edges < budget:
        negative_gain, index = heapq.heappop(heap)
        fresh = gain(index)
        if fresh <= _GAIN_EPS:
            break  # nothing left explains any infection better than ε
        if heap and fresh < -heap[0][0] - _GAIN_EPS:
            heapq.heappush(heap, (-fresh, index))  # stale: re-queue and retry
            continue
        source, target = int(table.edges[index, 0]), int(table.edges[index, 1])
        graph.add_edge(source, target)
        scores[(source, target)] = fresh
        lo, hi = int(table.offsets[index]), int(table.offsets[index + 1])
        cs = table.cascade_ids[lo:hi]
        best_log[cs, target] = np.maximum(best_log[cs, target], log_probs[lo:hi])
    return graph.freeze(), scores
