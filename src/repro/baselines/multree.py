"""MulTree — submodular inference from multiple trees (ICML 2012).

MulTree refines NetInf by weighting **all** propagation trees a cascade
supports instead of only the most probable one.  Under the tree-likelihood
factorisation, summing over all trees reduces (by the matrix-tree-style
argument in the original paper) to a per-infection sum over the possible
parents present in the graph:

    L_c(G) = Π_{i infected, non-seed} ( ε + Σ_{j ∈ pa_G(i), t_j < t_i} w_c(j, i) )

so the marginal gain of adding edge ``(j → i)`` is

    gain(j → i) = Σ_c log( 1 + w_c(j,i) / mass_c(i) )

with ``mass_c(i)`` the current parent-weight sum (initially the ε
background).  The objective is again monotone submodular, so the same
lazy (CELF) greedy applies; the difference from NetInf is that gains
never truncate at zero — every supported parent contributes — which is
what buys MulTree its accuracy edge (and its extra runtime) in the
paper's comparison.

Like the paper's experimental protocol, MulTree is given the true number
of edges ``m`` as its budget (§V-A).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.baselines._cascadetrees import (
    EPSILON_WEIGHT,
    CandidateEdgeTable,
    build_candidate_table,
)
from repro.baselines.base import InferenceOutput, NetworkInferrer, Observations
from repro.graphs.digraph import DiffusionGraph
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["MulTree"]

_GAIN_EPS = 1e-12


class MulTree(NetworkInferrer):
    """All-trees submodular greedy inference from cascades.

    Parameters
    ----------
    n_edges:
        Edge budget (the paper supplies the true ``m``).
    transmission_prob:
        Assumed per-round transmission probability for the geometric edge
        weights.
    """

    name = "MulTree"
    requires = frozenset({"cascades"})

    def __init__(self, n_edges: int, *, transmission_prob: float = 0.3) -> None:
        self.n_edges = check_positive_int("n_edges", n_edges)
        self.transmission_prob = check_fraction("transmission_prob", transmission_prob)

    def infer(self, observations: Observations) -> InferenceOutput:
        self.check_applicable(observations)
        assert observations.cascades is not None  # check_applicable guarantees it
        table = build_candidate_table(observations.cascades, self.transmission_prob)
        graph, scores = _greedy_all_trees(
            table, observations.beta, observations.n_nodes, self.n_edges
        )
        return InferenceOutput(graph=graph, edge_scores=scores)


def _greedy_all_trees(
    table: CandidateEdgeTable, beta: int, n: int, budget: int
) -> tuple[DiffusionGraph, dict[tuple[int, int], float]]:
    """CELF greedy on the all-trees (parent-mass) objective."""
    graph = DiffusionGraph(n)
    scores: dict[tuple[int, int], float] = {}
    if table.n_candidates == 0:
        return graph.freeze(), scores

    # mass[c, i]: summed parent weight currently explaining i in cascade c.
    mass = np.full((beta, n), EPSILON_WEIGHT)

    def gain(index: int) -> float:
        lo, hi = int(table.offsets[index]), int(table.offsets[index + 1])
        cs = table.cascade_ids[lo:hi]
        target = int(table.edges[index, 1])
        return float(np.log1p(table.probabilities[lo:hi] / mass[cs, target]).sum())

    heap: list[tuple[float, int]] = [(-gain(e), e) for e in range(table.n_candidates)]
    heapq.heapify(heap)

    while heap and graph.n_edges < budget:
        negative_gain, index = heapq.heappop(heap)
        fresh = gain(index)
        if fresh <= _GAIN_EPS:
            break
        if heap and fresh < -heap[0][0] - _GAIN_EPS:
            heapq.heappush(heap, (-fresh, index))
            continue
        source, target = int(table.edges[index, 0]), int(table.edges[index, 1])
        graph.add_edge(source, target)
        scores[(source, target)] = fresh
        lo, hi = int(table.offsets[index]), int(table.offsets[index + 1])
        cs = table.cascade_ids[lo:hi]
        mass[cs, target] += table.probabilities[lo:hi]
    return graph.freeze(), scores
