"""NetRate — convex MLE of transmission rates (Gomez-Rodriguez et al., ICML 2011).

NetRate models each potential edge ``(j → i)`` with a transmission rate
``α_ji ≥ 0`` under a continuous-time exponential transmission likelihood.
For one cascade ``c`` observed up to horizon ``T`` the log-likelihood of
node ``i`` factorises as

* ``i`` infected at ``t_i > 0``:
  ``log Σ_{j: t_j < t_i} α_ji  −  Σ_{j: t_j < t_i} α_ji (t_i − t_j)``
* ``i`` uninfected:
  ``− Σ_{j infected} α_ji (T − t_j)``
* ``i`` a seed: no term (its infection is exogenous).

The problem decomposes per target node into independent concave programs
(the source of NetRate's "convex programming" label).  We solve each with
the standard EM / minorise-maximise update for sums of exponentials,

    α_j ← ( Σ_c α_j · D_cj / H_c ) / g_j ,

where ``D_cj`` indicates ``j`` preceding ``i`` in cascade ``c``, ``H_c``
is the hazard sum and ``g_j`` the accumulated exposure time.  The update
is monotone in the likelihood, needs no step size, and keeps rates
non-negative by construction — a faithful, dependency-free stand-in for
the authors' SQP solver.

NetRate returns *rates*, not a topology; following the paper's protocol
(§V-A: "we use different thresholds to find the highest F-score"), the
evaluation harness sweeps the decision threshold and reports NetRate's
best achievable F-score.  :meth:`NetRate.infer` applies a default
threshold for standalone use and always attaches the full rate matrix as
edge scores.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import InferenceOutput, NetworkInferrer, Observations
from repro.exceptions import ConvergenceError
from repro.graphs.digraph import DiffusionGraph
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
)

__all__ = ["NetRate"]

#: Hazard regulariser: keeps log(H) finite for infections with no visible
#: parent (cannot occur in clean simulated cascades, but defensive).
_HAZARD_EPS = 1e-12


class NetRate(NetworkInferrer):
    """Exponential-model transmission-rate MLE from cascades.

    Parameters
    ----------
    max_iterations:
        EM iteration budget per target node.
    tolerance:
        Early-stop when the largest rate change falls below this.
    rate_threshold:
        Rates above this become edges in the standalone :meth:`infer`
        topology (the harness sweeps thresholds instead, matching the
        paper's preferential treatment of NetRate).
    strict:
        When ``True``, raise :class:`~repro.exceptions.ConvergenceError`
        if any node's EM exhausts ``max_iterations`` without the rate
        change dropping below ``tolerance``.  ``False`` (default, the
        historical behaviour) returns the best rates found so far — the
        EM update is monotone, so they are still usable, just not at the
        requested precision.
    """

    name = "NetRate"
    requires = frozenset({"cascades"})

    def __init__(
        self,
        *,
        max_iterations: int = 60,
        tolerance: float = 1e-5,
        rate_threshold: float = 0.05,
        strict: bool = False,
    ) -> None:
        self.max_iterations = check_positive_int("max_iterations", max_iterations)
        self.tolerance = check_positive("tolerance", tolerance)
        self.rate_threshold = check_non_negative("rate_threshold", rate_threshold)
        self.strict = bool(strict)

    # ------------------------------------------------------------------
    def rate_matrix(self, observations: Observations) -> np.ndarray:
        """Estimate the full ``(n, n)`` rate matrix ``A`` with ``A[j, i] = α_ji``."""
        self.check_applicable(observations)
        assert observations.cascades is not None  # check_applicable guarantees it
        cascades = observations.cascades
        times = cascades.time_matrix()  # (beta, n); inf = uninfected
        horizon = cascades.horizon
        beta, n = times.shape
        finite = np.isfinite(times)

        rates = np.zeros((n, n))
        unconverged: list[tuple[int, float]] = []
        for target in range(n):
            rates[:, target], residual = self._solve_node(
                times, finite, horizon, target
            )
            if residual is not None:
                unconverged.append((target, residual))
        if unconverged and self.strict:
            worst_node, worst_residual = max(unconverged, key=lambda nr: nr[1])
            raise ConvergenceError(
                f"NetRate EM did not converge for {len(unconverged)}/{n} nodes "
                f"within {self.max_iterations} iterations "
                f"(worst: node {worst_node}, residual {worst_residual:.3g} "
                f"> tolerance {self.tolerance:.3g})",
                iterations=self.max_iterations,
                residual=worst_residual,
            )
        return rates

    def _solve_node(
        self,
        times: np.ndarray,
        finite: np.ndarray,
        horizon: float,
        target: int,
    ) -> tuple[np.ndarray, float | None]:
        """EM for one target node's incoming rates.

        Returns the rate vector and the final residual when the iteration
        budget ran out before reaching ``tolerance`` (``None`` when the
        node converged or had nothing to solve)."""
        beta, n = times.shape
        t_target = times[:, target]
        # Effective end of exposure per cascade: infection time if infected,
        # else the horizon.  Seeds have t = 0, zeroing their exposure row.
        end = np.where(np.isfinite(t_target), t_target, horizon)
        exposure = np.clip(end[:, None] - times, 0.0, None)
        exposure[~finite] = 0.0  # uninfected js never expose anyone
        g = exposure.sum(axis=0)  # total exposure per candidate parent
        g[target] = 0.0

        # D[c, j] = 1 iff j could have infected target in cascade c.
        infected_rows = np.isfinite(t_target) & (t_target > 0)
        d_matrix = finite & (times < t_target[:, None]) & infected_rows[:, None]
        d_matrix[:, target] = False
        d_float = d_matrix.astype(np.float64)

        active = (g > 0) & (d_float.sum(axis=0) > 0)
        alpha = np.zeros(n)
        if not active.any():
            return alpha, None
        alpha[active] = 1.0 / max(horizon, 1.0)

        d_active = d_float[:, active]
        g_active = g[active]
        a = alpha[active]
        change = 0.0
        converged = False
        for _ in range(self.max_iterations):
            hazard = d_active @ a + _HAZARD_EPS
            responsibilities = d_active.T @ (1.0 / hazard)
            updated = a * responsibilities / g_active
            change = float(np.max(np.abs(updated - a))) if a.size else 0.0
            a = updated
            if change < self.tolerance:
                converged = True
                break
        alpha[active] = a
        return alpha, None if converged else change

    def infer(self, observations: Observations) -> InferenceOutput:
        rates = self.rate_matrix(observations)
        n = observations.n_nodes
        graph = DiffusionGraph(n)
        scores: dict[tuple[int, int], float] = {}
        sources, targets = np.nonzero(rates > 0)
        for j, i in zip(sources.tolist(), targets.tolist()):
            scores[(j, i)] = float(rates[j, i])
            if rates[j, i] > self.rate_threshold:
                graph.add_edge(j, i)
        return InferenceOutput(graph=graph.freeze(), edge_scores=scores)
