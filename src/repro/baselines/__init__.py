"""Comparison algorithms from the paper's evaluation (§V-A).

* :class:`~repro.baselines.netrate.NetRate` — convex-programming MLE on
  timestamped cascades (Gomez-Rodriguez et al., ICML 2011).
* :class:`~repro.baselines.multree.MulTree` — submodular greedy weighting
  all propagation trees per cascade (Gomez-Rodriguez & Schölkopf, ICML 2012).
* :class:`~repro.baselines.netinf.NetInf` — best-single-tree submodular
  greedy (Gomez-Rodriguez et al., KDD 2010); extension baseline.
* :class:`~repro.baselines.lift.Lift` — lifting effects from seed sets to
  final statuses (Amin et al., ICML 2014).
* :class:`~repro.baselines.path.Path` — frequent-pair reconstruction from
  diffusion path traces (Gripon & Rabbat, ISIT 2013); extension baseline
  fed with ground-truth paths from the simulator's attribution.
* :class:`~repro.baselines.correlation.CorrelationRanker` — naive
  φ-coefficient ranking; sanity-check extension.
* :class:`~repro.baselines.base.TendsInferrer` — adapter exposing TENDS
  through the same interface for the harness.
"""

from repro.baselines.base import (
    InferenceOutput,
    NetworkInferrer,
    Observations,
    TendsInferrer,
)
from repro.baselines.correlation import CorrelationRanker
from repro.baselines.lift import Lift
from repro.baselines.multree import MulTree
from repro.baselines.netinf import NetInf
from repro.baselines.netrate import NetRate
from repro.baselines.path import Path

__all__ = [
    "Path",
    "Observations",
    "InferenceOutput",
    "NetworkInferrer",
    "TendsInferrer",
    "NetRate",
    "MulTree",
    "NetInf",
    "Lift",
    "CorrelationRanker",
]
