"""Shared machinery for the tree-based cascade methods (NetInf, MulTree).

Both algorithms score a candidate edge ``(j → i)`` by how much it improves
the likelihood of the observed cascades when added to the current graph,
where a cascade's likelihood is defined over propagation trees consistent
with the observed infection times.  The per-cascade, per-edge transmission
weight uses the discrete-time geometric waiting model matched to the
simulator: if ``j`` was infected ``Δ = t_i − t_j`` rounds before ``i``,

    P(j infected i at t_i) = p · (1 − p)^(Δ − 1)

with ``p`` the assumed transmission probability.  Every infection can also
be explained by a tiny ε-background rate, so cascades always have nonzero
likelihood even under the empty graph (as in NetInf).

This module extracts, for every candidate edge, the list of cascades
supporting it and the corresponding weights — bit-packed into flat numpy
arrays grouped by edge so the greedy loops touch nothing but array slices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataError
from repro.simulation.cascades import CascadeSet
from repro.utils.validation import check_fraction

__all__ = ["CandidateEdgeTable", "build_candidate_table", "EPSILON_WEIGHT"]

#: Probability of the ε-background explanation for any single infection.
EPSILON_WEIGHT = 1e-8


@dataclass(frozen=True)
class CandidateEdgeTable:
    """Candidate edges with their per-cascade transmission probabilities.

    Attributes
    ----------
    n_nodes:
        Number of nodes.
    edges:
        ``(n_candidates, 2)`` int64 array of ``(source, target)`` pairs.
    offsets:
        ``(n_candidates + 1,)`` prefix offsets into ``cascade_ids`` /
        ``probabilities``: edge ``e``'s support is the slice
        ``offsets[e]:offsets[e+1]``.
    cascade_ids:
        Cascade index of each support entry.
    probabilities:
        Transmission probability of each support entry (the geometric
        weight above).
    """

    n_nodes: int
    edges: np.ndarray
    offsets: np.ndarray
    cascade_ids: np.ndarray
    probabilities: np.ndarray

    @property
    def n_candidates(self) -> int:
        return self.edges.shape[0]

    def support(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """``(cascade_ids, probabilities)`` slices of one candidate edge."""
        lo, hi = int(self.offsets[index]), int(self.offsets[index + 1])
        return self.cascade_ids[lo:hi], self.probabilities[lo:hi]


def build_candidate_table(
    cascades: CascadeSet, transmission_prob: float
) -> CandidateEdgeTable:
    """Enumerate every (j → i) pair observed in temporal order.

    A pair is a candidate if, in at least one cascade, both nodes are
    infected and ``j`` strictly precedes ``i``; its weight in that cascade
    is the geometric transmission probability for the observed gap.
    """
    check_fraction("transmission_prob", transmission_prob)
    n = cascades.n_nodes
    log_survive = np.log1p(-transmission_prob)

    sources: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    cascade_ids: list[np.ndarray] = []
    probabilities: list[np.ndarray] = []
    for c_index, cascade in enumerate(cascades):
        if len(cascade.times) < 2:
            continue
        nodes = np.fromiter(cascade.times.keys(), dtype=np.int64, count=len(cascade.times))
        times = np.fromiter(cascade.times.values(), dtype=np.float64, count=len(cascade.times))
        earlier = times[:, None] < times[None, :]
        j_idx, i_idx = np.nonzero(earlier)
        if j_idx.size == 0:
            continue
        gaps = times[i_idx] - times[j_idx]
        weights = transmission_prob * np.exp((gaps - 1.0) * log_survive)
        sources.append(nodes[j_idx])
        targets.append(nodes[i_idx])
        cascade_ids.append(np.full(j_idx.size, c_index, dtype=np.int64))
        probabilities.append(weights)

    if not sources:
        empty = np.empty(0, dtype=np.int64)
        return CandidateEdgeTable(
            n_nodes=n,
            edges=np.empty((0, 2), dtype=np.int64),
            offsets=np.zeros(1, dtype=np.int64),
            cascade_ids=empty,
            probabilities=np.empty(0, dtype=np.float64),
        )

    all_sources = np.concatenate(sources)
    all_targets = np.concatenate(targets)
    all_cascades = np.concatenate(cascade_ids)
    all_probs = np.concatenate(probabilities)

    # Group entries by edge: sort by (source * n + target).
    keys = all_sources * n + all_targets
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    all_cascades = all_cascades[order]
    all_probs = all_probs[order]

    unique_keys, start_indices = np.unique(keys, return_index=True)
    offsets = np.concatenate([start_indices, [keys.size]]).astype(np.int64)
    edges = np.stack([unique_keys // n, unique_keys % n], axis=1).astype(np.int64)
    return CandidateEdgeTable(
        n_nodes=n,
        edges=edges,
        offsets=offsets,
        cascade_ids=all_cascades,
        probabilities=all_probs,
    )
