"""Shared interface for every network-inference algorithm in the library.

The experiment harness treats TENDS and the baselines uniformly: each is a
:class:`NetworkInferrer` that consumes an :class:`Observations` bundle and
produces an :class:`InferenceOutput`.  The bundle advertises which views of
the data exist, and each algorithm declares which views it ``requires`` —
the harness can then explain *why* a method is inapplicable (e.g. LIFT
without seed sets) instead of failing obscurely.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.exceptions import DataError
from repro.graphs.digraph import DiffusionGraph
from repro.simulation.cascades import CascadeSet
from repro.simulation.engine import SimulationResult
from repro.simulation.statuses import StatusMatrix

__all__ = ["Observations", "InferenceOutput", "NetworkInferrer", "TendsInferrer"]

EdgeScore = Mapping[tuple[int, int], float]


@dataclass(frozen=True)
class Observations:
    """Every observation view an inference algorithm might consume.

    Attributes
    ----------
    n_nodes:
        Number of nodes in the unknown network.
    statuses:
        Final infection statuses (always present — the minimum observation).
    cascades:
        Timestamped cascades, if infection times were monitored.
    seed_sets:
        Initially infected node set per process, if sources were recorded.
    """

    n_nodes: int
    statuses: StatusMatrix
    cascades: CascadeSet | None = None
    seed_sets: tuple[frozenset[int], ...] | None = None

    def __post_init__(self) -> None:
        if self.statuses.n_nodes != self.n_nodes:
            raise DataError(
                f"statuses cover {self.statuses.n_nodes} nodes, expected {self.n_nodes}"
            )
        if self.cascades is not None and self.cascades.n_nodes != self.n_nodes:
            raise DataError(
                f"cascades cover {self.cascades.n_nodes} nodes, expected {self.n_nodes}"
            )
        if self.seed_sets is not None and len(self.seed_sets) != self.statuses.beta:
            raise DataError(
                f"{len(self.seed_sets)} seed sets for {self.statuses.beta} processes"
            )

    @property
    def beta(self) -> int:
        return self.statuses.beta

    @classmethod
    def from_simulation(cls, result: SimulationResult) -> "Observations":
        """Package all three views of one simulation run."""
        return cls(
            n_nodes=result.graph.n_nodes,
            statuses=result.statuses,
            cascades=result.cascades,
            seed_sets=tuple(result.seed_sets),
        )

    @classmethod
    def from_statuses(cls, statuses: StatusMatrix) -> "Observations":
        """Status-only observations (the TENDS setting)."""
        return cls(n_nodes=statuses.n_nodes, statuses=statuses)

    def available(self) -> frozenset[str]:
        """Names of the views present in this bundle."""
        views = {"statuses"}
        if self.cascades is not None:
            views.add("cascades")
        if self.seed_sets is not None:
            views.add("seed_sets")
        return frozenset(views)


@dataclass(frozen=True)
class InferenceOutput:
    """Result of one inference run.

    Attributes
    ----------
    graph:
        The inferred topology at the algorithm's operating point.
    edge_scores:
        Optional per-edge confidence scores (higher = more confident).
        Present for weight-producing methods (NetRate, LIFT, correlation)
        so the harness can sweep decision thresholds — the paper gives
        NetRate exactly this preferential treatment (§V-A).
    """

    graph: DiffusionGraph
    edge_scores: EdgeScore | None = None

    @property
    def n_edges(self) -> int:
        return self.graph.n_edges


class NetworkInferrer(abc.ABC):
    """Base class for diffusion-network inference algorithms.

    Subclasses set :attr:`name` (for report tables) and :attr:`requires`
    (observation views they need) and implement :meth:`infer`.
    """

    #: Human-readable algorithm name used in report tables.
    name: str = "inferrer"
    #: Observation views the algorithm needs (subset of
    #: {"statuses", "cascades", "seed_sets"}).
    requires: frozenset[str] = frozenset({"statuses"})

    def check_applicable(self, observations: Observations) -> None:
        """Raise :class:`~repro.exceptions.DataError` if a required view
        is missing from ``observations``."""
        missing = self.requires - observations.available()
        if missing:
            raise DataError(
                f"{self.name} requires observation views {sorted(missing)} "
                f"which are not available"
            )

    @abc.abstractmethod
    def infer(self, observations: Observations) -> InferenceOutput:
        """Infer the network topology from ``observations``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class TendsInferrer(NetworkInferrer):
    """Adapter running TENDS through the shared inferrer interface.

    Parameters
    ----------
    config:
        Optional :class:`~repro.core.config.TendsConfig`.
    **overrides:
        Config field overrides forwarded to :class:`~repro.core.tends.Tends`.
    """

    name = "TENDS"
    requires = frozenset({"statuses"})

    def __init__(self, config=None, **overrides) -> None:
        from repro.core.tends import Tends

        self._estimator = Tends(config, **overrides)
        self.last_result = None

    def infer(self, observations: Observations) -> InferenceOutput:
        self.check_applicable(observations)
        result = self._estimator.fit(observations.statuses)
        self.last_result = result
        return InferenceOutput(graph=result.graph)
