"""Naive correlation baseline (extension — not in the paper's comparison).

Ranks node pairs by the φ coefficient (Pearson correlation of binary
variables) of their final infection statuses and outputs the top-``m``
ordered pairs.  It serves two purposes:

* a sanity floor — any serious status-only method (TENDS) must beat it;
* a demonstration of why raw correlation is insufficient: it cannot
  distinguish direct influence from two-hop correlation, and, like every
  status-only method, it is direction-blind (both orientations of a
  correlated pair tie, so they are emitted in arbitrary order).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import InferenceOutput, NetworkInferrer, Observations
from repro.graphs.digraph import DiffusionGraph
from repro.utils.validation import check_positive_int

__all__ = ["CorrelationRanker", "phi_coefficient_matrix"]


def phi_coefficient_matrix(status_values: np.ndarray) -> np.ndarray:
    """Pairwise φ coefficients of binary columns; diagonal zeroed.

    Degenerate columns (always 0 or always 1) have zero variance and get
    φ = 0 against everything.
    """
    data = status_values.astype(np.float64)
    beta = data.shape[0]
    if beta == 0:
        raise ValueError("need at least one observation row")
    means = data.mean(axis=0)
    centered = data - means
    covariance = centered.T @ centered / beta
    std = data.std(axis=0)
    denominator = np.outer(std, std)
    with np.errstate(divide="ignore", invalid="ignore"):
        phi = np.where(denominator > 0, covariance / denominator, 0.0)
    np.fill_diagonal(phi, 0.0)
    return phi


class CorrelationRanker(NetworkInferrer):
    """Top-``m`` φ-coefficient pairs as inferred edges.

    Parameters
    ----------
    n_edges:
        Number of directed edges to emit.  Because φ is symmetric, pairs
        enter in reciprocal couples until the budget runs out.
    """

    name = "CORR"
    requires = frozenset({"statuses"})

    def __init__(self, n_edges: int) -> None:
        self.n_edges = check_positive_int("n_edges", n_edges)

    def infer(self, observations: Observations) -> InferenceOutput:
        self.check_applicable(observations)
        phi = phi_coefficient_matrix(observations.statuses.values)
        n = observations.n_nodes
        upper_i, upper_j = np.triu_indices(n, k=1)
        order = np.argsort(-phi[upper_i, upper_j], kind="stable")

        graph = DiffusionGraph(n)
        scores: dict[tuple[int, int], float] = {}
        for index in order.tolist():
            if graph.n_edges >= self.n_edges:
                break
            u, v = int(upper_i[index]), int(upper_j[index])
            value = float(phi[u, v])
            if value <= 0:
                break
            graph.add_edge(u, v)
            scores[(u, v)] = value
            if graph.n_edges < self.n_edges:
                graph.add_edge(v, u)
                scores[(v, u)] = value
        return InferenceOutput(graph=graph.freeze(), edge_scores=scores)
