"""LIFT — learning from contagion without timestamps (Amin et al., ICML 2014).

LIFT consumes, per diffusion process, the *seed set* (initially infected
nodes) and the final infection statuses, and scores each ordered pair
``(u, v)`` by the **lifting effect** of seeding ``u`` on the infection of
``v``:

    lift(u → v) = P̂(X_v = 1 | u ∈ seeds) − P̂(X_v = 1 | u ∉ seeds)

A strongly positive lift means observing ``u`` among the sources raises
``v``'s infection probability, evidence of an influence path — and, for
the strongest lifts, of a direct edge.  As in the paper's comparison
(§V-A), LIFT needs to be told how many edges ``m`` to output; it returns
the top-``m`` pairs by lift.  When the caller does not supply ``m``, it
falls back to the positive-lift pairs whose lift exceeds ``min_lift``.

Both conditional probabilities are estimated fully vectorised from the
``β × n`` seed-indicator and status matrices, so the method is the
fastest in the comparison — matching the paper's running-time panels.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import InferenceOutput, NetworkInferrer, Observations
from repro.exceptions import DataError
from repro.graphs.digraph import DiffusionGraph
from repro.utils.validation import check_non_negative, check_positive_int

__all__ = ["Lift"]


class Lift(NetworkInferrer):
    """Lifting-effect topology inference.

    Parameters
    ----------
    n_edges:
        Number of edges to output (the paper supplies the true ``m``).
        ``None`` selects all pairs with lift > ``min_lift`` instead.
    min_lift:
        Fallback decision threshold used when ``n_edges`` is ``None``.
    min_support:
        Minimum number of processes in which ``u`` must appear as a seed
        (and as a non-seed) for the conditional estimates to count; pairs
        below support get a lift of −∞.
    """

    name = "LIFT"
    requires = frozenset({"statuses", "seed_sets"})

    def __init__(
        self,
        n_edges: int | None = None,
        *,
        min_lift: float = 0.0,
        min_support: int = 3,
    ) -> None:
        if n_edges is not None:
            check_positive_int("n_edges", n_edges)
        check_non_negative("min_lift", min_lift)
        check_positive_int("min_support", min_support)
        self.n_edges = n_edges
        self.min_lift = min_lift
        self.min_support = min_support

    # ------------------------------------------------------------------
    def lift_matrix(self, observations: Observations) -> np.ndarray:
        """The ``n × n`` matrix of lifting effects, ``L[u, v] = lift(u → v)``.

        Entries with insufficient support (see ``min_support``) and the
        diagonal are ``-inf``.
        """
        self.check_applicable(observations)
        statuses = observations.statuses.values.astype(np.float64)
        beta, n = statuses.shape
        seeds = np.zeros((beta, n), dtype=np.float64)
        for row, seed_set in enumerate(observations.seed_sets):
            for node in seed_set:
                seeds[row, node] = 1.0

        seeded_count = seeds.sum(axis=0)  # per node u: processes with u seeded
        unseeded_count = beta - seeded_count
        # co[u, v] = number of processes where u seeded and v infected
        co_seeded = seeds.T @ statuses
        co_unseeded = (1.0 - seeds).T @ statuses

        with np.errstate(divide="ignore", invalid="ignore"):
            p_given_seeded = np.where(
                seeded_count[:, None] > 0, co_seeded / seeded_count[:, None], 0.0
            )
            p_given_unseeded = np.where(
                unseeded_count[:, None] > 0,
                co_unseeded / unseeded_count[:, None],
                0.0,
            )
        lift = p_given_seeded - p_given_unseeded
        unsupported = (seeded_count < self.min_support) | (
            unseeded_count < self.min_support
        )
        lift[unsupported, :] = -np.inf
        np.fill_diagonal(lift, -np.inf)
        return lift

    def infer(self, observations: Observations) -> InferenceOutput:
        lift = self.lift_matrix(observations)
        n = observations.n_nodes
        flat = lift.ravel()
        finite = np.isfinite(flat)
        if self.n_edges is not None:
            k = min(self.n_edges, int(finite.sum()))
            if k == 0:
                chosen = np.empty(0, dtype=np.int64)
            else:
                candidates = np.argpartition(-np.where(finite, flat, -np.inf), k - 1)[:k]
                chosen = candidates[np.isfinite(flat[candidates])]
        else:
            chosen = np.nonzero(finite & (flat > self.min_lift))[0]

        graph = DiffusionGraph(n)
        scores: dict[tuple[int, int], float] = {}
        for index in chosen.tolist():
            u, v = divmod(index, n)
            graph.add_edge(u, v)
            scores[(u, v)] = float(flat[index])
        return InferenceOutput(graph=graph.freeze(), edge_scores=scores)
