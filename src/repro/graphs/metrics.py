"""Structural graph statistics.

These feed the Table II reproduction (LFR graph properties) and the
experiment logs: for every generated network the harness records node
count, directed edge count, average degree ``κ = m/n``, degree standard
deviation (the paper's "dispersion"), and reciprocity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.digraph import DiffusionGraph

__all__ = [
    "GraphSummary",
    "degree_statistics",
    "summarize_graph",
    "reciprocity",
    "average_clustering",
    "degree_assortativity",
    "weak_component_sizes",
]


@dataclass(frozen=True)
class GraphSummary:
    """One row of the Table II-style graph inventory."""

    n_nodes: int
    n_edges: int
    avg_degree: float
    in_degree_std: float
    out_degree_std: float
    total_degree_std: float
    max_in_degree: int
    max_out_degree: int
    reciprocity: float
    density: float

    def as_row(self) -> dict[str, float]:
        """Flat dict for table rendering."""
        return {
            "n": self.n_nodes,
            "m": self.n_edges,
            "avg_degree": round(self.avg_degree, 3),
            "degree_std": round(self.total_degree_std, 3),
            "max_in": self.max_in_degree,
            "max_out": self.max_out_degree,
            "reciprocity": round(self.reciprocity, 3),
            "density": round(self.density, 5),
        }


def degree_statistics(graph: DiffusionGraph) -> dict[str, float]:
    """Mean/std/min/max of in-, out-, and total-degree distributions."""
    in_deg = graph.in_degrees().astype(np.float64)
    out_deg = graph.out_degrees().astype(np.float64)
    total = in_deg + out_deg
    def stats(name: str, values: np.ndarray) -> dict[str, float]:
        return {
            f"{name}_mean": float(values.mean()) if values.size else 0.0,
            f"{name}_std": float(values.std()) if values.size else 0.0,
            f"{name}_min": float(values.min()) if values.size else 0.0,
            f"{name}_max": float(values.max()) if values.size else 0.0,
        }

    result: dict[str, float] = {}
    result.update(stats("in", in_deg))
    result.update(stats("out", out_deg))
    result.update(stats("total", total))
    return result


def reciprocity(graph: DiffusionGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists."""
    if graph.n_edges == 0:
        return 0.0
    edges = graph.edge_set()
    mutual = sum(1 for (u, v) in edges if (v, u) in edges)
    return mutual / graph.n_edges


def _undirected_adjacency(graph: DiffusionGraph) -> list[set[int]]:
    neighbours: list[set[int]] = [set() for _ in graph.nodes()]
    for u, v in graph.edges():
        neighbours[u].add(v)
        neighbours[v].add(u)
    return neighbours


def average_clustering(graph: DiffusionGraph) -> float:
    """Mean local clustering coefficient of the undirected projection.

    A node's coefficient is the fraction of its neighbour pairs that are
    themselves connected; degree-<2 nodes contribute 0 (the convention
    that keeps sparse graphs comparable).  High clustering is the LFR /
    coauthorship signature the community generators must reproduce.
    """
    neighbours = _undirected_adjacency(graph)
    if graph.n_nodes == 0:
        return 0.0
    total = 0.0
    for node in graph.nodes():
        adjacent = neighbours[node]
        k = len(adjacent)
        if k < 2:
            continue
        links = sum(
            1
            for u in adjacent
            for v in adjacent
            if u < v and v in neighbours[u]
        )
        total += 2.0 * links / (k * (k - 1))
    return total / graph.n_nodes


def degree_assortativity(graph: DiffusionGraph) -> float:
    """Pearson correlation of endpoint total-degrees over directed edges.

    Positive for hub-to-hub wiring (social networks), negative for
    hub-to-leaf wiring (stars, core-periphery).  Returns 0.0 when either
    endpoint-degree sequence is constant.
    """
    edges = graph.edge_array()
    if edges.shape[0] == 0:
        return 0.0
    totals = (graph.in_degrees() + graph.out_degrees()).astype(np.float64)
    source_degrees = totals[edges[:, 0]]
    target_degrees = totals[edges[:, 1]]
    if source_degrees.std() == 0.0 or target_degrees.std() == 0.0:
        return 0.0
    return float(np.corrcoef(source_degrees, target_degrees)[0, 1])


def weak_component_sizes(graph: DiffusionGraph) -> list[int]:
    """Sizes of weakly connected components, largest first.

    BFS over the undirected projection; the diffusion experiments care
    about the giant component because cascades cannot cross component
    boundaries.
    """
    neighbours = _undirected_adjacency(graph)
    seen = np.zeros(graph.n_nodes, dtype=bool)
    sizes: list[int] = []
    for start in graph.nodes():
        if seen[start]:
            continue
        queue = [start]
        seen[start] = True
        size = 0
        while queue:
            node = queue.pop()
            size += 1
            for neighbour in neighbours[node]:
                if not seen[neighbour]:
                    seen[neighbour] = True
                    queue.append(neighbour)
        sizes.append(size)
    return sorted(sizes, reverse=True)


def summarize_graph(graph: DiffusionGraph) -> GraphSummary:
    """Compute the full :class:`GraphSummary` for ``graph``."""
    n, m = graph.n_nodes, graph.n_edges
    stats = degree_statistics(graph)
    density = m / (n * (n - 1)) if n > 1 else 0.0
    return GraphSummary(
        n_nodes=n,
        n_edges=m,
        avg_degree=m / n if n else 0.0,
        in_degree_std=stats["in_std"],
        out_degree_std=stats["out_std"],
        total_degree_std=stats["total_std"],
        max_in_degree=int(stats["in_max"]),
        max_out_degree=int(stats["out_max"]),
        reciprocity=reciprocity(graph),
        density=density,
    )
