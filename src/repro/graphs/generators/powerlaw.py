"""Power-law degree-sequence utilities for the LFR-style generator.

The paper's LFR graphs (Table II) are parameterised by a node count ``n``,
an average degree ``κ``, and a degree-distribution parameter ``τ`` where a
*larger τ implies less dispersion of degrees*.  We realise that knob as the
shape parameter of a truncated Pareto distribution: degrees are drawn with
density ∝ k^-(τ+1) on ``[1, k_max]`` and then rescaled so that the sample
mean matches the requested average degree.  Larger τ → lighter tail →
smaller degree standard deviation, exactly the monotonicity the paper
describes in §V-D.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["truncated_powerlaw_degrees", "fit_powerlaw_exponent"]


def truncated_powerlaw_degrees(
    n: int,
    mean_degree: float,
    exponent: float,
    *,
    k_min: int = 1,
    k_max: int | None = None,
    seed: RandomState = None,
) -> np.ndarray:
    """Sample an integer degree sequence with a given mean and tail weight.

    Parameters
    ----------
    n:
        Sequence length (number of nodes).
    mean_degree:
        Target sample mean; the returned sequence's mean is within one
        unit of this for any reasonable ``n``.
    exponent:
        Pareto shape ``τ > 0``.  Small values give heavy tails (more
        dispersion); large values approach a degenerate distribution at the
        mean.
    k_min:
        Minimum degree (default 1; every node participates in diffusion).
    k_max:
        Maximum degree; defaults to ``min(n - 1, max(10 * mean_degree, 2 * k_min))``
        which keeps the heavy-tail regime from producing a star graph.
    seed:
        Seed-like input, see :mod:`repro.utils.rng`.

    Returns
    -------
    numpy.ndarray
        ``(n,)`` int64 array with ``k_min <= k_i <= k_max``.
    """
    n = check_positive_int("n", n)
    mean_degree = check_positive("mean_degree", mean_degree)
    exponent = check_positive("exponent", exponent)
    k_min = check_positive_int("k_min", k_min)
    if k_max is None:
        k_max = int(max(k_min, min(n - 1, max(10 * mean_degree, 2 * k_min))))
    if k_max < k_min:
        raise ConfigurationError(f"k_max ({k_max}) must be >= k_min ({k_min})")
    if not k_min <= mean_degree <= k_max:
        raise ConfigurationError(
            f"mean_degree {mean_degree} is outside the feasible range [{k_min}, {k_max}]"
        )
    rng = as_generator(seed)

    # Draw from a Pareto(shape=exponent) by inverse transform, truncated so
    # extreme draws cannot dominate the rescaling step.
    u = rng.random(n)
    raw = (1.0 - u) ** (-1.0 / exponent)
    cap = float(k_max) / max(float(k_min), 1.0)
    raw = np.minimum(raw, cap)

    # Rescale to the target mean, then round to integers within bounds.
    raw *= mean_degree / raw.mean()
    degrees = np.clip(np.rint(raw).astype(np.int64), k_min, k_max)

    # Rounding and clipping shift the mean; repair greedily so the sample
    # mean lands within half a unit of the target.
    _repair_mean(degrees, mean_degree, k_min, k_max, rng)
    return degrees


def _repair_mean(
    degrees: np.ndarray,
    target_mean: float,
    k_min: int,
    k_max: int,
    rng: np.random.Generator,
) -> None:
    """Nudge entries of ``degrees`` in place until the mean is on target.

    Each step increments or decrements a uniformly chosen entry that has
    slack, so the shape of the distribution is perturbed as little as
    possible.
    """
    n = degrees.shape[0]
    target_total = int(round(target_mean * n))
    deficit = target_total - int(degrees.sum())
    guard = 0
    while deficit != 0 and guard < 20 * n:
        guard += 1
        index = int(rng.integers(n))
        if deficit > 0 and degrees[index] < k_max:
            degrees[index] += 1
            deficit -= 1
        elif deficit < 0 and degrees[index] > k_min:
            degrees[index] -= 1
            deficit += 1


def fit_powerlaw_exponent(degrees: np.ndarray, *, k_min: int = 1) -> float:
    """Continuous MLE of the power-law exponent of a degree sample.

    Uses the standard Hill/Clauset estimator
    ``α = 1 + m / Σ ln(k_i / (k_min - 0.5))`` over entries ``k_i >= k_min``.
    The returned value estimates the *density* exponent α where
    p(k) ∝ k^-α, so a sequence generated with shape ``τ`` should fit
    ``α ≈ τ + 1``.
    """
    data = np.asarray(degrees, dtype=np.float64)
    data = data[data >= k_min]
    if data.size < 2:
        raise ConfigurationError("need at least two degrees >= k_min to fit an exponent")
    shifted = k_min - 0.5
    log_sum = float(np.log(data / shifted).sum())
    if log_sum <= 0:
        return math.inf
    return 1.0 + data.size / log_sum
