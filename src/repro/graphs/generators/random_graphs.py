"""Classic random directed graphs.

These are not used by the paper's headline experiments (which run on LFR
and the two real-world networks) but round out the substrate for the
example applications and the extension/ablation benches: Erdős–Rényi for
density sweeps, Barabási–Albert for scale-free topologies, Watts–Strogatz
for high clustering, random trees for the tree-recovery sanity checks that
cascade-inference papers traditionally include, and a core–periphery
generator for the viral-marketing example.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.digraph import DiffusionGraph
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "erdos_renyi_digraph",
    "barabasi_albert_digraph",
    "watts_strogatz_digraph",
    "random_tree_digraph",
    "core_periphery_digraph",
]


def erdos_renyi_digraph(
    n: int, edge_probability: float, *, seed: RandomState = None
) -> DiffusionGraph:
    """G(n, p) over ordered pairs: each possible directed edge appears
    independently with probability ``edge_probability``."""
    n = check_positive_int("n", n)
    p = check_probability("edge_probability", edge_probability)
    rng = as_generator(seed)
    graph = DiffusionGraph(n)
    if p > 0 and n > 1:
        mask = rng.random((n, n)) < p
        np.fill_diagonal(mask, False)
        sources, targets = np.nonzero(mask)
        graph.add_edges(zip(sources.tolist(), targets.tolist()))
    return graph.freeze()


def barabasi_albert_digraph(
    n: int, m_attach: int, *, seed: RandomState = None
) -> DiffusionGraph:
    """Preferential attachment: each arriving node links *to* ``m_attach``
    existing nodes chosen proportionally to their current total degree,
    producing a heavy-tailed in-degree distribution (influencer shape)."""
    n = check_positive_int("n", n)
    m_attach = check_positive_int("m_attach", m_attach)
    if m_attach >= n:
        raise ConfigurationError(f"m_attach ({m_attach}) must be < n ({n})")
    rng = as_generator(seed)
    graph = DiffusionGraph(n)
    targets_pool: list[int] = list(range(m_attach))  # seed clique nodes
    for new_node in range(m_attach, n):
        chosen: set[int] = set()
        while len(chosen) < m_attach:
            pick = int(targets_pool[int(rng.integers(len(targets_pool)))])
            if pick != new_node:
                chosen.add(pick)
        for target in chosen:
            graph.add_edge(new_node, target)
            targets_pool.extend((new_node, target))
    return graph.freeze()


def watts_strogatz_digraph(
    n: int,
    k_neighbors: int,
    rewire_probability: float,
    *,
    seed: RandomState = None,
) -> DiffusionGraph:
    """Directed small-world ring: each node points at its ``k_neighbors``
    clockwise neighbours, each edge rewired to a random target with
    probability ``rewire_probability``."""
    n = check_positive_int("n", n)
    k = check_positive_int("k_neighbors", k_neighbors)
    p = check_probability("rewire_probability", rewire_probability)
    if k >= n:
        raise ConfigurationError(f"k_neighbors ({k}) must be < n ({n})")
    rng = as_generator(seed)
    graph = DiffusionGraph(n)
    for node in range(n):
        for offset in range(1, k + 1):
            target = (node + offset) % n
            if rng.random() < p:
                target = int(rng.integers(n))
                guard = 0
                while (target == node or graph.has_edge(node, target)) and guard < 4 * n:
                    target = int(rng.integers(n))
                    guard += 1
                if target == node or graph.has_edge(node, target):
                    continue
            graph.add_edge(node, target)
    return graph.freeze()


def random_tree_digraph(n: int, *, seed: RandomState = None) -> DiffusionGraph:
    """Uniform random recursive tree with edges directed root-to-leaf.

    Trees are the classic sanity check for cascade inference: most
    timestamp-based methods are provably consistent on trees, so every
    inferrer in this library should recover a random tree almost perfectly
    given enough observations.
    """
    n = check_positive_int("n", n)
    rng = as_generator(seed)
    graph = DiffusionGraph(n)
    for node in range(1, n):
        parent = int(rng.integers(node))
        graph.add_edge(parent, node)
    return graph.freeze()


def core_periphery_digraph(
    n: int,
    core_fraction: float = 0.1,
    core_density: float = 0.5,
    periphery_attachment: int = 2,
    *,
    seed: RandomState = None,
) -> DiffusionGraph:
    """A dense directed core with sparsely attached periphery nodes.

    Models broadcaster-plus-audience structures (e.g. brands and their
    followers in the viral-marketing example): core nodes link densely to
    each other; each periphery node receives edges from
    ``periphery_attachment`` random core nodes.
    """
    n = check_positive_int("n", n)
    check_probability("core_density", core_density)
    periphery_attachment = check_positive_int("periphery_attachment", periphery_attachment)
    if not 0.0 < core_fraction < 1.0:
        raise ConfigurationError(f"core_fraction must be in (0, 1), got {core_fraction}")
    rng = as_generator(seed)
    n_core = max(2, int(round(core_fraction * n)))
    if n_core >= n:
        raise ConfigurationError("core_fraction leaves no periphery nodes")
    graph = DiffusionGraph(n)
    for u in range(n_core):
        for v in range(n_core):
            if u != v and rng.random() < core_density:
                graph.add_edge(u, v)
    attach = min(periphery_attachment, n_core)
    for node in range(n_core, n):
        for source in rng.choice(n_core, size=attach, replace=False):
            graph.add_edge(int(source), node)
    return graph.freeze()
