"""Stochastic Kronecker graphs (Leskovec et al., JMLR 2010).

The cascade-inference literature's other canonical synthetic substrate:
NetInf and NetRate were originally evaluated on Kronecker graphs with
"core-periphery" ``[[0.9, 0.5], [0.5, 0.3]]`` and "hierarchical"
``[[0.9, 0.1], [0.1, 0.9]]`` initiator matrices.  Including the generator
lets the extension benches compare TENDS and the baselines on the
*baselines'* home turf, not only on the paper's LFR graphs.

The graph over ``2^k`` nodes has independent directed edges with

    P(u → v) = Π_t  Θ[u_t, v_t]

where ``u_t, v_t`` are the ``t``-th bits of the node ids.  For the sizes
used here (k ≤ 12) the probability matrix is materialised exactly via
repeated Kronecker products, giving the exact edge distribution rather
than the approximate edge-dropping sampler.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.digraph import DiffusionGraph
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "kronecker_digraph",
    "CORE_PERIPHERY_INITIATOR",
    "HIERARCHICAL_INITIATOR",
]

#: The two standard initiator matrices of the NetInf/NetRate evaluations.
CORE_PERIPHERY_INITIATOR = ((0.9, 0.5), (0.5, 0.3))
HIERARCHICAL_INITIATOR = ((0.9, 0.1), (0.1, 0.9))


def kronecker_digraph(
    k: int,
    initiator: Sequence[Sequence[float]] = CORE_PERIPHERY_INITIATOR,
    *,
    scale: float | None = None,
    target_avg_degree: float | None = None,
    seed: RandomState = None,
) -> DiffusionGraph:
    """Sample a stochastic Kronecker graph on ``2^k`` nodes.

    Parameters
    ----------
    k:
        Kronecker power; the graph has ``2^k`` nodes.  Capped at 12
        (4096 nodes — a 16M-entry probability matrix) because the exact
        construction materialises the full matrix.
    initiator:
        2×2 matrix of probabilities in ``[0, 1]``.
    scale:
        Optional multiplier applied to every edge probability (values
        that would exceed 1 are clipped); mutually exclusive with
        ``target_avg_degree``.
    target_avg_degree:
        If given, ``scale`` is chosen so the *expected* average directed
        degree matches this value.
    seed:
        Seed-like input.

    Returns
    -------
    DiffusionGraph
        Frozen graph; self-loops are suppressed.
    """
    k = check_positive_int("k", k)
    if k > 12:
        raise ConfigurationError(f"k must be <= 12 (4096 nodes), got {k}")
    theta = np.asarray(initiator, dtype=np.float64)
    if theta.shape != (2, 2):
        raise ConfigurationError(f"initiator must be 2x2, got shape {theta.shape}")
    if theta.min() < 0.0 or theta.max() > 1.0:
        raise ConfigurationError("initiator entries must lie in [0, 1]")
    if scale is not None and target_avg_degree is not None:
        raise ConfigurationError("pass scale or target_avg_degree, not both")

    probabilities = theta.copy()
    for _ in range(k - 1):
        probabilities = np.kron(probabilities, theta)
    n = probabilities.shape[0]
    np.fill_diagonal(probabilities, 0.0)

    if target_avg_degree is not None:
        expected_edges = probabilities.sum()
        if expected_edges <= 0:
            raise ConfigurationError("initiator yields zero expected edges")
        scale = target_avg_degree * n / expected_edges
    if scale is not None:
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        probabilities = np.minimum(probabilities * scale, 1.0)

    rng = as_generator(seed)
    mask = rng.random((n, n)) < probabilities
    np.fill_diagonal(mask, False)
    sources, targets = np.nonzero(mask)
    graph = DiffusionGraph(n)
    graph.add_edges(zip(sources.tolist(), targets.tolist()))
    return graph.freeze()
