"""Graph generators: LFR benchmark, classic random graphs, real-world surrogates."""

from repro.graphs.generators.kronecker import (
    CORE_PERIPHERY_INITIATOR,
    HIERARCHICAL_INITIATOR,
    kronecker_digraph,
)
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.graphs.generators.powerlaw import (
    fit_powerlaw_exponent,
    truncated_powerlaw_degrees,
)
from repro.graphs.generators.random_graphs import (
    barabasi_albert_digraph,
    core_periphery_digraph,
    erdos_renyi_digraph,
    random_tree_digraph,
    watts_strogatz_digraph,
)
from repro.graphs.generators.realworld import dunf, netsci

__all__ = [
    "kronecker_digraph",
    "CORE_PERIPHERY_INITIATOR",
    "HIERARCHICAL_INITIATOR",
    "LFRParams",
    "lfr_benchmark_graph",
    "truncated_powerlaw_degrees",
    "fit_powerlaw_exponent",
    "erdos_renyi_digraph",
    "barabasi_albert_digraph",
    "watts_strogatz_digraph",
    "random_tree_digraph",
    "core_periphery_digraph",
    "netsci",
    "dunf",
]
