"""LFR-style benchmark graph generator (Lancichinetti–Fortunato–Radicchi).

The paper's synthetic experiments run on fifteen LFR benchmark graphs
(Table II) parameterised by

* ``n`` — number of nodes (100–300),
* ``κ`` — average degree, defined as directed-edge count over node count,
* ``τ`` — degree-distribution parameter, *larger τ means less dispersion*.

This module implements the generator from scratch (no dependence on
``networkx.LFR_benchmark_graph``, which is undirected-only and frequently
fails to converge at these small sizes):

1. sample a total-degree sequence from a truncated power law with mean
   ``2κ`` (each directed edge contributes one unit of total degree at both
   endpoints once oriented) — see
   :func:`repro.graphs.generators.powerlaw.truncated_powerlaw_degrees`;
2. sample community sizes from a power law and assign nodes;
3. split each node's stubs into intra-community (fraction ``1 - mixing``)
   and inter-community stubs;
4. wire stubs by configuration-model matching, rejecting self-loops and
   duplicate edges with bounded retries;
5. orient every undirected edge uniformly at random, yielding a directed
   graph with ``m ≈ κ · n`` edges.

The generator is deterministic given a seed and validated by the Table II
reproduction benchmark (``benchmarks/bench_table2_lfr.py``) and the unit
tests, which check mean degree, dispersion monotonicity in ``τ``, and
community mixing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError, GraphError
from repro.graphs.digraph import DiffusionGraph
from repro.graphs.generators.powerlaw import truncated_powerlaw_degrees
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
)

__all__ = ["LFRParams", "lfr_benchmark_graph"]


@dataclass(frozen=True)
class LFRParams:
    """Parameters of an LFR benchmark graph, mirroring paper Table II.

    Attributes
    ----------
    n:
        Number of nodes.
    avg_degree:
        Target average *directed* degree ``κ = m / n``.
    tau:
        Degree-dispersion parameter ``τ``; larger values concentrate the
        degree distribution (paper §V-D sweeps 1–3).
    mixing:
        Fraction of each node's edges that leave its community (LFR ``μ``;
        the paper does not sweep it, we default to 0.1).
    orientation:
        ``"reciprocal"`` (default): every influence relationship is
        mutual, i.e. each generated undirected edge becomes two directed
        edges.  ``"random"``: each undirected edge is oriented one way
        uniformly at random.  Final infection statuses carry no
        information about edge direction, so the paper's reported accuracy
        on LFR graphs is only attainable under (near-)reciprocal influence
        — see DESIGN.md §4; the random orientation is kept for the
        direction-ambiguity ablation bench.
    community_exponent:
        Power-law exponent for community sizes (LFR ``τ₂``; default 1.5).
    min_community:
        Minimum community size; defaults to ``max(10, 2 * avg_degree)``
        computed at generation time when left as ``None``.
    """

    n: int
    avg_degree: float = 4.0
    tau: float = 2.0
    mixing: float = 0.1
    orientation: str = "reciprocal"
    community_exponent: float = 1.5
    min_community: int | None = None

    def __post_init__(self) -> None:
        check_positive_int("n", self.n)
        check_positive("avg_degree", self.avg_degree)
        check_positive("tau", self.tau)
        check_fraction("mixing", self.mixing)
        check_positive("community_exponent", self.community_exponent)
        if self.orientation not in ("random", "reciprocal"):
            raise ConfigurationError(
                f"orientation must be 'random' or 'reciprocal', got {self.orientation!r}"
            )
        if self.avg_degree >= self.n:
            raise ConfigurationError(
                f"avg_degree ({self.avg_degree}) must be < n ({self.n})"
            )

    def resolved_min_community(self) -> int:
        if self.min_community is not None:
            return check_positive_int("min_community", self.min_community)
        return int(max(10, 2 * self.avg_degree))


def lfr_benchmark_graph(
    params: LFRParams | None = None,
    *,
    n: int | None = None,
    avg_degree: float | None = None,
    tau: float | None = None,
    mixing: float | None = None,
    seed: RandomState = None,
    max_attempts: int = 8,
) -> DiffusionGraph:
    """Generate a directed LFR-style benchmark graph.

    Either pass a fully-specified :class:`LFRParams`, or the individual
    keyword shortcuts ``n`` / ``avg_degree`` / ``tau`` / ``mixing``.

    Returns a frozen :class:`~repro.graphs.digraph.DiffusionGraph` with
    approximately ``avg_degree * n`` directed edges.

    Raises
    ------
    GraphError
        If stub matching repeatedly fails (pathological parameters, e.g.
        a single node asked for more neighbours than exist).
    """
    if params is None:
        if n is None:
            raise ConfigurationError("provide LFRParams or at least n=")
        params = LFRParams(
            n=n,
            avg_degree=avg_degree if avg_degree is not None else 4.0,
            tau=tau if tau is not None else 2.0,
            mixing=mixing if mixing is not None else 0.1,
        )
    elif any(v is not None for v in (n, avg_degree, tau, mixing)):
        raise ConfigurationError("pass either params or keyword shortcuts, not both")

    rng = as_generator(seed)
    last_error: GraphError | None = None
    for _ in range(max_attempts):
        try:
            return _generate_once(params, rng)
        except GraphError as exc:  # rare matching failure; retry fresh draw
            last_error = exc
    raise GraphError(
        f"LFR generation failed after {max_attempts} attempts: {last_error}"
    )


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------

def _undirected_target(params: LFRParams) -> int:
    """How many *undirected* edges realise the requested directed κ."""
    directed_target = params.avg_degree * params.n
    if params.orientation == "reciprocal":
        return int(round(directed_target / 2.0))
    return int(round(directed_target))


def _generate_once(params: LFRParams, rng: np.random.Generator) -> DiffusionGraph:
    n = params.n
    # Each undirected edge adds 2 units of undirected degree, so the mean
    # undirected degree is 2 * m_undirected / n.
    mean_undirected_degree = 2.0 * _undirected_target(params) / n
    degrees = truncated_powerlaw_degrees(
        n, mean_degree=mean_undirected_degree, exponent=params.tau, seed=rng
    )
    communities = _assign_communities(params, degrees, rng)

    internal = np.rint(degrees * (1.0 - params.mixing)).astype(np.int64)
    external = degrees - internal
    _balance_parities(internal, external, communities, rng)

    undirected: set[tuple[int, int]] = set()
    for members in communities:
        _match_stubs(internal, members, undirected, rng, label="intra-community")
    _match_external_stubs(external, communities, undirected, rng)

    # Stub matching drops a few percent of edges on heavy-tailed sequences
    # (rejected duplicates/self-loops); top the count back up with random
    # intra-community pairs biased towards the nodes that lost stubs, so the
    # realised average degree matches Table II.
    _top_up_edges(undirected, degrees, communities, n, params, rng)

    graph = DiffusionGraph(n)
    if params.orientation == "reciprocal":
        for u, v in undirected:
            graph.add_edge(u, v)
            graph.add_edge(v, u)
    else:
        for u, v in undirected:
            if rng.random() < 0.5:
                graph.add_edge(u, v)
            else:
                graph.add_edge(v, u)
    return graph.freeze()


def _top_up_edges(
    undirected: set[tuple[int, int]],
    degrees: np.ndarray,
    communities: list[np.ndarray],
    n: int,
    params: LFRParams,
    rng: np.random.Generator,
) -> None:
    target = _undirected_target(params)
    if len(undirected) >= target:
        return
    realised = np.zeros(n, dtype=np.int64)
    for u, v in undirected:
        realised[u] += 1
        realised[v] += 1
    deficit = np.maximum(degrees - realised, 0).astype(np.float64)
    community_of = np.zeros(n, dtype=np.int64)
    for index, members in enumerate(communities):
        community_of[members] = index
    guard = 0
    while len(undirected) < target and guard < 500 * target:
        guard += 1
        if deficit.sum() > 0:
            u = int(rng.choice(n, p=deficit / deficit.sum()))
        else:
            u = int(rng.integers(n))
        members = communities[community_of[u]]
        if rng.random() < 1.0 - params.mixing and members.size > 1:
            v = int(members[int(rng.integers(members.size))])
        else:
            v = int(rng.integers(n))
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in undirected:
            continue
        undirected.add(key)
        deficit[u] = max(deficit[u] - 1, 0)
        deficit[v] = max(deficit[v] - 1, 0)


def _assign_communities(
    params: LFRParams, degrees: np.ndarray, rng: np.random.Generator
) -> list[np.ndarray]:
    """Sample community sizes and assign nodes so every node's internal
    degree fits inside its community."""
    n = params.n
    min_size = min(params.resolved_min_community(), n)
    max_size = n

    sizes: list[int] = []
    while sum(sizes) < n:
        u = rng.random()
        raw = min_size * (1.0 - u) ** (-1.0 / params.community_exponent)
        sizes.append(int(min(max(min_size, round(raw)), max_size)))
    # Trim the last community so sizes sum exactly to n (merge tiny remainder).
    overshoot = sum(sizes) - n
    sizes[-1] -= overshoot
    if sizes[-1] < min_size and len(sizes) > 1:
        sizes[-2] += sizes[-1]
        sizes.pop()

    # Place high-degree nodes in large communities so that the internal
    # degree (1 - mixing) * k_i never exceeds the community size - 1.
    order = np.argsort(degrees)[::-1]
    sizes_sorted = sorted(sizes, reverse=True)
    assignments: list[list[int]] = [[] for _ in sizes_sorted]
    capacity = list(sizes_sorted)
    cursor = 0
    for node in order:
        placed = False
        for offset in range(len(sizes_sorted)):
            idx = (cursor + offset) % len(sizes_sorted)
            internal_degree = int(round(degrees[node] * (1.0 - params.mixing)))
            if capacity[idx] > 0 and internal_degree <= sizes_sorted[idx] - 1:
                assignments[idx].append(int(node))
                capacity[idx] -= 1
                cursor = (idx + 1) % len(sizes_sorted)
                placed = True
                break
        if not placed:
            # Fall back: largest community with remaining capacity.
            idx = int(np.argmax(capacity))
            if capacity[idx] <= 0:
                raise GraphError("community assignment overflow")
            assignments[idx].append(int(node))
            capacity[idx] -= 1
    return [np.array(group, dtype=np.int64) for group in assignments if group]


def _balance_parities(
    internal: np.ndarray,
    external: np.ndarray,
    communities: list[np.ndarray],
    rng: np.random.Generator,
) -> None:
    """Make the intra-community stub counts even per community, and the
    global external stub count even, by moving single stubs between the
    internal and external pools of randomly chosen nodes."""
    for members in communities:
        if int(internal[members].sum()) % 2 == 1:
            node = int(rng.choice(members))
            if external[node] > 0:
                external[node] -= 1
                internal[node] += 1
            elif internal[node] > 0:
                internal[node] -= 1
                external[node] += 1
            else:
                internal[node] += 1
    if int(external.sum()) % 2 == 1:
        candidates = np.nonzero(external > 0)[0]
        if candidates.size:
            external[int(rng.choice(candidates))] -= 1
        else:
            external[int(rng.integers(external.shape[0]))] += 1


def _match_stubs(
    stub_counts: np.ndarray,
    members: np.ndarray,
    edges: set[tuple[int, int]],
    rng: np.random.Generator,
    *,
    label: str,
    max_rounds: int = 50,
) -> None:
    """Configuration-model matching restricted to ``members``.

    Self-loops and duplicate pairs are rejected and their stubs re-queued;
    after ``max_rounds`` the few unmatchable stubs are dropped (standard
    LFR practice — the expected loss is a handful of edges).
    """
    stubs = np.repeat(members, stub_counts[members])
    for _ in range(max_rounds):
        if stubs.size < 2:
            return
        rng.shuffle(stubs)
        if stubs.size % 2 == 1:
            stubs = stubs[:-1]
        left, right = stubs[0::2], stubs[1::2]
        leftover: list[int] = []
        for u, v in zip(left.tolist(), right.tolist()):
            key = (u, v) if u < v else (v, u)
            if u == v or key in edges:
                leftover.extend((u, v))
            else:
                edges.add(key)
        if not leftover:
            return
        stubs = np.array(leftover, dtype=np.int64)
    # A few stubborn stubs remain (e.g. one node holding both endpoints);
    # drop them rather than loop forever.


def _match_external_stubs(
    external: np.ndarray,
    communities: list[np.ndarray],
    edges: set[tuple[int, int]],
    rng: np.random.Generator,
    max_rounds: int = 50,
) -> None:
    """Match inter-community stubs, rejecting intra-community pairs."""
    if len(communities) == 1:
        # Single community: external stubs have nowhere to go; wire them
        # internally instead so the degree sequence is preserved.
        _match_stubs(external, communities[0], edges, rng, label="external-fallback")
        return
    community_of = np.empty(int(sum(len(c) for c in communities)), dtype=np.int64)
    for index, members in enumerate(communities):
        community_of[members] = index
    all_nodes = np.concatenate(communities)
    stubs = np.repeat(all_nodes, external[all_nodes])
    for _ in range(max_rounds):
        if stubs.size < 2:
            return
        rng.shuffle(stubs)
        if stubs.size % 2 == 1:
            stubs = stubs[:-1]
        left, right = stubs[0::2], stubs[1::2]
        leftover: list[int] = []
        for u, v in zip(left.tolist(), right.tolist()):
            key = (u, v) if u < v else (v, u)
            if u == v or key in edges or community_of[u] == community_of[v]:
                leftover.extend((u, v))
            else:
                edges.add(key)
        if not leftover:
            return
        stubs = np.array(leftover, dtype=np.int64)
