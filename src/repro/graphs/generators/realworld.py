"""Synthetic surrogates for the paper's two real-world networks.

The paper evaluates on:

* **NetSci** — a coauthorship network with 379 scientists and 1602
  coauthorship edges (Newman 2006), and
* **DUNF** — a microblogging network with 750 users and 2974 following
  relationships (Wang et al., KDD 2014).

Neither dataset ships with this repository (no network access, and DUNF was
never publicly released), so this module builds *surrogates* that match the
published node/edge counts and the structural features that matter to the
experiments:

* ``netsci()`` — 379 nodes, 1602 directed edges arranged as 801 reciprocal
  pairs (coauthorship influence flows both ways), heavy-tailed degrees, and
  strong community structure, as is characteristic of coauthorship graphs.
* ``dunf()`` — 750 nodes, 2974 directed edges with a heavy-tailed degree
  distribution (a few widely-followed accounts) and predominantly mutual
  relations (see :data:`DUNF_RECIPROCITY`), as the paper's DUNF results
  imply for status-only inference.

Both functions are deterministic for a given seed (default 0) so that every
benchmark run sees the same "real-world" topology.  The substitution is
recorded in DESIGN.md §4: the experiments exercise the *size, density and
degree shape* of the substrate, all of which the surrogates match.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graphs.digraph import DiffusionGraph
from repro.graphs.generators.powerlaw import truncated_powerlaw_degrees
from repro.utils.rng import RandomState, as_generator

__all__ = ["netsci", "dunf", "NETSCI_NODES", "NETSCI_EDGES", "DUNF_NODES", "DUNF_EDGES"]

#: Published sizes (paper §V-A).
NETSCI_NODES = 379
NETSCI_EDGES = 1602  # directed; 801 reciprocal coauthorship pairs
DUNF_NODES = 750
DUNF_EDGES = 2974  # directed following relationships


def netsci(seed: RandomState = 0) -> DiffusionGraph:
    """NetSci coauthorship surrogate: 379 nodes, 1602 directed edges.

    Coauthorship is symmetric, so the surrogate places 801 undirected
    collaborations — drawn inside power-law-sized communities with a small
    amount of cross-community mixing — and represents each as a reciprocal
    edge pair.
    """
    rng = as_generator(seed)
    pairs = _community_undirected_edges(
        n=NETSCI_NODES,
        m_undirected=NETSCI_EDGES // 2,
        degree_exponent=2.0,
        mixing=0.08,
        community_scale=25,
        rng=rng,
    )
    graph = DiffusionGraph(NETSCI_NODES)
    for u, v in pairs:
        graph.add_edge(u, v)
        graph.add_edge(v, u)
    if graph.n_edges != NETSCI_EDGES:
        raise GraphError(
            f"netsci surrogate produced {graph.n_edges} edges, expected {NETSCI_EDGES}"
        )
    return graph.freeze()


#: Fraction of DUNF influence edges that are mutual.  The paper's DUNF
#: results (TENDS, which is provably direction-blind on status-only data,
#: achieving the best F-score) are only attainable when most influence
#: relationships run both ways — consistent with the strong-tie,
#: mutual-follow structure of the Sina-Weibo-style community the dataset
#: was crawled from.  See DESIGN.md §4.
DUNF_RECIPROCITY = 0.70


def dunf(seed: RandomState = 0) -> DiffusionGraph:
    """DUNF microblogging surrogate: 750 nodes, 2974 directed edges.

    The surrogate draws heavy-tailed "following" relations (a few widely
    connected accounts) and makes :data:`DUNF_RECIPROCITY` of the directed
    edges mutual; the remaining edges are one-way with random orientation.
    """
    rng = as_generator(seed)
    n, m = DUNF_NODES, DUNF_EDGES
    n_mutual_pairs = int(round(DUNF_RECIPROCITY * m / 2.0))
    n_oneway = m - 2 * n_mutual_pairs
    n_relations = n_mutual_pairs + n_oneway

    # Heavy-tailed relation degree: popular accounts take part in many
    # relations.  Microblog interaction communities are tightly clustered,
    # so the community bias is strong (cf. the coauthorship surrogate) —
    # this clustering is what makes the pairwise infection correlations
    # bimodal, the regime the paper's DUNF results exhibit.
    relations = _community_undirected_edges(
        n=n,
        m_undirected=n_relations,
        degree_exponent=2.0,
        mixing=0.05,
        community_scale=20,
        rng=rng,
    )
    relation_list = sorted(relations)
    rng.shuffle(relation_list := np.array(relation_list, dtype=np.int64))
    edges: set[tuple[int, int]] = set()
    for index, (u, v) in enumerate(relation_list.tolist()):
        if index < n_mutual_pairs:
            edges.add((u, v))
            edges.add((v, u))
        elif rng.random() < 0.5:
            edges.add((u, v))
        else:
            edges.add((v, u))
    graph = DiffusionGraph(n, edges)
    if graph.n_edges != m:
        raise GraphError(f"dunf surrogate produced {graph.n_edges} edges, expected {m}")
    return graph.freeze()


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------

def _community_undirected_edges(
    *,
    n: int,
    m_undirected: int,
    degree_exponent: float,
    mixing: float,
    community_scale: int,
    rng: np.random.Generator,
) -> set[tuple[int, int]]:
    """Build exactly ``m_undirected`` undirected edges with community bias.

    Nodes are partitioned into communities of roughly ``community_scale``
    members; edge endpoints are drawn degree-proportionally, with the second
    endpoint taken from the first's community with probability
    ``1 - mixing``.
    """
    degrees = truncated_powerlaw_degrees(
        n, mean_degree=2.0 * m_undirected / n, exponent=degree_exponent, seed=rng
    )
    n_comms = max(2, n // community_scale)
    membership = rng.integers(n_comms, size=n)
    members_of = [np.nonzero(membership == c)[0] for c in range(n_comms)]
    weights = degrees.astype(np.float64)
    weights /= weights.sum()

    edges: set[tuple[int, int]] = set()
    guard = 0
    while len(edges) < m_undirected and guard < 200 * m_undirected:
        guard += 1
        u = int(rng.choice(n, p=weights))
        if rng.random() < 1.0 - mixing and members_of[membership[u]].size > 1:
            pool = members_of[membership[u]]
            v = int(pool[int(rng.integers(pool.size))])
        else:
            v = int(rng.integers(n))
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        edges.add(key)
    if len(edges) < m_undirected:
        # Fill the remainder with uniform random pairs.
        while len(edges) < m_undirected:
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u != v:
                edges.add((u, v) if u < v else (v, u))
    return edges


