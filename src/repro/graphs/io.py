"""Graph serialisation: whitespace edge lists and a JSON document format.

The edge-list format is the interchange standard of the cascade-inference
literature (NetInf/NetRate tooling): one ``source target`` pair per line,
``#`` comments allowed, node count declared via an optional
``# nodes: <n>`` header (otherwise inferred as ``max id + 1``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.exceptions import DataError
from repro.graphs.digraph import DiffusionGraph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "graph_to_json",
    "graph_from_json",
    "write_json",
    "read_json",
]

PathLike = Union[str, Path]


def write_edge_list(graph: DiffusionGraph, path: PathLike) -> None:
    """Write ``graph`` as an edge list with a node-count header."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# nodes: {graph.n_nodes}\n")
        for source, target in graph.edges():
            handle.write(f"{source} {target}\n")


def read_edge_list(path: PathLike) -> DiffusionGraph:
    """Read an edge list written by :func:`write_edge_list` (or compatible)."""
    path = Path(path)
    n_nodes: int | None = None
    edges: list[tuple[int, int]] = []
    max_id = -1
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            if text.startswith("#"):
                header = text[1:].strip()
                if header.startswith("nodes:"):
                    try:
                        n_nodes = int(header.split(":", 1)[1])
                    except ValueError as exc:
                        raise DataError(
                            f"{path}:{line_number}: malformed nodes header {text!r}"
                        ) from exc
                continue
            parts = text.split()
            if len(parts) != 2:
                raise DataError(f"{path}:{line_number}: expected 'source target', got {text!r}")
            try:
                source, target = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise DataError(f"{path}:{line_number}: non-integer node id in {text!r}") from exc
            edges.append((source, target))
            max_id = max(max_id, source, target)
    if n_nodes is None:
        n_nodes = max_id + 1
    return DiffusionGraph(max(n_nodes, 0), edges).freeze()


def graph_to_json(graph: DiffusionGraph) -> dict:
    """Serialise to a plain dict (JSON-compatible)."""
    return {
        "format": "repro.diffusion_graph",
        "version": 1,
        "n_nodes": graph.n_nodes,
        "edges": [[s, t] for s, t in graph.edges()],
    }


def graph_from_json(document: dict) -> DiffusionGraph:
    """Deserialise a dict produced by :func:`graph_to_json`."""
    if document.get("format") != "repro.diffusion_graph":
        raise DataError(f"not a diffusion-graph document: format={document.get('format')!r}")
    try:
        n_nodes = int(document["n_nodes"])
        edges = [(int(s), int(t)) for s, t in document["edges"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"malformed diffusion-graph document: {exc}") from exc
    return DiffusionGraph(n_nodes, edges).freeze()


def write_json(graph: DiffusionGraph, path: PathLike) -> None:
    """Write the JSON document format to ``path``."""
    Path(path).write_text(json.dumps(graph_to_json(graph)), encoding="utf-8")


def read_json(path: PathLike) -> DiffusionGraph:
    """Read the JSON document format from ``path``."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DataError(f"{path}: invalid JSON: {exc}") from exc
    return graph_from_json(document)
