"""A lightweight directed graph tuned for diffusion workloads.

:class:`DiffusionGraph` stores nodes as contiguous integers ``0..n-1`` and
keeps both out- and in-adjacency as sorted numpy arrays, because the hot
paths in this library are:

* the simulator streaming over the out-neighbours of newly infected nodes,
* the inference algorithms comparing an inferred edge set against the truth,
* exporting a boolean adjacency matrix for vectorised scoring.

The class is deliberately *not* a general-purpose graph: no attributes, no
multi-edges, no node relabelling.  For anything richer, convert to
:mod:`networkx` via :meth:`DiffusionGraph.to_networkx`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.exceptions import GraphError

__all__ = ["DiffusionGraph"]

Edge = tuple[int, int]


class DiffusionGraph:
    """An immutable-after-freeze directed graph on nodes ``0..n-1``.

    Parameters
    ----------
    n_nodes:
        Number of nodes; nodes are the integers ``0..n_nodes-1``.
    edges:
        Optional iterable of ``(source, target)`` pairs.  Duplicates are
        collapsed; self-loops raise :class:`~repro.exceptions.GraphError`.

    Examples
    --------
    >>> g = DiffusionGraph(3, [(0, 1), (1, 2)])
    >>> g.successors(0).tolist()
    [1]
    >>> g.has_edge(1, 2)
    True
    >>> g.n_edges
    2
    """

    __slots__ = ("_n", "_out", "_in", "_n_edges", "_frozen", "_out_arrays", "_in_arrays")

    def __init__(self, n_nodes: int, edges: Iterable[Edge] | None = None) -> None:
        if n_nodes < 0:
            raise GraphError(f"n_nodes must be non-negative, got {n_nodes}")
        self._n = int(n_nodes)
        self._out: list[set[int]] = [set() for _ in range(self._n)]
        self._in: list[set[int]] = [set() for _ in range(self._n)]
        self._n_edges = 0
        self._frozen = False
        self._out_arrays: list[np.ndarray] | None = None
        self._in_arrays: list[np.ndarray] | None = None
        if edges is not None:
            self.add_edges(edges)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(self, source: int, target: int) -> bool:
        """Insert a directed edge; return ``True`` if it was new."""
        if self._frozen:
            raise GraphError("graph is frozen; copy() it to modify")
        self._check_node(source)
        self._check_node(target)
        if source == target:
            raise GraphError(f"self-loop ({source}, {target}) is not allowed")
        if target in self._out[source]:
            return False
        self._out[source].add(target)
        self._in[target].add(source)
        self._n_edges += 1
        return True

    def add_edges(self, edges: Iterable[Edge]) -> int:
        """Insert many edges; return the number actually added."""
        added = 0
        for source, target in edges:
            if self.add_edge(int(source), int(target)):
                added += 1
        return added

    def remove_edge(self, source: int, target: int) -> bool:
        """Remove a directed edge; return ``True`` if it existed."""
        if self._frozen:
            raise GraphError("graph is frozen; copy() it to modify")
        self._check_node(source)
        self._check_node(target)
        if target not in self._out[source]:
            return False
        self._out[source].discard(target)
        self._in[target].discard(source)
        self._n_edges -= 1
        return True

    def freeze(self) -> "DiffusionGraph":
        """Disallow further mutation and build sorted adjacency arrays.

        Freezing is what the simulator expects: array adjacency makes the
        per-round infection attempts a couple of vectorised numpy calls.
        Returns ``self`` for chaining.
        """
        if not self._frozen:
            self._frozen = True
            self._out_arrays = [
                np.fromiter(sorted(s), dtype=np.int64, count=len(s)) for s in self._out
            ]
            self._in_arrays = [
                np.fromiter(sorted(s), dtype=np.int64, count=len(s)) for s in self._in
            ]
        return self

    def copy(self) -> "DiffusionGraph":
        """Return an unfrozen deep copy."""
        clone = DiffusionGraph(self._n)
        for source in range(self._n):
            for target in self._out[source]:
                clone._out[source].add(target)
                clone._in[target].add(source)
        clone._n_edges = self._n_edges
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of directed edges."""
        return self._n_edges

    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has been called."""
        return self._frozen

    def nodes(self) -> range:
        """The node ids as a ``range`` object."""
        return range(self._n)

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the directed edge ``source -> target`` exists."""
        self._check_node(source)
        self._check_node(target)
        return target in self._out[source]

    def successors(self, node: int) -> np.ndarray:
        """Out-neighbours of ``node`` as a sorted ``int64`` array."""
        self._check_node(node)
        if self._frozen and self._out_arrays is not None:
            return self._out_arrays[node]
        return np.fromiter(sorted(self._out[node]), dtype=np.int64,
                           count=len(self._out[node]))

    def predecessors(self, node: int) -> np.ndarray:
        """In-neighbours (parents) of ``node`` as a sorted ``int64`` array."""
        self._check_node(node)
        if self._frozen and self._in_arrays is not None:
            return self._in_arrays[node]
        return np.fromiter(sorted(self._in[node]), dtype=np.int64,
                           count=len(self._in[node]))

    def out_degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._out[node])

    def in_degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._in[node])

    def out_degrees(self) -> np.ndarray:
        """Vector of out-degrees for all nodes."""
        return np.fromiter((len(s) for s in self._out), dtype=np.int64, count=self._n)

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees for all nodes."""
        return np.fromiter((len(s) for s in self._in), dtype=np.int64, count=self._n)

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges in (source, target) lexicographic order."""
        for source in range(self._n):
            for target in sorted(self._out[source]):
                yield (source, target)

    def edge_set(self) -> frozenset[Edge]:
        """The edge set as a frozenset of pairs (for metric computations)."""
        return frozenset(
            (source, target) for source in range(self._n) for target in self._out[source]
        )

    def edge_array(self) -> np.ndarray:
        """Edges as an ``(m, 2)`` int64 array in lexicographic order."""
        if self._n_edges == 0:
            return np.empty((0, 2), dtype=np.int64)
        return np.array(list(self.edges()), dtype=np.int64)

    def adjacency_matrix(self, dtype: type = np.bool_) -> np.ndarray:
        """Dense ``(n, n)`` adjacency matrix, ``A[i, j] == 1`` iff edge i->j."""
        matrix = np.zeros((self._n, self._n), dtype=dtype)
        for source in range(self._n):
            targets = list(self._out[source])
            if targets:
                matrix[source, targets] = 1
        return matrix

    def reverse(self) -> "DiffusionGraph":
        """Graph with every edge direction flipped."""
        clone = DiffusionGraph(self._n)
        clone.add_edges((t, s) for s, t in self.edges())
        return clone

    def induced_subgraph(self, nodes: Iterable[int]) -> "DiffusionGraph":
        """Subgraph on the given nodes, relabelled to ``0..k-1``.

        Node ``nodes[i]`` becomes node ``i`` (matching
        :meth:`repro.simulation.statuses.StatusMatrix.select_nodes`, so a
        partially observed experiment can evaluate against the visible
        ground truth).  Only edges with both endpoints selected survive.
        """
        selected = list(dict.fromkeys(int(v) for v in nodes))
        for node in selected:
            self._check_node(node)
        relabel = {old: new for new, old in enumerate(selected)}
        subgraph = DiffusionGraph(len(selected))
        for source in selected:
            for target in self._out[source]:
                if target in relabel:
                    subgraph.add_edge(relabel[source], relabel[target])
        return subgraph

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (imported lazily)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(range(self._n))
        graph.add_edges_from(self.edges())
        return graph

    @classmethod
    def from_networkx(cls, graph) -> "DiffusionGraph":
        """Build from any networkx graph whose nodes are ``0..n-1`` ints.

        Undirected inputs are converted to two directed edges per edge,
        which matches how the paper treats the undirected NetSci network.
        """
        nodes = sorted(graph.nodes())
        n = len(nodes)
        if nodes != list(range(n)):
            raise GraphError("nodes must be the contiguous integers 0..n-1; relabel first")
        result = cls(n)
        directed = graph.is_directed()
        for u, v in graph.edges():
            if u == v:
                continue
            result.add_edge(int(u), int(v))
            if not directed:
                result.add_edge(int(v), int(u))
        return result

    @classmethod
    def from_adjacency_matrix(cls, matrix: np.ndarray) -> "DiffusionGraph":
        """Build from a square (n, n) matrix; nonzero off-diagonals are edges."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise GraphError(f"adjacency matrix must be square, got shape {matrix.shape}")
        n = matrix.shape[0]
        sources, targets = np.nonzero(matrix)
        graph = cls(n)
        for s, t in zip(sources.tolist(), targets.tolist()):
            if s != t:
                graph.add_edge(s, t)
        return graph

    # ------------------------------------------------------------------
    # dunders
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiffusionGraph):
            return NotImplemented
        return self._n == other._n and self._out == other._out

    def __hash__(self) -> int:  # graphs are mutable until frozen; id-hash
        return id(self)

    def __repr__(self) -> str:
        state = "frozen" if self._frozen else "mutable"
        return f"DiffusionGraph(n_nodes={self._n}, n_edges={self._n_edges}, {state})"

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._n:
            raise GraphError(f"node {node} is out of range [0, {self._n})")
