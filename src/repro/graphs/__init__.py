"""Directed-graph substrate: data structure, generators, metrics, I/O."""

from repro.graphs.digraph import DiffusionGraph
from repro.graphs.generators.kronecker import kronecker_digraph
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.graphs.generators.random_graphs import (
    barabasi_albert_digraph,
    core_periphery_digraph,
    erdos_renyi_digraph,
    random_tree_digraph,
    watts_strogatz_digraph,
)
from repro.graphs.generators.realworld import dunf, netsci
from repro.graphs.metrics import GraphSummary, degree_statistics, summarize_graph
from repro.graphs import io

__all__ = [
    "DiffusionGraph",
    "kronecker_digraph",
    "LFRParams",
    "lfr_benchmark_graph",
    "erdos_renyi_digraph",
    "barabasi_albert_digraph",
    "watts_strogatz_digraph",
    "random_tree_digraph",
    "core_periphery_digraph",
    "netsci",
    "dunf",
    "GraphSummary",
    "degree_statistics",
    "summarize_graph",
    "io",
]
