"""repro.obs — tracing, metrics, exporters, and run manifests.

The observability layer of the reproduction (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.trace` — nested span tracing with a zero-cost
  disabled path (:data:`NULL_TRACER`);
* :mod:`repro.obs.metrics` — counters / gauges / summary histograms;
* :mod:`repro.obs.export` — JSONL span logs, Chrome ``trace_event``
  JSON, Prometheus text dumps;
* :mod:`repro.obs.manifest` — per-run JSON manifests (config, seeds,
  environment, git revision, metrics, stage timings);
* :mod:`repro.obs.perfcheck` — manifest-vs-baseline slowdown checks
  (the ``repro perf-check`` command).

This package is a leaf: it never imports ``repro.core`` or
``repro.evaluation``, so every layer of the library can instrument
itself without import cycles.
"""

from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    spans_jsonl,
    write_chrome_trace,
    write_prometheus,
    write_spans_jsonl,
)
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    collect_environment,
    git_revision,
    load_manifest,
    manifest_for_experiment,
    manifest_for_fit,
    validate_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
    metric_key,
)
from repro.obs.perfcheck import (
    PerfCheckReport,
    TimingComparison,
    compare_profiles,
    format_report,
    load_timing_profile,
    timing_profile,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    ambient_tracer,
    current_span,
    current_tracer,
)

__all__ = [
    # tracing
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "current_span",
    "ambient_tracer",
    "Telemetry",
    # metrics
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "metric_key",
    # exporters
    "spans_jsonl",
    "write_spans_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    # manifests
    "MANIFEST_FORMAT",
    "collect_environment",
    "git_revision",
    "manifest_for_fit",
    "manifest_for_experiment",
    "validate_manifest",
    "write_manifest",
    "load_manifest",
    # perf-check
    "TimingComparison",
    "PerfCheckReport",
    "timing_profile",
    "load_timing_profile",
    "compare_profiles",
    "format_report",
]
