"""repro.obs — tracing, metrics, exporters, and run manifests.

The observability layer of the reproduction (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.trace` — nested span tracing with a zero-cost
  disabled path (:data:`NULL_TRACER`);
* :mod:`repro.obs.metrics` — counters / gauges / summary histograms;
* :mod:`repro.obs.export` — JSONL span logs, Chrome ``trace_event``
  JSON, Prometheus text dumps;
* :mod:`repro.obs.manifest` — per-run JSON manifests (config, seeds,
  environment, git revision, metrics, stage timings);
* :mod:`repro.obs.perfcheck` — manifest-vs-baseline slowdown checks
  (the ``repro perf-check`` command);
* :mod:`repro.obs.profiler` — dependency-free sampling wall-clock
  profiler with collapsed-stack and SVG flamegraph output;
* :mod:`repro.obs.memory` — tracemalloc/RSS per-span memory
  attribution with a zero-cost disabled path (:data:`NULL_MEMORY`);
* :mod:`repro.obs.trend` — CRC-checked JSONL perf trend ledger and the
  rolling-baseline check behind ``repro perf-check --trend``.

This package is a leaf: it never imports ``repro.core`` or
``repro.evaluation``, so every layer of the library can instrument
itself without import cycles.
"""

from repro.obs.export import (
    chrome_trace,
    prometheus_text,
    spans_jsonl,
    write_chrome_trace,
    write_prometheus,
    write_spans_jsonl,
)
from repro.obs.manifest import (
    MANIFEST_FORMAT,
    collect_environment,
    git_revision,
    load_manifest,
    manifest_for_experiment,
    manifest_for_fit,
    validate_manifest,
    write_manifest,
)
from repro.obs.memory import (
    NULL_MEMORY,
    MemoryTracker,
    NullMemoryTracker,
    read_peak_rss_bytes,
    read_rss_bytes,
)
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
    metric_key,
)
from repro.obs.perfcheck import (
    PerfCheckReport,
    TimingComparison,
    compare_profiles,
    format_report,
    load_timing_profile,
    timing_profile,
)
from repro.obs.profiler import (
    NULL_PROFILER,
    NullProfiler,
    Profile,
    SamplingProfiler,
    profile_for,
    profiled,
    render_flamegraph,
    write_flamegraph,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    ambient_tracer,
    current_span,
    current_tracer,
)
from repro.obs.trend import (
    TREND_FORMAT,
    append_trend,
    check_trend,
    load_trend,
    rolling_baseline,
    trend_series,
)

__all__ = [
    # tracing
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "current_span",
    "ambient_tracer",
    "Telemetry",
    # metrics
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "metric_key",
    # exporters
    "spans_jsonl",
    "write_spans_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    # manifests
    "MANIFEST_FORMAT",
    "collect_environment",
    "git_revision",
    "manifest_for_fit",
    "manifest_for_experiment",
    "validate_manifest",
    "write_manifest",
    "load_manifest",
    # perf-check
    "TimingComparison",
    "PerfCheckReport",
    "timing_profile",
    "load_timing_profile",
    "compare_profiles",
    "format_report",
    # profiler
    "Profile",
    "SamplingProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "profiled",
    "profile_for",
    "render_flamegraph",
    "write_flamegraph",
    # memory attribution
    "MemoryTracker",
    "NullMemoryTracker",
    "NULL_MEMORY",
    "read_rss_bytes",
    "read_peak_rss_bytes",
    # perf trend ledger
    "TREND_FORMAT",
    "append_trend",
    "load_trend",
    "check_trend",
    "rolling_baseline",
    "trend_series",
]
