"""Performance regression checks over run manifests and bench archives.

``repro perf-check current.json --baseline old.json`` compares the
timing profile of a run against a baseline and **fails** (non-zero exit)
when any shared timing slowed down beyond a configurable ratio — the
guard-rail the paper's running-time panels deserve in CI.

Both sides may be either a run manifest (:mod:`repro.obs.manifest`) or
an experiment archive from ``benchmarks/results/*.json``
(:mod:`repro.evaluation.archive` format).  Each is reduced to a flat
``{entry: seconds}`` profile:

* manifest → ``total`` plus one ``stage:<name>`` entry per pipeline
  stage (or ``method:<name>`` means for experiment manifests);
* experiment archive → ``total`` plus mean ok-cell runtime per method
  (``method:<name>``).

Only entries present in **both** profiles are compared; timings below
``min_seconds`` are skipped (micro-stage noise dwarfs any signal).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Union

from repro.exceptions import DataError
from repro.obs.manifest import MANIFEST_FORMAT, validate_manifest

__all__ = [
    "TimingComparison",
    "PerfCheckReport",
    "timing_profile",
    "load_timing_profile",
    "compare_profiles",
    "format_report",
]

PathLike = Union[str, Path]

_ARCHIVE_FORMAT = "repro.experiment_result"


@dataclass(frozen=True)
class TimingComparison:
    """One compared timing entry."""

    entry: str
    baseline_seconds: float
    current_seconds: float
    max_slowdown: float

    @property
    def ratio(self) -> float:
        """current / baseline (``inf`` when the baseline is 0)."""
        if self.baseline_seconds <= 0:
            return math.inf if self.current_seconds > 0 else 1.0
        return self.current_seconds / self.baseline_seconds

    @property
    def ok(self) -> bool:
        return self.ratio <= self.max_slowdown


@dataclass(frozen=True)
class PerfCheckReport:
    """Outcome of one perf-check: per-entry verdicts plus skip notes."""

    comparisons: tuple[TimingComparison, ...]
    skipped: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """True when every compared entry is within budget."""
        return all(c.ok for c in self.comparisons)

    def regressions(self) -> list[TimingComparison]:
        return [c for c in self.comparisons if not c.ok]


def timing_profile(document: Mapping) -> dict[str, float]:
    """Reduce a manifest or experiment-archive document to
    ``{entry: seconds}``."""
    fmt = document.get("format")
    if fmt == MANIFEST_FORMAT:
        validate_manifest(document)
        profile = {"total": float(document["total_seconds"])}
        for stage, seconds in document["stages"].items():
            # Experiment manifests already use method:<name> keys; fit
            # manifests carry bare stage names.
            key = stage if ":" in stage else f"stage:{stage}"
            profile[key] = float(seconds)
        return profile
    if fmt == _ARCHIVE_FORMAT:
        per_method: dict[str, list[float]] = {}
        total = 0.0
        for row in document.get("results", []):
            runtime = float(row["runtime_seconds"])
            total += runtime
            if row.get("error") is None:
                per_method.setdefault(str(row["method"]), []).append(runtime)
        profile = {"total": total}
        for method, values in per_method.items():
            profile[f"method:{method}"] = sum(values) / len(values)
        return profile
    raise DataError(
        f"cannot build a timing profile from format={fmt!r}; expected "
        f"{MANIFEST_FORMAT!r} or {_ARCHIVE_FORMAT!r}"
    )


def load_timing_profile(path: PathLike) -> dict[str, float]:
    """Load a JSON file and reduce it with :func:`timing_profile`."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise DataError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise DataError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(document, Mapping):
        raise DataError(f"{path}: expected a JSON object")
    return timing_profile(document)


def compare_profiles(
    current: Mapping[str, float],
    baseline: Mapping[str, float],
    *,
    max_slowdown: float = 1.5,
    min_seconds: float = 0.01,
    entry_budgets: Mapping[str, float] | None = None,
) -> PerfCheckReport:
    """Compare two timing profiles entry by entry.

    Parameters
    ----------
    current / baseline:
        ``{entry: seconds}`` profiles (see :func:`timing_profile`).
    max_slowdown:
        Default permitted ``current / baseline`` ratio (> 0).
    min_seconds:
        Entries whose baseline **and** current timings are both below
        this are skipped — sub-centisecond stages are all noise.
    entry_budgets:
        Per-entry ratio overrides, e.g. ``{"stage:search": 1.2}``.

    Raises
    ------
    DataError
        When the profiles share no comparable entry (a silent pass
        would be meaningless).
    """
    if max_slowdown <= 0:
        raise DataError(f"max_slowdown must be positive, got {max_slowdown}")
    budgets = dict(entry_budgets or {})
    comparisons: list[TimingComparison] = []
    skipped: list[str] = []
    shared = sorted(set(current) & set(baseline))
    for entry in shared:
        base_s = float(baseline[entry])
        cur_s = float(current[entry])
        if base_s < min_seconds and cur_s < min_seconds:
            floor = (
                f"{min_seconds / 1e6:.1f}MB"
                if entry.startswith("mem:")
                else f"{min_seconds}s"
            )
            skipped.append(f"{entry}: below {floor} noise floor")
            continue
        comparisons.append(
            TimingComparison(
                entry=entry,
                baseline_seconds=base_s,
                current_seconds=cur_s,
                max_slowdown=budgets.get(entry, max_slowdown),
            )
        )
    for entry in sorted(set(current) ^ set(baseline)):
        skipped.append(f"{entry}: present on one side only")
    if not comparisons and not any(
        s.endswith("noise floor") for s in skipped
    ):
        raise DataError(
            "no comparable timing entries between the two profiles "
            f"(current: {sorted(current)}, baseline: {sorted(baseline)})"
        )
    return PerfCheckReport(
        comparisons=tuple(comparisons), skipped=tuple(skipped)
    )


def _format_value(entry: str, value: float) -> str:
    # Trend ledgers mix timing entries with ``mem:`` byte counts; show
    # the latter in MB instead of pretending bytes are seconds.
    if entry.startswith("mem:"):
        return f"{value / 1e6:.1f}MB"
    return f"{value:.3f}s"


def format_report(report: PerfCheckReport) -> str:
    """Human-readable verdict table for the CLI."""
    lines = [
        f"{'entry':<24} {'baseline':>10} {'current':>10} "
        f"{'ratio':>7} {'budget':>7}  verdict"
    ]
    for c in report.comparisons:
        ratio = "inf" if math.isinf(c.ratio) else f"{c.ratio:.2f}x"
        baseline = _format_value(c.entry, c.baseline_seconds)
        current = _format_value(c.entry, c.current_seconds)
        lines.append(
            f"{c.entry:<24} {baseline:>10} {current:>10} "
            f"{ratio:>7} {c.max_slowdown:>6.2f}x  "
            f"{'ok' if c.ok else 'REGRESSION'}"
        )
    for note in report.skipped:
        lines.append(f"skipped: {note}")
    lines.append(
        "perf-check: PASS"
        if report.ok
        else f"perf-check: FAIL ({len(report.regressions())} regression(s))"
    )
    return "\n".join(lines)
