"""Span-based tracing for the inference pipeline.

The tracing model is deliberately small: a :class:`Span` is a named,
nestable wall-clock interval with free-form attributes; a :class:`Tracer`
records finished spans; exporters (:mod:`repro.obs.export`) turn them
into JSONL, Chrome ``trace_event`` JSON, or human-readable trees.

Design constraints the implementation serves:

* **zero cost when disabled** — the default tracer is the process-wide
  :data:`NULL_TRACER`, whose ``span()`` returns a shared no-op context
  manager; instrumentation sites pay one attribute lookup and one
  dict construction, nothing else.  ``tests/property/test_prop_obs.py``
  and the micro-benchmark guard in ``benchmarks/bench_core_micro.py``
  hold the null path to that promise.
* **thread- and process-safety** — span ids are salted with the pid and
  drawn from a locked counter; finished spans are appended under a lock;
  the *current* span is a :class:`contextvars.ContextVar`, so every
  thread nests independently.
* **worker spans travel with results** — spans recorded inside executor
  workers are serialised (:meth:`Span.to_dict`), shipped back with the
  chunk outcome, and grafted into the parent trace via
  :meth:`Tracer.adopt`, yielding one merged trace whatever the backend.

Timestamps come from :func:`time.perf_counter` (monotonic).  Each tracer
also records an epoch anchor (``time.time() - time.perf_counter()`` at
construction) so exporters can map monotonic spans onto wall-clock time.
On Linux ``perf_counter`` is ``CLOCK_MONOTONIC``, which is shared across
processes, so worker spans align with the parent timeline; on platforms
with per-process clock bases the merged trace may show small skews.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "current_span",
    "ambient_tracer",
]


@dataclass
class Span:
    """One named, nestable interval of work.

    Attributes
    ----------
    name:
        Dotted span name, e.g. ``"tends.fit"`` or ``"stage.search"``.
    span_id / parent_id:
        Trace-unique ids (pid-salted); ``parent_id`` is ``None`` for
        root spans.
    start / end:
        :func:`time.perf_counter` timestamps; ``end`` is 0.0 while the
        span is still open.
    pid / thread:
        Recording process id and thread name (worker attribution).
    attrs:
        Free-form scalar attributes (:meth:`set` merges more in).
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    end: float = 0.0
    pid: int = field(default_factory=os.getpid)
    thread: str = field(default_factory=lambda: threading.current_thread().name)
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while open)."""
        return max(self.end - self.start, 0.0) if self.end else 0.0

    def set(self, **attrs) -> "Span":
        """Merge attributes into the span; returns the span for chaining."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        """Serialise for shipping across process boundaries / JSONL."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "pid": self.pid,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, document: Mapping) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            name=str(document["name"]),
            span_id=int(document["span_id"]),
            parent_id=(
                None
                if document.get("parent_id") is None
                else int(document["parent_id"])
            ),
            start=float(document["start"]),
            end=float(document["end"]),
            pid=int(document.get("pid", 0)),
            thread=str(document.get("thread", "")),
            attrs=dict(document.get("attrs", {})),
        )


#: The span currently open in this thread/context (nesting parent).
_CURRENT_SPAN: ContextVar[Span | None] = ContextVar("repro_obs_span", default=None)


def current_span() -> Span | None:
    """The innermost open span in the current context, if any."""
    return _CURRENT_SPAN.get()


class Tracer:
    """Collects finished spans; thread-safe; pid-salted span ids.

    >>> tracer = Tracer()
    >>> with tracer.span("outer") as outer:
    ...     with tracer.span("inner", node=3):
    ...         pass
    >>> [s.name for s in tracer.finished()]
    ['inner', 'outer']
    >>> tracer.finished()[0].parent_id == outer.span_id
    True
    """

    #: Instrumentation sites may branch on this to skip attribute
    #: computation that only matters when spans are recorded.
    enabled: bool = True

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        #: wall-clock epoch minus the monotonic clock at construction;
        #: exporters add it to span timestamps to recover wall time.
        self.epoch_offset = time.time() - time.perf_counter()

    # ------------------------------------------------------------------
    def _next_id(self) -> int:
        with self._lock:
            counter = next(self._ids)
        # pid-salted so ids from worker-process tracers never collide
        # with the parent's when adopted into one trace.
        return (os.getpid() << 24) + counter

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a span nested under the context's current span."""
        parent = _CURRENT_SPAN.get()
        span = Span(
            name=name,
            span_id=self._next_id(),
            parent_id=None if parent is None else parent.span_id,
            start=time.perf_counter(),
            attrs=dict(attrs),
        )
        token = _CURRENT_SPAN.set(span)
        try:
            yield span
        finally:
            _CURRENT_SPAN.reset(token)
            span.end = time.perf_counter()
            with self._lock:
                self._spans.append(span)

    # ------------------------------------------------------------------
    def finished(self) -> tuple[Span, ...]:
        """All spans closed so far, in completion order."""
        with self._lock:
            return tuple(self._spans)

    def adopt(
        self,
        spans: Iterable[Span | Mapping],
        parent_id: int | None = None,
    ) -> None:
        """Graft spans shipped back from a worker into this trace.

        Dict payloads (the cross-process wire format) are rebuilt into
        :class:`Span` objects; spans without a parent (the worker's
        roots) are re-parented under ``parent_id`` so the merged trace
        nests them where the work was dispatched from.
        """
        rebuilt: list[Span] = []
        for span in spans:
            if not isinstance(span, Span):
                span = Span.from_dict(span)
            if span.parent_id is None and parent_id is not None:
                span.parent_id = parent_id
            rebuilt.append(span)
        with self._lock:
            self._spans.extend(rebuilt)


class _NullSpan:
    """Shared do-nothing span/context-manager (the disabled fast path)."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: ``span()`` hands back one shared null span.

    Every method is side-effect-free and allocation-free, so leaving
    instrumentation calls in hot loops costs only the call itself.
    """

    enabled: bool = False
    epoch_offset: float = 0.0

    def span(self, name: str, **attrs) -> _NullSpan:
        """Return the shared no-op span (usable as a context manager)."""
        return _NULL_SPAN

    def finished(self) -> tuple[Span, ...]:
        """Always empty."""
        return ()

    def adopt(
        self,
        spans: Iterable[Span | Mapping],
        parent_id: int | None = None,
    ) -> None:
        """Discard shipped spans."""


#: Process-wide disabled tracer; the default ambient tracer.
NULL_TRACER = NullTracer()

#: The tracer instrumentation sites should record into.  Defaults to the
#: null tracer; ``Tends.fit`` (and the executor's worker wrappers)
#: install a real tracer for the duration of a traced run.
_AMBIENT: ContextVar[Tracer | NullTracer] = ContextVar(
    "repro_obs_tracer", default=NULL_TRACER
)


def current_tracer() -> Tracer | NullTracer:
    """The ambient tracer of the calling context (null when untraced)."""
    return _AMBIENT.get()


@contextmanager
def ambient_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Install ``tracer`` as the ambient tracer for the ``with`` block.

    New threads and worker processes do **not** inherit the ambient
    tracer (contexts are per-thread); the executor re-installs it inside
    its worker wrappers.
    """
    token = _AMBIENT.set(tracer)
    try:
        yield tracer
    finally:
        _AMBIENT.reset(token)
