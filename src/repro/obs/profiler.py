"""Dependency-free sampling wall-clock profiler.

The span tracer (:mod:`repro.obs.trace`) answers *which stage* was slow;
this module answers *which frames* burned the CPU inside it.  A daemon
thread samples ``sys._current_frames()`` at a configurable rate and
folds each observed call stack into Brendan-Gregg-style collapsed
counts (``root;child;leaf <samples>``), which render as an SVG
flamegraph in the same hand-built, no-matplotlib style as
:mod:`repro.evaluation.plotting`.

Design constraints, mirroring the tracer:

* **pure observer** — sampling reads interpreter frames; it never
  touches the profiled code's state, so fit results are bit-identical
  with profiling on or off.
* **zero cost when disabled** — :data:`NULL_PROFILER` mirrors
  :data:`~repro.obs.trace.NULL_TRACER`: every method is a no-op and
  ``profiled()`` with ``enabled=False`` adds one context-manager enter.
* **stdlib only** — ``sys._current_frames()`` is CPython's documented
  (if underscored) all-thread frame snapshot; no psutil, no py-spy.

Sampling bias caveats are the usual ones: stacks are wall-clock
samples, so frames blocked in C extensions without releasing the GIL
are invisible, and anything shorter than ``1/hz`` seconds may be
missed entirely.  Use the span tracer for exact stage accounting and
this profiler for *where inside the stage*.
"""

from __future__ import annotations

import sys
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Union
from xml.sax.saxutils import escape

from repro.exceptions import ConfigurationError

__all__ = [
    "Profile",
    "SamplingProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "profiled",
    "profile_for",
    "render_flamegraph",
    "write_flamegraph",
]

PathLike = Union[str, Path]

#: Default sampling rate.  A prime keeps samples from phase-locking
#: with timer-driven loops (the classic 100 Hz aliasing trap).
DEFAULT_HZ = 97.0

#: Flamegraph frame palette — the Okabe–Ito colours the repo's charts
#: use, cycled deterministically by frame-name hash so the same frame
#: keeps its colour across renders.
_PALETTE = (
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#E69F00",
    "#56B4E9",
)


def _frame_label(frame) -> str:
    """``module.function`` label for one interpreter frame."""
    code = frame.f_code
    return f"{Path(code.co_filename).stem}.{code.co_name}"


def _collapse(frame, max_depth: int) -> str:
    """Fold a leaf frame's call chain into ``root;...;leaf``."""
    labels: list[str] = []
    while frame is not None and len(labels) < max_depth:
        labels.append(_frame_label(frame))
        frame = frame.f_back
    return ";".join(reversed(labels))


@dataclass(frozen=True)
class Profile:
    """One completed sampling run.

    Attributes
    ----------
    stacks:
        Collapsed-stack sample counts: ``"root;child;leaf" -> samples``.
    samples:
        Total samples recorded (sum of ``stacks`` values).
    duration:
        Wall-clock seconds the sampler ran.
    hz:
        The configured sampling rate.
    """

    stacks: Mapping[str, int] = field(default_factory=dict)
    samples: int = 0
    duration: float = 0.0
    hz: float = DEFAULT_HZ

    def collapsed(self) -> str:
        """Folded-format text (``stack count`` per line, busiest first) —
        feedable to any flamegraph toolchain."""
        ordered = sorted(self.stacks.items(), key=lambda kv: (-kv[1], kv[0]))
        return "\n".join(f"{stack} {count}" for stack, count in ordered)

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """Busiest leaf frames by self samples (the frame actually on
        CPU when the sample fired)."""
        by_leaf: dict[str, int] = {}
        for stack, count in self.stacks.items():
            leaf = stack.rsplit(";", 1)[-1]
            by_leaf[leaf] = by_leaf.get(leaf, 0) + count
        ordered = sorted(by_leaf.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered[:n]

    def to_dict(self) -> dict:
        """JSON-ready form (the ``/debug/profile`` payload)."""
        return {
            "samples": self.samples,
            "duration_seconds": self.duration,
            "hz": self.hz,
            "stacks": dict(self.stacks),
            "top": [list(entry) for entry in self.top(20)],
        }

    def flamegraph_svg(self, *, title: str = "flamegraph") -> str:
        """Render this profile as an SVG flamegraph."""
        return render_flamegraph(self.stacks, title=title)

    def annotate(self, span) -> None:
        """Attach summary attrs to a span (``profile_samples``,
        ``profile_top``) — how a profile rides in a trace."""
        top = self.top(1)
        span.set(
            profile_samples=self.samples,
            profile_seconds=round(self.duration, 6),
            profile_top=top[0][0] if top else None,
        )


class SamplingProfiler:
    """Background-thread sampling profiler over ``sys._current_frames()``.

    >>> profiler = SamplingProfiler(hz=200)
    >>> profiler.start()
    >>> sum(i * i for i in range(200_000))  # doctest: +SKIP
    >>> profile = profiler.stop()           # doctest: +SKIP

    Parameters
    ----------
    hz:
        Target samples per second (> 0).  Real rates cap out around the
        platform timer granularity; 97 (the default) is plenty for
        stage-level attribution.
    threads:
        ``"all"`` (default) samples every thread except the sampler
        itself; a collection of thread idents restricts sampling to
        those threads.
    max_depth:
        Frames kept per stack (deeper chains are truncated at the root
        end, keeping the leaves — the part that names the hot code).
    """

    enabled: bool = True

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        *,
        threads: str | tuple[int, ...] = "all",
        max_depth: int = 64,
    ) -> None:
        if hz <= 0:
            raise ConfigurationError(f"hz must be positive, got {hz}")
        if max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        self.hz = float(hz)
        self.max_depth = max_depth
        self._threads = (
            "all" if threads == "all" else frozenset(int(t) for t in threads)
        )
        self._stacks: dict[str, int] = {}
        self._samples = 0
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at = 0.0
        self._lock = threading.Lock()
        #: The profile captured by the context-manager form.
        self.profile: Profile | None = None

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Spawn the sampling thread; returns ``self`` for chaining."""
        if self._thread is not None:
            raise ConfigurationError("profiler already running")
        self._stop_event.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Profile:
        """Stop sampling and return the captured :class:`Profile`."""
        thread = self._thread
        if thread is None:
            raise ConfigurationError("profiler is not running")
        self._stop_event.set()
        thread.join(timeout=5.0)
        self._thread = None
        duration = time.perf_counter() - self._started_at
        with self._lock:
            stacks = dict(self._stacks)
            samples = self._samples
            self._stacks = {}
            self._samples = 0
        self.profile = Profile(
            stacks=stacks, samples=samples, duration=duration, hz=self.hz
        )
        return self.profile

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_ident = threading.get_ident()
        while not self._stop_event.wait(interval):
            frames = sys._current_frames()
            with self._lock:
                for ident, frame in frames.items():
                    if ident == own_ident:
                        continue
                    if self._threads != "all" and ident not in self._threads:
                        continue
                    stack = _collapse(frame, self.max_depth)
                    if not stack:
                        continue
                    self._stacks[stack] = self._stacks.get(stack, 0) + 1
                    self._samples += 1


class NullProfiler:
    """No-op twin of :class:`SamplingProfiler` (the disabled fast path)."""

    enabled: bool = False
    hz: float = 0.0
    profile: Profile | None = None

    def start(self) -> "NullProfiler":
        return self

    def stop(self) -> Profile:
        return _EMPTY_PROFILE

    def __enter__(self) -> "NullProfiler":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_EMPTY_PROFILE = Profile()

#: Process-wide disabled profiler, mirroring ``NULL_TRACER``.
NULL_PROFILER = NullProfiler()


@contextmanager
def profiled(
    span=None, *, hz: float = DEFAULT_HZ, enabled: bool = True
) -> Iterator[SamplingProfiler | NullProfiler]:
    """Profile the ``with`` block; optionally annotate a span.

    The attachable-to-any-span-scope form::

        with tracer.span("tends.search") as span, profiled(span) as prof:
            ...
        prof.profile.collapsed()
    """
    profiler: SamplingProfiler | NullProfiler = (
        SamplingProfiler(hz=hz) if enabled else NULL_PROFILER
    )
    profiler.start()
    try:
        yield profiler
    finally:
        profile = profiler.stop()
        profiler.profile = profile
        if span is not None and profile.samples:
            profile.annotate(span)


def profile_for(seconds: float, *, hz: float = DEFAULT_HZ) -> Profile:
    """Sample every thread for ``seconds`` and return the profile (the
    ``GET /debug/profile?seconds=N`` primitive)."""
    if seconds <= 0:
        raise ConfigurationError(f"seconds must be positive, got {seconds}")
    profiler = SamplingProfiler(hz=hz)
    profiler.start()
    time.sleep(seconds)
    return profiler.stop()


# ----------------------------------------------------------------------
# collapsed stacks → SVG flamegraph
# ----------------------------------------------------------------------

class _Node:
    __slots__ = ("name", "count", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.children: dict[str, _Node] = {}


def _build_tree(stacks: Mapping[str, int]) -> _Node:
    root = _Node("all")
    for stack, count in stacks.items():
        root.count += count
        node = root
        for label in stack.split(";"):
            child = node.children.get(label)
            if child is None:
                child = node.children[label] = _Node(label)
            child.count += count
            node = child
    return root


def _depth(node: _Node) -> int:
    if not node.children:
        return 1
    return 1 + max(_depth(child) for child in node.children.values())


def render_flamegraph(
    stacks: Mapping[str, int],
    *,
    title: str = "flamegraph",
    width: int = 960,
    row_height: int = 18,
    min_fraction: float = 0.002,
) -> str:
    """Render collapsed-stack counts as a standalone SVG flamegraph.

    Icicle orientation (root on top), frame width proportional to
    inclusive samples, hover ``<title>`` tooltips with exact counts,
    and frames narrower than ``min_fraction`` of the total pruned to
    keep the document small.  Like the rest of the repo's figures this
    is hand-built SVG — no matplotlib, no JS.
    """
    root = _build_tree(stacks)
    total = max(root.count, 1)
    margin_top, margin_side, margin_bottom = 40, 10, 10
    plot_w = width - 2 * margin_side
    depth = _depth(root) if root.children else 1
    height = margin_top + depth * row_height + margin_bottom

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2:.1f}" y="24" text-anchor="middle" '
        f'font-size="15" font-family="sans-serif">'
        f"{escape(title)} — {total} samples</text>",
    ]

    def emit(node: _Node, x: float, level: int) -> None:
        node_w = node.count / total * plot_w
        if node_w < min_fraction * plot_w:
            return
        y = margin_top + level * row_height
        colour = _PALETTE[zlib.crc32(node.name.encode()) % len(_PALETTE)]
        pct = 100.0 * node.count / total
        parts.append(
            f'<g><rect x="{x:.2f}" y="{y}" width="{node_w:.2f}" '
            f'height="{row_height - 1}" fill="{colour}" fill-opacity="0.85" '
            f'stroke="white" stroke-width="0.5">'
            f"<title>{escape(node.name)}: {node.count} samples "
            f"({pct:.1f}%)</title></rect>"
        )
        if node_w > 40:
            label = node.name
            keep = max(int(node_w / 7) - 1, 1)
            if len(label) > keep:
                label = label[: max(keep - 1, 1)] + "…"
            parts.append(
                f'<text x="{x + 3:.2f}" y="{y + row_height - 5}" '
                f'fill="white">{escape(label)}</text>'
            )
        parts.append("</g>")
        child_x = x
        for name in sorted(node.children):
            child = node.children[name]
            emit(child, child_x, level + 1)
            child_x += child.count / total * plot_w

    if root.children:
        # The synthetic "all" root is level 0; real frames start there
        # too when there is exactly one root frame, so draw children
        # directly — every pixel of row 0 is real code.
        child_x = float(margin_side)
        for name in sorted(root.children):
            child = root.children[name]
            emit(child, child_x, 0)
            child_x += child.count / total * plot_w
    else:
        parts.append(
            f'<text x="{width / 2:.1f}" y="{margin_top + 14}" '
            f'text-anchor="middle" font-family="sans-serif">'
            f"no samples captured</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def write_flamegraph(
    stacks: Mapping[str, int], path: PathLike, **kwargs
) -> Path:
    """Render and write :func:`render_flamegraph` output."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_flamegraph(stacks, **kwargs), encoding="utf-8")
    return path
