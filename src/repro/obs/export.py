"""Exporters: JSONL span logs, Chrome ``trace_event`` JSON, Prometheus text.

Three output formats cover the three consumption modes:

* :func:`write_spans_jsonl` — one JSON object per line per span; easy to
  grep, diff, and post-process.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` format (``{"traceEvents": [...]}``), loadable in
  ``chrome://tracing`` and https://ui.perfetto.dev for a flame view of
  the pipeline, including per-worker lanes under the process executor.
* :func:`prometheus_text` / :func:`write_prometheus` — a Prometheus
  exposition-format dump of a metrics snapshot, scrape-compatible enough
  for ad-hoc ingestion and diffable in perf-check workflows.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping, Sequence, Union

from repro.obs.trace import Span

__all__ = [
    "spans_jsonl",
    "write_spans_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
]

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# spans → JSONL
# ----------------------------------------------------------------------

def spans_jsonl(spans: Iterable[Span]) -> str:
    """One compact JSON object per line per span."""
    return "\n".join(
        json.dumps(span.to_dict(), separators=(",", ":")) for span in spans
    )


def write_spans_jsonl(spans: Iterable[Span], path: PathLike) -> Path:
    """Write :func:`spans_jsonl` output (trailing newline included)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = spans_jsonl(spans)
    path.write_text(text + "\n" if text else "", encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# spans → Chrome trace_event JSON
# ----------------------------------------------------------------------

def chrome_trace(spans: Sequence[Span], *, epoch_offset: float = 0.0) -> dict:
    """Render spans as a Chrome ``trace_event`` document.

    Each span becomes one complete (``"ph": "X"``) event with
    microsecond timestamps rebased so the trace starts at 0.  Distinct
    ``(pid, thread)`` pairs map to stable integer lanes with
    ``thread_name`` metadata events, so worker threads and processes
    show as named rows in the viewer.

    ``epoch_offset`` (a tracer's :attr:`~repro.obs.trace.Tracer.epoch_offset`)
    is recorded in ``otherData`` so wall-clock time is recoverable.
    """
    closed = [s for s in spans if s.end]
    base = min((s.start for s in closed), default=0.0)
    lanes: dict[tuple[int, str], int] = {}
    events: list[dict] = []
    for span in closed:
        lane = lanes.setdefault((span.pid, span.thread), len(lanes) + 1)
        args = {k: v for k, v in span.attrs.items()}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round((span.start - base) * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": span.pid,
                "tid": lane,
                "cat": span.name.split(".", 1)[0],
                "args": args,
            }
        )
    for (pid, thread), lane in lanes.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": lane,
                "args": {"name": thread},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "time_base": base,
            "epoch_offset": epoch_offset,
        },
    }


def write_chrome_trace(
    spans: Sequence[Span], path: PathLike, *, epoch_offset: float = 0.0
) -> Path:
    """Write :func:`chrome_trace` output as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = chrome_trace(spans, epoch_offset=epoch_offset)
    path.write_text(json.dumps(document, indent=1), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# metrics snapshot → Prometheus text
# ----------------------------------------------------------------------

def _split_key(key: str) -> tuple[str, str]:
    """``'name{k="v"}'`` → ``('name', '{k="v"}')``; bare names pass through."""
    brace = key.find("{")
    if brace == -1:
        return key, ""
    return key[:brace], key[brace:]


def prometheus_text(snapshot: Mapping, *, prefix: str = "repro_") -> str:
    """Render a metrics snapshot in Prometheus exposition format.

    Counters and gauges emit ``# TYPE`` headers; summary histograms emit
    ``_count`` / ``_sum`` / ``_min`` / ``_max`` series.  Metric names are
    prefixed with ``prefix`` (namespace hygiene for real scrapers).
    """
    lines: list[str] = []
    typed: set[str] = set()

    def emit(kind: str, key: str, value: float) -> None:
        name, labels = _split_key(key)
        full = prefix + name
        if full not in typed:
            lines.append(f"# TYPE {full} {kind}")
            typed.add(full)
        rendered = value if isinstance(value, int) else repr(float(value))
        lines.append(f"{full}{labels} {rendered}")

    for key in sorted(snapshot.get("counters", {})):
        emit("counter", key, snapshot["counters"][key])
    for key in sorted(snapshot.get("gauges", {})):
        emit("gauge", key, snapshot["gauges"][key])
    for key in sorted(snapshot.get("histograms", {})):
        cell = snapshot["histograms"][key]
        name, labels = _split_key(key)
        full = prefix + name
        # A Prometheus summary is its _count/_sum pair under one TYPE
        # header; min/max have no summary series, so they stay gauges.
        if full not in typed:
            lines.append(f"# TYPE {full} summary")
            typed.add(full)
        count = cell.get("count", 0)
        total = cell.get("sum", 0.0)
        lines.append(f"{full}_count{labels} {int(count)}")
        lines.append(f"{full}_sum{labels} {repr(float(total))}")
        for stat in ("min", "max"):
            emit("gauge", f"{name}_{stat}{labels}", cell.get(stat, 0))
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    snapshot: Mapping, path: PathLike, *, prefix: str = "repro_"
) -> Path:
    """Write :func:`prometheus_text` output."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(snapshot, prefix=prefix), encoding="utf-8")
    return path
