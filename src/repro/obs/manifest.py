"""Run manifests: one JSON artefact describing one inference run.

A manifest is the durable record the perf-check workflow diffs: what
ran (config, seeds), where (python / numpy / CPU count / git revision),
what it measured (metrics snapshot), and how long each stage took.  One
manifest is written per ``Tends.fit`` (``kind="tends.fit"``, via
``repro infer --manifest-out``) or per ``run_experiment``
(``kind="experiment"``, via ``repro figure --manifest-out`` and the
figure benches).

The builders are duck-typed on the result objects rather than importing
``repro.core`` / ``repro.evaluation``, so ``repro.obs`` stays a leaf
package the rest of the library can import freely.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Mapping, Union

from repro.exceptions import DataError

__all__ = [
    "MANIFEST_FORMAT",
    "collect_environment",
    "git_revision",
    "manifest_for_fit",
    "manifest_for_experiment",
    "write_manifest",
    "load_manifest",
    "validate_manifest",
]

PathLike = Union[str, Path]

MANIFEST_FORMAT = "repro.run_manifest"
_VERSION = 1

#: Keys every valid manifest must carry (the schema documented in
#: docs/OBSERVABILITY.md; CI validates emitted manifests against it).
_REQUIRED_KEYS = (
    "format",
    "version",
    "kind",
    "created_unix",
    "config",
    "seeds",
    "environment",
    "git",
    "stages",
    "metrics",
    "result",
    "total_seconds",
)


def collect_environment() -> dict:
    """Interpreter / library / hardware facts that affect timings."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "executable": sys.executable,
    }


def git_revision(cwd: PathLike | None = None) -> dict | None:
    """``{"revision": ..., "dirty": ...}`` of the enclosing git checkout.

    Returns ``None`` when git is unavailable or the directory is not a
    repository — manifests must never fail a run over provenance.
    """
    try:
        revision = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=None if cwd is None else str(cwd),
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=None if cwd is None else str(cwd),
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return None
    return {"revision": revision, "dirty": bool(status.strip())}


def _jsonable(value):
    """Coerce config values to JSON scalars (paths → str, etc.)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def _base_manifest(kind: str) -> dict:
    return {
        "format": MANIFEST_FORMAT,
        "version": _VERSION,
        "kind": kind,
        "created_unix": time.time(),
        "environment": collect_environment(),
        "git": git_revision(),
    }


def manifest_for_fit(
    result,
    config=None,
    *,
    seeds: Mapping[str, object] | None = None,
    extra: Mapping[str, object] | None = None,
) -> dict:
    """Build a manifest from one :class:`~repro.core.tends.TendsResult`.

    ``config`` defaults to nothing; pass the fit's
    :class:`~repro.core.config.TendsConfig` to record every knob.
    ``seeds`` records whatever seed material the caller used (bootstrap
    seed, simulation seed, corruption seed); ``extra`` merges free-form
    provenance (input path, CLI argv) under ``"extra"``.
    """
    document = _base_manifest("tends.fit")
    config_doc: dict = {}
    if config is not None:
        fields = getattr(config, "__dataclass_fields__", None)
        if fields:
            config_doc = {
                name: _jsonable(getattr(config, name)) for name in fields
            }
        else:  # pragma: no cover - non-dataclass config
            config_doc = _jsonable(vars(config))
    stage_seconds = dict(getattr(result, "stage_seconds", {}) or {})
    stages = {k: v for k, v in stage_seconds.items() if "/" not in k}
    workers = {
        stats.worker: stats.seconds
        for stats in getattr(result, "worker_stats", ()) or ()
    }
    telemetry = getattr(result, "telemetry", None)
    if telemetry is not None:
        # Copy so manifest consumers cannot mutate the result's telemetry.
        metrics = {
            section: dict(values)
            for section, values in telemetry.metrics.items()
        }
    else:
        metrics = {"counters": {}, "gauges": {}, "histograms": {}}
    memory = dict(getattr(telemetry, "memory", {}) or {})
    graph = getattr(result, "graph", None)
    document.update(
        {
            "config": config_doc,
            "seeds": _jsonable(dict(seeds or {})),
            "stages": stages,
            "workers": workers,
            "metrics": metrics,
            "result": {
                "n_nodes": None if graph is None else graph.n_nodes,
                "n_edges": None if graph is None else graph.n_edges,
                "threshold": float(getattr(result, "threshold", math.nan)),
                "kernel": getattr(result, "kernel", None),
            },
            "total_seconds": float(sum(stages.values())),
        }
    )
    if memory:
        # Optional section (absent pre-memory manifests stay valid):
        # {stage: {"alloc_bytes", "peak_alloc_bytes", "peak_rss_bytes"}}.
        document["memory"] = {
            stage: dict(stats) for stage, stats in memory.items()
        }
    if extra:
        document["extra"] = _jsonable(dict(extra))
    return document


def manifest_for_experiment(
    result,
    *,
    seeds: Mapping[str, object] | None = None,
    metrics: Mapping | None = None,
    extra: Mapping[str, object] | None = None,
) -> dict:
    """Build a manifest from one
    :class:`~repro.evaluation.harness.ExperimentResult`.

    ``stages`` holds mean ok-cell runtime per method (``method:<name>``
    keys), which is what perf-check compares across bench runs;
    ``metrics`` takes the harness-level registry snapshot when one was
    recording.
    """
    document = _base_manifest("experiment")
    spec = result.spec
    rows = result.aggregated()
    per_method: dict[str, list[float]] = {}
    for row in rows:
        runtime = float(row["runtime_s"])
        if not math.isnan(runtime):
            per_method.setdefault(str(row["method"]), []).append(runtime)
    stages = {
        f"method:{name}": sum(values) / len(values)
        for name, values in sorted(per_method.items())
    }
    ok = [r for r in result.results if r.ok]
    document.update(
        {
            "config": {
                "experiment_id": spec.experiment_id,
                "title": spec.title,
                "x_label": spec.x_label,
                "replicates": spec.replicates,
                "points": [p.label for p in spec.points],
                "methods": [m.name for m in spec.methods],
            },
            "seeds": _jsonable(dict(seeds or {})),
            "stages": stages,
            "metrics": (
                dict(metrics)
                if metrics
                else {"counters": {}, "gauges": {}, "histograms": {}}
            ),
            "result": {
                "cells": len(result.results),
                "failures": len(result.results) - len(ok),
            },
            "total_seconds": float(
                sum(r.runtime_seconds for r in result.results)
            ),
        }
    )
    if extra:
        document["extra"] = _jsonable(dict(extra))
    return document


def validate_manifest(document: Mapping) -> None:
    """Raise :class:`~repro.exceptions.DataError` unless ``document``
    carries every key of the documented manifest schema with sane types."""
    if document.get("format") != MANIFEST_FORMAT:
        raise DataError(
            f"not a run manifest: format={document.get('format')!r}"
        )
    missing = [key for key in _REQUIRED_KEYS if key not in document]
    if missing:
        raise DataError(f"manifest missing required keys: {missing}")
    for key in ("config", "seeds", "environment", "stages", "metrics", "result"):
        if not isinstance(document[key], Mapping):
            raise DataError(f"manifest key {key!r} must be an object")
    for section in ("counters", "gauges", "histograms"):
        if section not in document["metrics"]:
            raise DataError(f"manifest metrics missing {section!r}")
    for stage, seconds in document["stages"].items():
        if not isinstance(seconds, (int, float)):
            raise DataError(f"stage {stage!r} timing must be a number")
    if not isinstance(document["total_seconds"], (int, float)):
        raise DataError("manifest total_seconds must be a number")
    if "memory" in document and not isinstance(document["memory"], Mapping):
        raise DataError("manifest key 'memory' must be an object")


def write_manifest(document: Mapping, path: PathLike) -> Path:
    """Validate and write a manifest as indented JSON."""
    validate_manifest(document)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return path


def load_manifest(path: PathLike) -> dict:
    """Read and validate a manifest written by :func:`write_manifest`."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise DataError(f"cannot read manifest {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise DataError(f"{path}: invalid JSON: {exc}") from exc
    validate_manifest(document)
    return document
