"""Perf trend ledger: CRC-checked JSONL of run timing+memory profiles.

Every bench / profiled fit appends one line to a ledger (by default
``benchmarks/results/trend.jsonl``) carrying the run's flat timing
profile (:func:`repro.obs.perfcheck.timing_profile`), its per-stage
memory peaks, and provenance (git revision, label, kind).  The ledger
is the repo's performance trajectory across PRs:

* ``repro perf-check --trend ledger.jsonl`` compares the **newest**
  entry against a rolling baseline (per-metric median of the previous
  *k* entries) with separate time and memory tolerances — the CI gate;
* ``repro figure trend`` renders the trajectory as SVG charts.

Each line carries a CRC32 over its canonical JSON (the same
sorted-keys/compact contract the serve journal and the checkpoint
journal use), so at-rest corruption and torn tails are detected and
skipped with a :class:`~repro.exceptions.JournalCorruptionWarning`
instead of silently poisoning the baseline.  The tiny CRC helpers are
local: ``repro.obs`` is a leaf package and must not import
``repro.evaluation.checkpoint`` (which itself imports ``repro.obs``).
"""

from __future__ import annotations

import json
import statistics
import time
import warnings
import zlib
from pathlib import Path
from typing import Mapping, Sequence, Union

from repro.exceptions import DataError, JournalCorruptionWarning
from repro.obs.perfcheck import PerfCheckReport, compare_profiles, timing_profile

__all__ = [
    "TREND_FORMAT",
    "append_trend",
    "load_trend",
    "memory_profile",
    "rolling_baseline",
    "check_trend",
    "trend_series",
]

PathLike = Union[str, Path]

TREND_FORMAT = "repro.perf_trend"
_VERSION = 1
_CRC_KEY = "crc"

#: Memory entries below this are skipped by the trend check — a few
#: hundred kB of interpreter noise dwarfs any real signal.
DEFAULT_MIN_BYTES = float(1 << 20)


# ----------------------------------------------------------------------
# CRC'd JSONL primitives (local: obs is a leaf package)
# ----------------------------------------------------------------------

def _crc_of(document: Mapping) -> int:
    payload = {k: v for k, v in document.items() if k != _CRC_KEY}
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(encoded.encode("utf-8")) & 0xFFFFFFFF


def _with_crc(document: Mapping) -> dict:
    stamped = dict(document)
    stamped[_CRC_KEY] = _crc_of(document)
    return stamped


# ----------------------------------------------------------------------
# building entries
# ----------------------------------------------------------------------

def memory_profile(manifest: Mapping) -> dict[str, float]:
    """Flatten a manifest's per-stage memory block to ``{entry: bytes}``.

    Keys are ``mem:<stage>:peak_rss`` / ``mem:<stage>:peak_alloc`` /
    ``mem:<stage>:alloc`` — disjoint from timing keys so both profiles
    can share one comparison engine with separate tolerances.
    """
    profile: dict[str, float] = {}
    for stage, stats in (manifest.get("memory") or {}).items():
        if not isinstance(stats, Mapping):
            continue
        for field, suffix in (
            ("peak_rss_bytes", "peak_rss"),
            ("peak_alloc_bytes", "peak_alloc"),
            ("alloc_bytes", "alloc"),
        ):
            value = stats.get(field)
            if isinstance(value, (int, float)):
                profile[f"mem:{stage}:{suffix}"] = float(value)
    return profile


def build_entry(
    manifest: Mapping,
    *,
    label: str | None = None,
    extra: Mapping | None = None,
) -> dict:
    """Reduce one run manifest to a CRC-stamped ledger entry."""
    git = manifest.get("git") or {}
    entry = {
        "format": TREND_FORMAT,
        "version": _VERSION,
        "recorded_unix": float(manifest.get("created_unix") or time.time()),
        "label": label,
        "kind": manifest.get("kind"),
        "revision": git.get("revision") if isinstance(git, Mapping) else None,
        "timings": timing_profile(manifest),
        "memory": memory_profile(manifest),
    }
    if extra:
        entry["meta"] = dict(extra)
    return _with_crc(entry)


def append_trend(
    path: PathLike,
    manifest: Mapping,
    *,
    label: str | None = None,
    extra: Mapping | None = None,
) -> dict:
    """Append one run manifest's profile to the ledger; returns the
    entry as written."""
    entry = build_entry(manifest, label=label, extra=extra)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        handle.flush()
    return entry


def load_trend(path: PathLike, *, verify_crc: bool = True) -> list[dict]:
    """Read a ledger, oldest first.

    Corrupt lines (invalid JSON, wrong format, CRC mismatch) are skipped
    with a :class:`~repro.exceptions.JournalCorruptionWarning` — one bad
    line must not disqualify the whole trajectory.  A missing file is an
    empty ledger.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    except OSError as exc:
        raise DataError(f"cannot read trend ledger {path}: {exc}") from exc
    entries: list[dict] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            document = json.loads(line)
        except json.JSONDecodeError:
            warnings.warn(
                f"{path}:{number}: invalid JSON in trend ledger; skipped",
                JournalCorruptionWarning,
                stacklevel=2,
            )
            continue
        if not isinstance(document, dict) or document.get("format") != TREND_FORMAT:
            warnings.warn(
                f"{path}:{number}: not a {TREND_FORMAT} entry; skipped",
                JournalCorruptionWarning,
                stacklevel=2,
            )
            continue
        if verify_crc and document.get(_CRC_KEY) != _crc_of(document):
            warnings.warn(
                f"{path}:{number}: CRC mismatch in trend ledger; skipped",
                JournalCorruptionWarning,
                stacklevel=2,
            )
            continue
        entries.append(document)
    return entries


# ----------------------------------------------------------------------
# rolling-baseline comparison
# ----------------------------------------------------------------------

def _median_profile(
    profiles: Sequence[Mapping[str, float]]
) -> dict[str, float]:
    values: dict[str, list[float]] = {}
    for profile in profiles:
        for entry, value in profile.items():
            values.setdefault(entry, []).append(float(value))
    return {entry: statistics.median(seen) for entry, seen in values.items()}


def rolling_baseline(
    entries: Sequence[Mapping], *, window: int = 5
) -> tuple[dict[str, float], dict[str, float]]:
    """Per-metric medians of the last ``window`` entries **before** the
    newest one: ``(timing_baseline, memory_baseline)``."""
    if window < 1:
        raise DataError(f"window must be >= 1, got {window}")
    history = list(entries[:-1])[-window:]
    if not history:
        raise DataError(
            "trend ledger needs at least 2 entries to compare "
            f"(got {len(entries)})"
        )
    timings = _median_profile([e.get("timings", {}) for e in history])
    memory = _median_profile([e.get("memory", {}) for e in history])
    return timings, memory


def check_trend(
    entries: Sequence[Mapping],
    *,
    window: int = 5,
    max_slowdown: float = 1.5,
    min_seconds: float = 0.01,
    max_memory_growth: float = 1.5,
    min_bytes: float = DEFAULT_MIN_BYTES,
) -> PerfCheckReport:
    """Compare the newest ledger entry against the rolling baseline.

    Timing entries use ``max_slowdown`` / ``min_seconds``; memory
    entries (``mem:*``, in bytes) use ``max_memory_growth`` /
    ``min_bytes``.  Raises :class:`~repro.exceptions.DataError` when the
    ledger is too short or shares no comparable timing entry — the CLI
    maps that to exit code 2.
    """
    if not entries:
        raise DataError("trend ledger is empty")
    newest = entries[-1]
    timing_base, memory_base = rolling_baseline(entries, window=window)
    report = compare_profiles(
        newest.get("timings", {}),
        timing_base,
        max_slowdown=max_slowdown,
        min_seconds=min_seconds,
    )
    comparisons = list(report.comparisons)
    skipped = list(report.skipped)
    current_memory = newest.get("memory", {})
    if current_memory or memory_base:
        try:
            memory_report = compare_profiles(
                current_memory,
                memory_base,
                max_slowdown=max_memory_growth,
                min_seconds=min_bytes,
            )
        except DataError:
            skipped.append("memory: no comparable entries")
        else:
            comparisons.extend(memory_report.comparisons)
            skipped.extend(memory_report.skipped)
    return PerfCheckReport(
        comparisons=tuple(comparisons), skipped=tuple(skipped)
    )


def trend_series(
    entries: Sequence[Mapping], *, section: str = "timings"
) -> dict[str, list[tuple[float, float]]]:
    """``{metric: [(entry_index, value), ...]}`` across the ledger —
    the input shape of :func:`repro.evaluation.plotting.render_line_chart`.
    ``section`` is ``"timings"`` (seconds) or ``"memory"`` (bytes)."""
    if section not in ("timings", "memory"):
        raise DataError(
            f"section must be 'timings' or 'memory', got {section!r}"
        )
    series: dict[str, list[tuple[float, float]]] = {}
    for index, entry in enumerate(entries):
        for metric, value in entry.get(section, {}).items():
            series.setdefault(metric, []).append((float(index), float(value)))
    return series
