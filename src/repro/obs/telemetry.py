"""The telemetry bundle a traced run attaches to its result."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.obs.trace import Span

__all__ = ["Telemetry"]


@dataclass(frozen=True)
class Telemetry:
    """Spans and metrics captured during one traced run.

    Attributes
    ----------
    spans:
        Every finished :class:`~repro.obs.trace.Span`, including worker
        spans merged back from executor backends.
    metrics:
        A :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict
        (``counters`` / ``gauges`` / ``histograms``).
    epoch_offset:
        The recording tracer's wall-clock anchor (see
        :class:`~repro.obs.trace.Tracer`), forwarded to exporters.
    memory:
        Per-stage memory stats from a
        :class:`~repro.obs.memory.MemoryTracker` (``{stage:
        {"alloc_bytes", "peak_alloc_bytes", "peak_rss_bytes"}}``);
        empty unless the run enabled memory attribution.
    """

    spans: tuple[Span, ...] = ()
    metrics: Mapping = field(
        default_factory=lambda: {"counters": {}, "gauges": {}, "histograms": {}}
    )
    epoch_offset: float = 0.0
    memory: Mapping = field(default_factory=dict)

    def counter(self, key: str, default: float = 0) -> float:
        """Convenience read of one counter from the snapshot."""
        return self.metrics.get("counters", {}).get(key, default)

    def span_names(self) -> tuple[str, ...]:
        """Distinct span names, in first-seen order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.name, None)
        return tuple(seen)
