"""Per-span memory attribution: tracemalloc deltas plus RSS readings.

The pair-count matrices and the IMI matrix are the pipeline's memory
wall (O(n²) each); this module makes that visible per stage without new
dependencies:

* **allocation attribution** — :mod:`tracemalloc` current/peak readings
  around each measured block give ``alloc_bytes`` (net Python-heap
  delta) and ``peak_alloc_bytes`` (high-water mark *inside* the block,
  correctly propagated through nesting);
* **process RSS** — read from ``/proc/self/status`` (``VmRSS`` /
  ``VmHWM``) with a ``resource.getrusage`` fallback, so numpy buffers —
  which tracemalloc only partially sees — still register.

Mirrors the tracer's contract: measuring only *observes* (fit results
are bit-identical with memory attribution on or off), and the disabled
path is the shared no-op :data:`NULL_MEMORY`, costing one method call
per instrumentation site.

``tracemalloc`` itself is the expensive part (every allocation pays a
bookkeeping hit while tracing); that is why memory attribution is a
separate opt-in knob (``TendsConfig.memory``) rather than riding along
with ``trace``.
"""

from __future__ import annotations

import threading
import tracemalloc
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "MemoryTracker",
    "NullMemoryTracker",
    "NULL_MEMORY",
    "read_rss_bytes",
    "read_peak_rss_bytes",
]


def _proc_status_kb(field: str) -> int | None:
    """Read one ``kB`` field (``VmRSS`` / ``VmHWM``) from /proc/self/status."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith(field + ":"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def read_rss_bytes() -> int | None:
    """Current resident set size in bytes (``None`` when unreadable)."""
    kb = _proc_status_kb("VmRSS")
    return None if kb is None else kb * 1024


def read_peak_rss_bytes() -> int | None:
    """Process-lifetime peak RSS in bytes.

    ``VmHWM`` from /proc on Linux; elsewhere ``ru_maxrss`` (reported in
    kilobytes on Linux, bytes on macOS — normalised here to bytes).
    """
    kb = _proc_status_kb("VmHWM")
    if kb is not None:
        return kb * 1024
    try:
        import resource
        import sys

        maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return maxrss if sys.platform == "darwin" else maxrss * 1024
    except Exception:
        return None


class MemoryTracker:
    """Collects per-stage memory stats; attach one per traced run.

    >>> tracker = MemoryTracker()
    >>> with tracker.activate():
    ...     with tracker.measure("stage"):
    ...         buffer = bytearray(1 << 20)
    >>> tracker.stages()["stage"]["alloc_bytes"] >= 1 << 20
    True

    :meth:`measure` blocks nest (a ``total`` measure around stage
    measures reports the true overall peak), but — like the stages they
    instrument — are expected to run on one thread at a time.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, dict] = {}
        self._frames: list[dict] = []
        self._owns_tracing = False

    # ------------------------------------------------------------------
    @contextmanager
    def activate(self) -> Iterator["MemoryTracker"]:
        """Start tracemalloc for the ``with`` block (no-op if something
        else is already tracing; never stops a tracer it did not start)."""
        owns = not tracemalloc.is_tracing()
        if owns:
            tracemalloc.start()
        self._owns_tracing = owns
        try:
            yield self
        finally:
            if owns:
                tracemalloc.stop()
            self._owns_tracing = False

    @contextmanager
    def measure(self, name: str, span=None) -> Iterator["MemoryTracker"]:
        """Attribute the ``with`` block's memory to stage ``name``.

        Records ``alloc_bytes`` (net tracemalloc delta),
        ``peak_alloc_bytes`` (tracemalloc high-water inside the block,
        nesting-aware), and ``peak_rss_bytes`` (process peak RSS at
        block exit).  ``span.set(...)`` mirrors the stats onto a trace
        span when one is given.
        """
        tracing = tracemalloc.is_tracing()
        current_before = tracemalloc.get_traced_memory()[0] if tracing else 0
        if tracing:
            tracemalloc.reset_peak()
        frame = {"peak": 0}
        self._frames.append(frame)
        try:
            yield self
        finally:
            if tracing and tracemalloc.is_tracing():
                current_after, segment_peak = tracemalloc.get_traced_memory()
            else:
                current_after, segment_peak = current_before, 0
            self._frames.pop()
            peak = max(segment_peak, frame["peak"])
            if self._frames:
                # Propagate into the enclosing measure: reset_peak wiped
                # the interpreter's high-water mark, so the parent must
                # learn about this block's peak explicitly.
                parent = self._frames[-1]
                parent["peak"] = max(parent["peak"], peak)
            if tracing and tracemalloc.is_tracing():
                tracemalloc.reset_peak()
            stats = {
                "alloc_bytes": int(current_after - current_before),
                "peak_alloc_bytes": int(peak),
                "peak_rss_bytes": read_peak_rss_bytes(),
            }
            with self._lock:
                known = self._stages.get(name)
                if known is None:
                    self._stages[name] = stats
                else:
                    # Re-entered stage (e.g. retries): sum the net
                    # allocations, keep the highest peaks.
                    known["alloc_bytes"] += stats["alloc_bytes"]
                    known["peak_alloc_bytes"] = max(
                        known["peak_alloc_bytes"], stats["peak_alloc_bytes"]
                    )
                    if stats["peak_rss_bytes"] is not None:
                        known["peak_rss_bytes"] = max(
                            known["peak_rss_bytes"] or 0,
                            stats["peak_rss_bytes"],
                        )
            if span is not None:
                span.set(**stats)

    # ------------------------------------------------------------------
    def stages(self) -> dict[str, dict]:
        """Copy of every measured stage's stats."""
        with self._lock:
            return {name: dict(stats) for name, stats in self._stages.items()}


class _NullContext:
    """Shared do-nothing context manager (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullMemoryTracker:
    """No-op twin of :class:`MemoryTracker`, mirroring ``NULL_TRACER``."""

    enabled: bool = False

    def activate(self) -> _NullContext:
        return _NULL_CONTEXT

    def measure(self, name: str, span=None) -> _NullContext:
        return _NULL_CONTEXT

    def stages(self) -> dict[str, dict]:
        return {}


#: Process-wide disabled memory tracker.
NULL_MEMORY = NullMemoryTracker()
