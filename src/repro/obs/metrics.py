"""Metrics registry: counters, gauges, and summary histograms.

The registry captures algorithm-level telemetry — IMI pairs computed,
pairs pruned by τ, score evaluations, Theorem-2 bound rejections,
executor retries/rebuilds/fallbacks, checkpoint writes — as plain
numbers that travel in run manifests and export to a Prometheus-style
text dump (:func:`repro.obs.export.prometheus_text`).

Metric identity is ``(name, labels)``; labels are an optional frozen
mapping rendered Prometheus-style (``name{k="v"}``) in snapshots.
Histograms are summary-style (count / sum / min / max), which is all the
perf-check workflow needs without baking in bucket boundaries.

The disabled path mirrors tracing: :data:`NULL_METRICS` is a shared
no-op registry, so instrumentation left in hot loops costs one method
call when metrics are off.  Snapshots are plain dicts so they serialise
straight into manifests; :meth:`MetricsRegistry.merge` folds one
snapshot into another (counters add, gauges last-write-wins, histograms
combine), which is how per-fit telemetry aggregates into an
experiment-level manifest.
"""

from __future__ import annotations

import math
import threading
from typing import Mapping

__all__ = [
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "metric_key",
]

MetricKey = str


def metric_key(name: str, labels: Mapping[str, object] | None = None) -> MetricKey:
    """Render a metric identity Prometheus-style.

    >>> metric_key("executor_retries_total", {"strategy": "process"})
    'executor_retries_total{strategy="process"}'
    >>> metric_key("tends_threshold_tau")
    'tends_threshold_tau'
    """
    if not labels:
        return name
    rendered = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Thread-safe collection of counters, gauges, and histograms.

    >>> metrics = MetricsRegistry()
    >>> metrics.inc("tends_score_evaluations_total", 12)
    >>> metrics.set_gauge("tends_threshold_tau", 0.025)
    >>> metrics.observe("tends_greedy_iterations", 3)
    >>> snap = metrics.snapshot()
    >>> snap["counters"]["tends_score_evaluations_total"]
    12
    >>> snap["histograms"]["tends_greedy_iterations"]["count"]
    1
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        self._histograms: dict[MetricKey, dict[str, float]] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` (>= 0) to a counter."""
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge to ``value`` (last write wins)."""
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into a summary histogram."""
        key = metric_key(name, labels)
        with self._lock:
            cell = self._histograms.get(key)
            if cell is None:
                cell = self._histograms[key] = {
                    "count": 0,
                    "sum": 0.0,
                    "min": math.inf,
                    "max": -math.inf,
                }
            cell["count"] += 1
            cell["sum"] += value
            cell["min"] = min(cell["min"], value)
            cell["max"] = max(cell["max"], value)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready copy of every metric."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: dict(v) for k, v in self._histograms.items()},
            }

    def merge(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters add, gauges take the incoming value, histograms combine
        count/sum/min/max — the aggregation used when per-fit telemetry
        rolls up into an experiment-level registry.
        """
        for key, value in snapshot.get("counters", {}).items():
            with self._lock:
                self._counters[key] = self._counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            with self._lock:
                self._gauges[key] = value
        for key, cell in snapshot.get("histograms", {}).items():
            with self._lock:
                mine = self._histograms.get(key)
                if mine is None:
                    mine = self._histograms[key] = {
                        "count": 0,
                        "sum": 0.0,
                        "min": math.inf,
                        "max": -math.inf,
                    }
                mine["count"] += cell.get("count", 0)
                mine["sum"] += cell.get("sum", 0.0)
                mine["min"] = min(mine["min"], cell.get("min", math.inf))
                mine["max"] = max(mine["max"], cell.get("max", -math.inf))


class NullMetrics:
    """No-op registry (the disabled fast path); snapshots are empty."""

    enabled: bool = False

    def inc(self, name: str, value: float = 1, **labels) -> None:
        """Discard."""

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Discard."""

    def observe(self, name: str, value: float, **labels) -> None:
        """Discard."""

    def snapshot(self) -> dict:
        """Always the empty snapshot."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: Mapping) -> None:
        """Discard."""


#: Process-wide disabled registry.
NULL_METRICS = NullMetrics()
