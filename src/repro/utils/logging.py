"""Library logging setup.

The library logs through the standard :mod:`logging` module under the
``"repro"`` namespace and never configures handlers on import (so it plays
well when embedded).  :func:`enable_console_logging` is a convenience for
scripts and benchmarks.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "enable_console_logging"]

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return the package logger or a child of it.

    ``get_logger("core.tends")`` returns ``logging.getLogger("repro.core.tends")``.
    """
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a simple stderr handler to the package logger (idempotent).

    Repeated calls re-level the existing handler instead of stacking a
    second one, and only the ``"repro"`` root logger is ever touched —
    child loggers (``repro.core.executor`` et al.) keep their default
    level and ``propagate`` flag, so their records flow into this handler
    whatever order the calls happened in.
    """
    logger = get_logger()
    logger.setLevel(level)
    handler = next(
        (h for h in logger.handlers if isinstance(h, logging.StreamHandler)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    handler.setLevel(level)
    return logger
