"""Argument-validation helpers shared across the library.

All helpers raise :class:`repro.exceptions.ConfigurationError` (a
``ValueError`` subclass) with a message that names the offending parameter,
and return the validated value so they can be used inline::

    self.beta = check_positive_int("beta", beta)
"""

from __future__ import annotations

import math
from typing import SupportsFloat, SupportsInt

from repro.exceptions import ConfigurationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_positive_int",
    "check_probability",
    "check_fraction",
    "check_in_range",
]


def check_positive(name: str, value: SupportsFloat) -> float:
    """Validate ``value > 0`` and return it as ``float``."""
    result = float(value)
    if not math.isfinite(result) or result <= 0:
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
    return result


def check_non_negative(name: str, value: SupportsFloat) -> float:
    """Validate ``value >= 0`` and return it as ``float``."""
    result = float(value)
    if not math.isfinite(result) or result < 0:
        raise ConfigurationError(f"{name} must be a non-negative finite number, got {value!r}")
    return result


def check_positive_int(name: str, value: SupportsInt) -> int:
    """Validate that ``value`` is an integer-valued number ``>= 1``."""
    result = int(value)
    if result != float(value) or result < 1:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return result


def check_probability(name: str, value: SupportsFloat) -> float:
    """Validate ``0 <= value <= 1`` and return it as ``float``."""
    return check_in_range(name, value, 0.0, 1.0)


def check_fraction(name: str, value: SupportsFloat) -> float:
    """Validate ``0 < value < 1`` (an open-interval proportion)."""
    result = float(value)
    if not math.isfinite(result) or not 0.0 < result < 1.0:
        raise ConfigurationError(
            f"{name} must lie strictly between 0 and 1, got {value!r}"
        )
    return result


def check_in_range(
    name: str,
    value: SupportsFloat,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    result = float(value)
    if inclusive:
        ok = math.isfinite(result) and low <= result <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = math.isfinite(result) and low < result < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ConfigurationError(f"{name} must lie in {bounds}, got {value!r}")
    return result
