"""Shared utilities: seeded randomness, timing, validation, logging."""

from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "RandomState",
    "as_generator",
    "spawn_generators",
    "Stopwatch",
    "timed",
    "check_fraction",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
]
