"""Randomness helpers.

Every stochastic component in this library accepts a ``seed`` argument that
may be ``None``, an ``int``, or a :class:`numpy.random.Generator`.  The
helpers here normalise those inputs, so reproducibility is a one-liner at
every call site:

>>> from repro.utils.rng import as_generator
>>> rng = as_generator(42)
>>> float(rng.random())  # doctest: +ELLIPSIS
0.77...

``spawn_generators`` derives independent child generators from one parent,
which is how experiment sweeps give every (network, replicate) cell its own
stream without correlated draws.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

__all__ = ["RandomState", "as_generator", "spawn_generators", "derive_seed"]

#: The union of accepted seed-like inputs.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so that a caller-supplied
        stream keeps advancing).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators.

    When ``seed`` is already a ``Generator`` the children are spawned from
    its internal bit generator so that repeated calls keep producing fresh
    streams.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.spawn(count)]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_seed(base: int, *components: Union[int, str, float]) -> int:
    """Deterministically mix ``base`` with labelling components.

    Used by experiment harnesses to give each sweep cell a stable seed
    derived from the experiment seed plus the cell parameters, e.g.
    ``derive_seed(7, "fig1", n, replicate)``.
    """
    mixed = np.random.SeedSequence(
        [base & 0xFFFFFFFF] + [_component_to_int(c) for c in components]
    )
    return int(mixed.generate_state(1, dtype=np.uint32)[0])


def _component_to_int(component: Union[int, str, float]) -> int:
    if isinstance(component, bool):  # bool is an int subclass; keep distinct
        return int(component) + 0x9E3779B1
    if isinstance(component, int):
        return component & 0xFFFFFFFF
    if isinstance(component, float):
        return hash(round(component, 12)) & 0xFFFFFFFF
    if isinstance(component, str):
        return _fnv1a(component.encode("utf-8"))
    raise TypeError(f"unsupported seed component type: {type(component)!r}")


def _fnv1a(data: bytes) -> int:
    """32-bit FNV-1a hash — stable across processes, unlike ``hash(str)``."""
    value = 0x811C9DC5
    for byte in data:
        value ^= byte
        value = (value * 0x01000193) & 0xFFFFFFFF
    return value
