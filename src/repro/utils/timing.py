"""Wall-clock timing helpers used by the evaluation harness.

The paper reports running-time panels next to every accuracy panel; the
harness wraps each inference call in a :class:`Stopwatch` so that the bench
tables can print both columns from one run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

__all__ = ["Stopwatch", "timed"]

T = TypeVar("T")


@dataclass
class Stopwatch:
    """Accumulating wall-clock timer.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     _ = sum(range(1000))
    >>> watch.elapsed >= 0.0
    True

    The timer accumulates across multiple ``with`` blocks, which lets the
    harness measure a multi-stage pipeline with a single instance.
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("Stopwatch is already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("Stopwatch is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@contextmanager
def timed() -> Iterator[Callable[[], float]]:
    """Context manager yielding a zero-arg callable that reports elapsed
    seconds (live while inside the block, frozen after it exits).

    >>> with timed() as elapsed:
    ...     _ = sum(range(1000))
    >>> elapsed() >= 0.0
    True
    """
    start = time.perf_counter()
    end: float | None = None

    def read() -> float:
        return (time.perf_counter() if end is None else end) - start

    try:
        yield read
    finally:
        end = time.perf_counter()
