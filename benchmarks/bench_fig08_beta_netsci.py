"""Fig. 8: effect of number of diffusion processes on NetSci.

Regenerates the figure's data rows (per sweep point: each algorithm's
F-score and running time) at the scale selected by ``REPRO_BENCH_SCALE``
and archives them under ``benchmarks/results/fig8.txt``.
"""

from _util import run_figure_bench


def test_fig8_beta_netsci(benchmark):
    result = run_figure_bench("fig8", benchmark)
    assert result.results, "figure produced no measurements"
