"""Ablation: max candidate-combination size (the paper's η).

Algorithm 1 enumerates parent combinations of any size up to the
Theorem-2 bound; the complexity term O(η² κ^η n β) makes the practical η
small.  This bench compares η = 1 (default) against η = 2 on mid-size LFR
graphs: accuracy is expected to be near-identical while runtime grows
roughly κ-fold.
"""

from _util import bench_scale, bench_seed, run_spec_bench

from repro.baselines.base import TendsInferrer
from repro.evaluation.harness import ExperimentSpec, MethodSpec, SweepPoint
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph


def _spec() -> ExperimentSpec:
    beta = 150 if bench_scale() == "full" else 60
    points = tuple(
        SweepPoint(
            label=f"n={n}",
            value=n,
            graph_factory=lambda seed, n=n: lfr_benchmark_graph(
                LFRParams(n=n, avg_degree=4), seed=seed
            ),
            beta=beta,
        )
        for n in (100, 200)
    )
    methods = (
        MethodSpec(
            "eta=1", lambda ctx: TendsInferrer(max_combination_size=1)
        ),
        MethodSpec(
            "eta=2", lambda ctx: TendsInferrer(max_combination_size=2)
        ),
    )
    return ExperimentSpec(
        experiment_id="ablation_combo_size",
        title="Candidate-combination size ablation (eta)",
        x_label="number of nodes n",
        points=points,
        methods=methods,
    )


def test_ablation_combination_size(benchmark):
    result = run_spec_bench("ablation_combo_size", _spec(), benchmark)
    runtimes = result.series("runtime_s")
    # eta = 2 must cost more; that is the point of the default being 1.
    assert sum(runtimes["eta=2"]) >= sum(runtimes["eta=1"])
