"""Shared machinery for the figure-regeneration benches.

Every ``bench_figNN_*.py`` calls :func:`run_figure_bench`, which

* builds the figure's :class:`~repro.evaluation.harness.ExperimentSpec`
  at the scale selected by ``REPRO_BENCH_SCALE`` (``full`` = paper
  parameters, default; ``quick`` = reduced β for smoke runs),
* executes it once under ``benchmark.pedantic`` (the figure *is* the
  workload; repeating a multi-minute sweep would measure nothing new),
* prints the regenerated rows and archives them under
  ``benchmarks/results/`` so the paper-vs-measured comparison in
  EXPERIMENTS.md can be refreshed from the artefacts.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.evaluation.archive import save_result
from repro.evaluation.figures import figure_spec
from repro.evaluation.harness import ExperimentResult, ExperimentSpec, run_experiment
from repro.evaluation.reporting import format_result_table, format_rows, format_series
from repro.core.kernels import resolve_kernel
from repro.evaluation.shapes import check_figure_shapes
from repro.obs.manifest import manifest_for_experiment, write_manifest
from repro.obs.trend import append_trend

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_scale() -> str:
    """Scale selected via ``REPRO_BENCH_SCALE`` (default ``full``)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "full").lower()
    if scale not in ("full", "quick"):
        raise ValueError(f"REPRO_BENCH_SCALE must be 'full' or 'quick', got {scale!r}")
    return scale


def bench_seed() -> int:
    """Seed selected via ``REPRO_BENCH_SEED`` (default 0)."""
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


def archive_result(name: str, text: str) -> Path:
    """Write a bench's table to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def report(name: str, result: ExperimentResult) -> str:
    """Format, print, and archive one experiment's rows plus the verdicts
    of the paper's shape claims (PASS/FAIL, failures included honestly)."""
    text = format_result_table(result) + "\n\n" + format_series(result)
    outcomes = check_figure_shapes(result)
    if outcomes:
        text += "\n\npaper-shape claims:\n" + format_rows(
            [outcome.as_row() for outcome in outcomes]
        )
    print(f"\n{text}")
    archive_result(name, text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    save_result(result, RESULTS_DIR / f"{name}.json")
    # A run manifest rides along with every archive so `repro perf-check`
    # can diff this bench run against any previous one.  The resolved
    # kernel backend (REPRO_KERNEL-sensitive) is recorded so comparisons
    # stay apples-to-apples across backends.
    manifest = manifest_for_experiment(
        result,
        seeds={"seed": bench_seed()},
        extra={"scale": bench_scale(), "bench": name, "kernel": resolve_kernel()},
    )
    write_manifest(manifest, RESULTS_DIR / f"{name}.manifest.json")
    # ... and one line in the shared trend ledger, so repeated bench runs
    # accumulate the history `repro perf-check --trend` checks against.
    append_trend(RESULTS_DIR / "trend.jsonl", manifest, label=name)
    return text


def run_figure_bench(figure_id: str, benchmark) -> ExperimentResult:
    """Run one paper figure under the benchmark fixture and archive it."""
    spec = figure_spec(figure_id, scale=bench_scale())
    result = benchmark.pedantic(
        run_experiment,
        kwargs={"spec": spec, "seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    report(figure_id, result)
    return result


def run_spec_bench(name: str, spec: ExperimentSpec, benchmark) -> ExperimentResult:
    """Run a custom (ablation) spec under the benchmark fixture."""
    result = benchmark.pedantic(
        run_experiment,
        kwargs={"spec": spec, "seed": bench_seed()},
        rounds=1,
        iterations=1,
    )
    report(name, result)
    return result
