"""Micro-benchmarks of the TENDS hot paths.

These are classic pytest-benchmark measurements (many rounds) of the
stages the complexity analysis in §IV-D names:

* the O(β n²) IMI matrix,
* the fixed-zero 2-means,
* one O(β |F|) family-counts + local-score evaluation,
* a full TENDS fit on a mid-size LFR observation set.
"""

import numpy as np
import pytest

from repro.core.imi import infection_mi_matrix
from repro.core.kmeans import fixed_zero_two_means
from repro.core.scoring import family_counts, local_score
from repro.core.tends import Tends
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.simulation.engine import DiffusionSimulator


@pytest.fixture(scope="module")
def observations():
    truth = lfr_benchmark_graph(LFRParams(n=200, avg_degree=4), seed=0)
    return DiffusionSimulator(truth, mu=0.3, alpha=0.15, seed=1).run(beta=150)


def test_imi_matrix_200_nodes(benchmark, observations):
    result = benchmark(infection_mi_matrix, observations.statuses)
    assert result.shape == (200, 200)


def test_fixed_zero_two_means_40k_values(benchmark, observations):
    imi = infection_mi_matrix(observations.statuses)
    values = imi[imi >= 0].ravel()
    result = benchmark(fixed_zero_two_means, values)
    assert result.n_zero_cluster + result.n_upper_cluster == values.size


def test_family_counts_three_parents(benchmark, observations):
    statuses = observations.statuses
    counts = benchmark(family_counts, statuses, 0, [1, 2, 3])
    assert counts.totals.sum() == statuses.beta


def test_local_score_three_parents(benchmark, observations):
    statuses = observations.statuses
    score = benchmark(local_score, statuses, 0, [1, 2, 3])
    assert np.isfinite(score)


def test_full_tends_fit_200_nodes(benchmark, observations):
    statuses = observations.statuses
    result = benchmark.pedantic(
        lambda: Tends().fit(statuses), rounds=3, iterations=1
    )
    assert result.graph.n_nodes == 200
