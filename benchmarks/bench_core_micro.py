"""Micro-benchmarks of the TENDS hot paths.

These are classic pytest-benchmark measurements (many rounds) of the
stages the complexity analysis in §IV-D names:

* the O(β n²) IMI matrix,
* the fixed-zero 2-means,
* one O(β |F|) family-counts + local-score evaluation,
* a full TENDS fit on a mid-size LFR observation set.

Each kernel-sensitive bench runs once per counting backend (``numpy``
vs ``packed``), emitting per-backend rows so regressions in either path
are visible; ``test_pair_counts_speedup_at_512_nodes`` additionally
gates the packed backend's headline win — ≥ 5× on the O(β n²) pair
counts at n = 512 — and archives the measurement under
``benchmarks/results/``.
"""

import timeit

import numpy as np
import pytest
from _util import archive_result

from repro.core.imi import infection_mi_matrix
from repro.core.kernels import PackedStatuses, packed_joint_counts
from repro.core.kmeans import fixed_zero_two_means
from repro.core.scoring import family_counts, local_score
from repro.core.tends import Tends
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.simulation.engine import DiffusionSimulator
from repro.simulation.statuses import StatusMatrix

KERNELS = ("numpy", "packed")


@pytest.fixture(scope="module")
def observations():
    truth = lfr_benchmark_graph(LFRParams(n=200, avg_degree=4), seed=0)
    return DiffusionSimulator(truth, mu=0.3, alpha=0.15, seed=1).run(beta=150)


@pytest.fixture(params=KERNELS)
def kernel(request):
    return request.param


@pytest.fixture(scope="module")
def packed_observations(observations):
    return PackedStatuses.from_statuses(observations.statuses)


def test_imi_matrix_200_nodes(benchmark, observations, kernel):
    result = benchmark(infection_mi_matrix, observations.statuses, kernel=kernel)
    assert result.shape == (200, 200)


def test_fixed_zero_two_means_40k_values(benchmark, observations):
    imi = infection_mi_matrix(observations.statuses)
    values = imi[imi >= 0].ravel()
    result = benchmark(fixed_zero_two_means, values)
    assert result.n_zero_cluster + result.n_upper_cluster == values.size


def test_family_counts_three_parents(
    benchmark, observations, packed_observations, kernel
):
    statuses = observations.statuses
    packed = packed_observations if kernel == "packed" else None
    counts = benchmark(family_counts, statuses, 0, [1, 2, 3], packed=packed)
    assert counts.totals.sum() == statuses.beta


def test_local_score_three_parents(
    benchmark, observations, packed_observations, kernel
):
    statuses = observations.statuses
    packed = packed_observations if kernel == "packed" else None
    score = benchmark(local_score, statuses, 0, [1, 2, 3], packed=packed)
    assert np.isfinite(score)


def test_full_tends_fit_200_nodes(benchmark, observations, kernel):
    statuses = observations.statuses
    result = benchmark.pedantic(
        lambda: Tends(kernel=kernel).fit(statuses), rounds=3, iterations=1
    )
    assert result.graph.n_nodes == 200
    assert result.kernel == kernel


def test_pair_counts_speedup_at_512_nodes():
    """The packed backend's acceptance gate: ≥ 5× on pair counts, n ≥ 512.

    Times the O(β n²) all-pairs joint-count pass — the numpy matmuls vs
    the blocked popcount kernel (packing included, as a fit pays it) —
    best-of-N wall clock, and archives the rows for perf tracking.
    """
    rng = np.random.default_rng(0)
    n, beta = 512, 150
    statuses = StatusMatrix((rng.random((beta, n)) < 0.3).astype(np.uint8))

    def numpy_pass():
        return statuses.joint_counts()

    def packed_pass():
        return packed_joint_counts(PackedStatuses.from_statuses(statuses))

    reference = numpy_pass()
    got = packed_pass()
    assert all(np.array_equal(reference[key], got[key]) for key in reference)

    numpy_s = min(timeit.repeat(numpy_pass, number=1, repeat=5))
    packed_s = min(timeit.repeat(packed_pass, number=1, repeat=5))
    speedup = numpy_s / packed_s

    rows = "\n".join(
        [
            f"pair counts, n={n}, beta={beta} (best of 5)",
            f"numpy   {numpy_s * 1e3:10.2f} ms",
            f"packed  {packed_s * 1e3:10.2f} ms  (packing included)",
            f"speedup {speedup:10.2f} x  (gate: >= 5x)",
        ]
    )
    print(f"\n{rows}")
    archive_result("bench_kernel_pair_counts", rows)
    assert speedup >= 5.0, (
        f"packed pair counts only {speedup:.2f}x faster than numpy "
        f"({packed_s * 1e3:.2f} ms vs {numpy_s * 1e3:.2f} ms)"
    )


def test_disabled_tracing_overhead_under_two_percent(observations):
    """The no-op tracer hooks must stay free when tracing is off.

    A fit cannot be compared against an uninstrumented build, so measure
    the disabled path directly: (per-call cost of a no-op span + counter)
    × (number of hook sites a traced fit actually hits) must stay below
    2% of the untraced fit time.  A failure means the NULL_TRACER /
    NULL_METRICS fast path grew real work.
    """
    import time

    from repro.obs.metrics import NULL_METRICS
    from repro.obs.trace import NULL_TRACER

    statuses = observations.statuses

    def fit_seconds() -> float:
        start = time.perf_counter()
        Tends(executor="serial").fit(statuses)
        return time.perf_counter() - start

    fit_seconds()  # warm caches before timing
    fit_time = sorted(fit_seconds() for _ in range(3))[1]

    # Every hook a traced serial fit fires on this input.
    telemetry = Tends(executor="serial", trace=True).fit(statuses).telemetry
    n_spans = len(telemetry.spans)
    n_metric_ops = (
        len(telemetry.metrics["counters"])
        + len(telemetry.metrics["gauges"])
        + telemetry.metrics["histograms"]["tends_greedy_iterations"]["count"]
    )

    rounds = 100_000
    start = time.perf_counter()
    for _ in range(rounds):
        with NULL_TRACER.span("bench", node=0) as span:
            span.set(done=True)
        NULL_METRICS.inc("bench_total")
    per_hook = (time.perf_counter() - start) / rounds

    overhead = per_hook * (n_spans + n_metric_ops)
    assert overhead <= 0.02 * fit_time, (
        f"{n_spans} spans + {n_metric_ops} metric ops at {per_hook * 1e6:.2f}µs "
        f"per disabled hook = {overhead * 1e3:.1f}ms, over 2% of the "
        f"{fit_time:.3f}s fit"
    )


def test_disabled_memory_attribution_overhead_under_two_percent(observations):
    """The no-op memory hooks must stay free when ``memory=False``.

    Same method as the tracing guard: (per-call cost of a disabled
    ``activate``/``measure``) × (sites a memory-attributed fit hits)
    must stay below 2% of the plain fit time.
    """
    import time

    from repro.obs.memory import NULL_MEMORY

    statuses = observations.statuses

    def fit_seconds() -> float:
        start = time.perf_counter()
        Tends(executor="serial").fit(statuses)
        return time.perf_counter() - start

    fit_seconds()  # warm caches before timing
    fit_time = sorted(fit_seconds() for _ in range(3))[1]

    # Hook sites a memory-attributed serial fit fires on this input.
    stages = Tends(executor="serial", memory=True).fit(statuses)
    n_measures = len(stages.telemetry.memory)

    rounds = 100_000
    start = time.perf_counter()
    for _ in range(rounds):
        with NULL_MEMORY.activate():
            with NULL_MEMORY.measure("bench"):
                pass
    per_hook = (time.perf_counter() - start) / rounds

    overhead = per_hook * (n_measures + 1)  # +1 for activate()
    assert overhead <= 0.02 * fit_time, (
        f"{n_measures} measures at {per_hook * 1e6:.2f}µs per disabled "
        f"hook = {overhead * 1e3:.1f}ms, over 2% of the {fit_time:.3f}s fit"
    )
