"""Extension bench: misreported final statuses.

Even final statuses can be wrong (misdiagnosis, silent adopters).  This
bench flips a growing fraction of status bits and measures TENDS's
degradation curve — the practical error budget a deployment has before
the reconstruction stops being useful.
"""

from _util import archive_result, bench_scale, bench_seed

from repro.core.tends import Tends
from repro.evaluation.metrics import evaluate_edges
from repro.evaluation.reporting import format_rows
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.simulation.engine import DiffusionSimulator
from repro.utils.rng import derive_seed


def _measure() -> list[dict[str, object]]:
    beta = 150 if bench_scale() == "full" else 60
    seed = derive_seed(bench_seed(), "status-noise")
    truth = lfr_benchmark_graph(LFRParams(n=150, avg_degree=4), seed=seed)
    clean = DiffusionSimulator(
        truth, mu=0.3, alpha=0.15, seed=derive_seed(seed, "sim")
    ).run(beta=beta)

    rows: list[dict[str, object]] = []
    for flip in (0.0, 0.01, 0.02, 0.05, 0.10):
        statuses = clean.statuses.with_flip_noise(
            flip, seed=derive_seed(seed, "flip", flip)
        )
        metrics = evaluate_edges(truth, Tends().fit(statuses).graph)
        rows.append(
            {
                "flip_probability": flip,
                "f_score": round(metrics.f_score, 4),
                "precision": round(metrics.precision, 4),
                "recall": round(metrics.recall, 4),
            }
        )
    return rows


def test_robustness_to_status_noise(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_rows(rows)
    print(f"\n{text}")
    archive_result("robustness_status_noise", text)

    # Degradation must be graceful: small noise costs little...
    assert rows[1]["f_score"] > rows[0]["f_score"] - 0.15
    # ...and heavy noise clearly hurts (the bench would be vacuous otherwise).
    assert rows[-1]["f_score"] < rows[0]["f_score"]
