"""Bench collection settings: show archived tables, keep output visible."""

import sys
from pathlib import Path

# Make the benches importable as plain modules (benchmarks/ is not a package).
sys.path.insert(0, str(Path(__file__).resolve().parent))
