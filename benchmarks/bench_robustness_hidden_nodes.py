"""Extension bench: partially observed networks (hidden nodes).

The paper's §II-A notes that real observations "may miss partial
snapshots of the network".  Here a growing fraction of nodes is never
monitored at all: TENDS sees only the visible columns of the status
matrix and is scored against the visible induced subgraph.  Hidden nodes
hurt twice — their edges are unknowable, and paths through them turn
into spurious direct correlations between their visible neighbours — so
precision is expected to fall with the hidden fraction.
"""

import numpy as np

from _util import archive_result, bench_scale, bench_seed

from repro.core.tends import Tends
from repro.evaluation.metrics import evaluate_edges
from repro.evaluation.reporting import format_rows
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.simulation.engine import DiffusionSimulator
from repro.utils.rng import derive_seed


def _measure() -> list[dict[str, object]]:
    beta = 150 if bench_scale() == "full" else 60
    seed = derive_seed(bench_seed(), "hidden-nodes")
    truth = lfr_benchmark_graph(LFRParams(n=200, avg_degree=4), seed=seed)
    observations = DiffusionSimulator(
        truth, mu=0.3, alpha=0.15, seed=derive_seed(seed, "sim")
    ).run(beta=beta)
    rng = np.random.default_rng(derive_seed(seed, "mask"))

    rows: list[dict[str, object]] = []
    for hidden_fraction in (0.0, 0.1, 0.2, 0.3):
        n_visible = int(round((1.0 - hidden_fraction) * truth.n_nodes))
        visible = np.sort(rng.choice(truth.n_nodes, size=n_visible, replace=False))
        statuses = observations.statuses.select_nodes(visible)
        reference = truth.induced_subgraph(visible.tolist())
        inferred = Tends().fit(statuses).graph
        metrics = evaluate_edges(reference, inferred)
        rows.append(
            {
                "hidden_fraction": hidden_fraction,
                "visible_nodes": n_visible,
                "visible_edges": reference.n_edges,
                "f_score": round(metrics.f_score, 4),
                "precision": round(metrics.precision, 4),
                "recall": round(metrics.recall, 4),
            }
        )
    return rows


def test_robustness_to_hidden_nodes(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_rows(rows)
    print(f"\n{text}")
    archive_result("robustness_hidden_nodes", text)

    # Full visibility must be (close to) the best case, and inference must
    # stay useful throughout; smaller visible graphs also mean noisier
    # single-run F-scores, so the comparison carries a seed-noise margin.
    assert rows[0]["f_score"] >= rows[-1]["f_score"] - 0.08
    assert all(row["f_score"] > 0.1 for row in rows)
