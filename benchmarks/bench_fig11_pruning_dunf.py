"""Fig. 11: infection-MI pruning threshold sweep + MI-vs-IMI ablation on DUNF.

Regenerates the figure's data rows (per sweep point: each algorithm's
F-score and running time) at the scale selected by ``REPRO_BENCH_SCALE``
and archives them under ``benchmarks/results/fig11.txt``.
"""

from _util import run_figure_bench


def test_fig11_pruning_dunf(benchmark):
    result = run_figure_bench("fig11", benchmark)
    assert result.results, "figure produced no measurements"
