"""Incremental update vs. full refit on a streaming-scale workload.

``Tends.partial_fit`` exists so a long-running service can absorb a batch
of Δβ new processes without paying the full ``O(β n²)`` + stage-3 cost of
refitting the concatenated history.  This bench measures exactly that
trade on the acceptance workload (n=128, β=2000): wall time of one
``partial_fit`` of a Δβ batch against a one-shot ``fit`` of the β+Δβ
history, for Δβ ∈ {25, 100, 400}, in two shapes —

* ``full`` batches observe every node (worst case: all nodes dirty, the
  win comes purely from the cached-count IMI update), and
* ``masked`` batches observe only a 16-node neighbourhood (the service
  case: most nodes provably clean, their stage-3 searches skipped).

Every row re-asserts the equivalence contract: the incremental result
must match the refit bit for bit.  The acceptance criterion is the
Δβ=100 full-batch row at < 50% of the refit time.
"""

from __future__ import annotations

import time

import numpy as np

from _util import archive_result, bench_scale, bench_seed

from repro.core.tends import Tends
from repro.evaluation.reporting import format_rows
from repro.graphs.generators.random_graphs import erdos_renyi_digraph
from repro.simulation.engine import DiffusionSimulator
from repro.simulation.statuses import StatusMatrix
from repro.utils.rng import derive_seed

REPS = 3
MASKED_NODES = 16


def _scale_params() -> tuple[int, int, tuple[int, ...]]:
    if bench_scale() == "full":
        return 128, 2000, (25, 100, 400)
    return 48, 300, (10, 30)


def _workload(n: int, beta_total: int) -> StatusMatrix:
    seed = derive_seed(bench_seed(), "incremental_update")
    truth = erdos_renyi_digraph(n, 4.0 / n, seed=seed)
    observations = DiffusionSimulator(
        truth, mu=0.3, alpha=0.15, seed=derive_seed(seed, "sim")
    ).run(beta=beta_total)
    return observations.statuses


def _localized(batch: StatusMatrix) -> StatusMatrix:
    """The batch observed only at the first MASKED_NODES columns."""
    mask = np.zeros((batch.beta, batch.n_nodes), dtype=np.bool_)
    mask[:, :MASKED_NODES] = True
    return StatusMatrix(batch.values.copy(), mask)


def _time(fn) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(REPS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure() -> list[dict[str, object]]:
    n, beta, dbetas = _scale_params()
    history = _workload(n, beta + max(dbetas))
    base = history.subset(range(0, beta))
    base_estimator = Tends(audit="ignore")
    base_estimator.fit(base)
    model = base_estimator.model

    rows: list[dict[str, object]] = []
    for dbeta in dbetas:
        raw_batch = history.subset(range(beta, beta + dbeta))
        for shape, batch in (("full", raw_batch), ("masked", _localized(raw_batch))):
            # Each rep resumes from the same checkpointed model so every
            # partial_fit measures the same single-batch update.
            update_s, update_result = _time(
                lambda: Tends.from_model(model).partial_fit(batch)
            )
            refit_s, refit_result = _time(
                lambda: Tends(audit="ignore").fit(base.append(batch))
            )
            identical = (
                update_result.parent_sets == refit_result.parent_sets
                and np.array_equal(
                    update_result.mi_matrix, refit_result.mi_matrix
                )
                and update_result.threshold == refit_result.threshold
            )
            rows.append(
                {
                    "dbeta": dbeta,
                    "batch": shape,
                    "dirty": update_result.update.n_dirty,
                    "skipped": update_result.update.n_skipped,
                    "update_s": round(update_s, 3),
                    "refit_s": round(refit_s, 3),
                    "ratio": round(update_s / refit_s, 3),
                    "identical": identical,
                }
            )
    rows.append(
        {
            "dbeta": f"(n={n}, beta={beta})",
            "batch": "-",
            "dirty": "-",
            "skipped": "-",
            "update_s": "-",
            "refit_s": "-",
            "ratio": "-",
            "identical": "-",
        }
    )
    return rows


def test_incremental_update_beats_refit(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_rows(rows)
    print(f"\n{text}")
    archive_result("bench_incremental_update", text)

    data_rows = [row for row in rows if row["identical"] != "-"]
    # Equivalence is unconditional: every update reproduced its refit.
    assert all(row["identical"] for row in data_rows)
    # Every single-batch update must beat the full refit outright ...
    assert all(row["ratio"] < 1.0 for row in data_rows)
    # ... and the acceptance batch (the smallest sizes, Δβ=100 at full
    # scale) by at least 2x.
    dbetas = sorted({row["dbeta"] for row in data_rows})
    accept = [
        row
        for row in data_rows
        if row["batch"] == "full" and row["dbeta"] in dbetas[:2]
    ]
    assert max(row["ratio"] for row in accept) < 0.5, (
        "expected the incremental update to run in < 50% of a full refit, "
        f"got ratios {[row['ratio'] for row in accept]}"
    )
