"""Table II: properties of the fifteen LFR benchmark graphs.

Regenerates the paper's input-inventory table from the actual generator
output (requested vs realised average degree, plus the degree dispersion
the paper's τ parameter controls) and archives it under
``benchmarks/results/table2.txt``.
"""

from _util import archive_result, bench_seed

from repro.evaluation.figures import table2_rows
from repro.evaluation.reporting import format_rows


def test_table2_lfr_properties(benchmark):
    rows = benchmark.pedantic(
        table2_rows, kwargs={"seed": bench_seed()}, rounds=1, iterations=1
    )
    text = format_rows(rows)
    print(f"\n{text}")
    archive_result("table2", text)

    assert len(rows) == 15
    for row in rows:
        requested = float(row["k_requested"])
        realised = float(row["k_realised"])
        assert abs(realised - requested) < 0.05 * requested + 0.05
