"""Ablation: greedy-rescoring vs ranked-union parent search.

DESIGN.md §1 flags a discrepancy between Algorithm 1 as printed (score
all combinations once, union in rank order) and the prose of §IV-A
(re-score each candidate extension against the current parent set).  This
bench runs both on the same observations across the LFR size sweep so the
accuracy/runtime trade-off is on record.
"""

from _util import bench_scale, bench_seed, run_spec_bench

from repro.baselines.base import TendsInferrer
from repro.evaluation.figures import LFR_TABLE2
from repro.evaluation.harness import ExperimentSpec, MethodSpec, SweepPoint
from repro.graphs.generators.lfr import lfr_benchmark_graph


def _spec() -> ExperimentSpec:
    beta = 150 if bench_scale() == "full" else 60
    points = tuple(
        SweepPoint(
            label=f"n={params.n}",
            value=params.n,
            graph_factory=lambda seed, p=params: lfr_benchmark_graph(p, seed=seed),
            beta=beta,
        )
        for params in (LFR_TABLE2[f"LFR{i}"] for i in (1, 3, 5))
    )
    methods = (
        MethodSpec(
            "greedy-rescoring",
            lambda ctx: TendsInferrer(search_strategy="greedy-rescoring"),
        ),
        MethodSpec(
            "ranked-union",
            lambda ctx: TendsInferrer(search_strategy="ranked-union"),
        ),
    )
    return ExperimentSpec(
        experiment_id="ablation_search",
        title="Search strategy ablation (Algorithm 1 as printed vs prose)",
        x_label="number of nodes n",
        points=points,
        methods=methods,
    )


def test_ablation_search_strategy(benchmark):
    result = run_spec_bench("ablation_search", _spec(), benchmark)
    series = result.series("f_score")
    assert set(series) == {"greedy-rescoring", "ranked-union"}
