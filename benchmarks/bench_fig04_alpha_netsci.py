"""Fig. 4: effect of initial infection ratio on NetSci.

Regenerates the figure's data rows (per sweep point: each algorithm's
F-score and running time) at the scale selected by ``REPRO_BENCH_SCALE``
and archives them under ``benchmarks/results/fig4.txt``.
"""

from _util import run_figure_bench


def test_fig4_alpha_netsci(benchmark):
    result = run_figure_bench("fig4", benchmark)
    assert result.results, "figure produced no measurements"
