"""Micro-benchmarks of the diffusion simulation substrate."""

import pytest

from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.graphs.generators.realworld import dunf, netsci
from repro.simulation.engine import DiffusionSimulator


def test_lfr_generation_200_nodes(benchmark):
    graph = benchmark(
        lambda: lfr_benchmark_graph(LFRParams(n=200, avg_degree=4), seed=0)
    )
    assert graph.n_edges == 800


def test_netsci_surrogate_generation(benchmark):
    graph = benchmark.pedantic(lambda: netsci(0), rounds=3, iterations=1)
    assert graph.n_edges == 1602


def test_dunf_surrogate_generation(benchmark):
    graph = benchmark.pedantic(lambda: dunf(0), rounds=3, iterations=1)
    assert graph.n_edges == 2974


def test_simulate_150_processes_netsci(benchmark):
    graph = netsci(0)
    simulator = DiffusionSimulator(graph, mu=0.3, alpha=0.15, seed=1)
    result = benchmark.pedantic(lambda: simulator.run(beta=150), rounds=3, iterations=1)
    assert result.beta == 150
