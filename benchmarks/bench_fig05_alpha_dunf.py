"""Fig. 5: effect of initial infection ratio on DUNF.

Regenerates the figure's data rows (per sweep point: each algorithm's
F-score and running time) at the scale selected by ``REPRO_BENCH_SCALE``
and archives them under ``benchmarks/results/fig5.txt``.
"""

from _util import run_figure_bench


def test_fig5_alpha_dunf(benchmark):
    result = run_figure_bench("fig5", benchmark)
    assert result.results, "figure produced no measurements"
