"""Ablation: reciprocal vs random LFR edge orientation.

Final infection statuses carry no information about edge direction, so a
status-only method faces a hard directed-F ceiling (~2/3) on randomly
oriented graphs.  This bench quantifies the gap that motivated the
reciprocal default (DESIGN.md §4): directed and undirected F-scores for
TENDS on both orientations.
"""

from _util import archive_result, bench_scale, bench_seed

from repro.core.tends import Tends
from repro.evaluation.metrics import evaluate_edges
from repro.evaluation.reporting import format_rows
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.simulation.engine import DiffusionSimulator
from repro.utils.rng import derive_seed


def _measure() -> list[dict[str, object]]:
    beta = 150 if bench_scale() == "full" else 60
    rows: list[dict[str, object]] = []
    for orientation in ("reciprocal", "random"):
        params = LFRParams(n=200, avg_degree=4, orientation=orientation)
        seed = derive_seed(bench_seed(), "orientation", orientation)
        truth = lfr_benchmark_graph(params, seed=seed)
        observations = DiffusionSimulator(
            truth, mu=0.3, alpha=0.15, seed=derive_seed(seed, "sim")
        ).run(beta=beta)
        inferred = Tends().fit(observations.statuses).graph
        directed = evaluate_edges(truth, inferred)
        undirected = evaluate_edges(truth, inferred, undirected=True)
        rows.append(
            {
                "orientation": orientation,
                "directed_f": round(directed.f_score, 4),
                "undirected_f": round(undirected.f_score, 4),
                "direction_gap": round(undirected.f_score - directed.f_score, 4),
            }
        )
    return rows


def test_ablation_orientation(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_rows(rows)
    print(f"\n{text}")
    archive_result("ablation_orientation", text)

    by_orientation = {row["orientation"]: row for row in rows}
    # Random orientation must show a substantial direction gap; the
    # reciprocal default must not.
    assert by_orientation["random"]["direction_gap"] > 0.05
    assert abs(by_orientation["reciprocal"]["direction_gap"]) < 0.05
