"""Fig. 3: effect of node degree dispersion (LFR11-15, tau = 1..3).

Regenerates the figure's data rows (per sweep point: each algorithm's
F-score and running time) at the scale selected by ``REPRO_BENCH_SCALE``
and archives them under ``benchmarks/results/fig3.txt``.
"""

from _util import run_figure_bench


def test_fig3_degree_dispersion(benchmark):
    result = run_figure_bench("fig3", benchmark)
    assert result.results, "figure produced no measurements"
