"""Fig. 1: effect of diffusion network size (LFR1-5, n = 100..300).

Regenerates the figure's data rows (per sweep point: each algorithm's
F-score and running time) at the scale selected by ``REPRO_BENCH_SCALE``
and archives them under ``benchmarks/results/fig1.txt``.
"""

from _util import run_figure_bench


def test_fig1_network_size(benchmark):
    result = run_figure_bench("fig1", benchmark)
    assert result.results, "figure produced no measurements"
