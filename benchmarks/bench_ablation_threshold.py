"""Ablation: fixed-zero 2-means τ vs simpler threshold rules.

The paper's pruning threshold comes from a modified 2-means (one centroid
pinned at 0).  This bench compares it against two simpler data-driven
rules on the same observations: a high percentile of the non-negative IMI
values, and Otsu-style maximal between-class variance.  The 2-means rule
is expected to sit at or near the best F-score (paper Fig. 10–11 shows
its τ is near-optimal).
"""

import numpy as np

from _util import bench_scale, run_spec_bench

from repro.baselines.base import (
    InferenceOutput,
    NetworkInferrer,
    Observations,
    TendsInferrer,
)
from repro.core.imi import infection_mi_matrix
from repro.core.tends import Tends
from repro.evaluation.harness import ExperimentSpec, MethodSpec, SweepPoint
from repro.graphs.generators.realworld import netsci


class _FixedRuleTends(NetworkInferrer):
    """TENDS with the pruning threshold chosen by a custom rule."""

    requires = frozenset({"statuses"})

    def __init__(self, name: str, rule) -> None:
        self.name = name
        self._rule = rule

    def infer(self, observations: Observations) -> InferenceOutput:
        self.check_applicable(observations)
        imi = infection_mi_matrix(observations.statuses)
        n = imi.shape[0]
        values = imi[~np.eye(n, dtype=bool)]
        threshold = float(self._rule(values[values >= 0]))
        result = Tends(threshold=threshold).fit(observations.statuses)
        return InferenceOutput(graph=result.graph)


def _percentile_rule(values: np.ndarray) -> float:
    return float(np.percentile(values, 95)) if values.size else 0.0


def _otsu_rule(values: np.ndarray) -> float:
    if values.size < 2:
        return 0.0
    candidates = np.quantile(values, np.linspace(0.5, 0.99, 40))
    best_threshold, best_score = 0.0, -1.0
    for candidate in candidates:
        low = values[values <= candidate]
        high = values[values > candidate]
        if low.size == 0 or high.size == 0:
            continue
        weight = low.size * high.size / values.size**2
        score = weight * (low.mean() - high.mean()) ** 2
        if score > best_score:
            best_score, best_threshold = score, float(candidate)
    return best_threshold


def _spec() -> ExperimentSpec:
    beta = 150 if bench_scale() == "full" else 60
    point = SweepPoint(
        label="netsci",
        value=0,
        graph_factory=lambda seed: netsci(0),
        beta=beta,
    )
    methods = (
        MethodSpec("2means(paper)", lambda ctx: TendsInferrer()),
        MethodSpec("pctl95", lambda ctx: _FixedRuleTends("pctl95", _percentile_rule)),
        MethodSpec("otsu", lambda ctx: _FixedRuleTends("otsu", _otsu_rule)),
    )
    return ExperimentSpec(
        experiment_id="ablation_threshold",
        title="Threshold-selection rule ablation on NetSci",
        x_label="rule",
        points=(point,),
        methods=methods,
    )


def test_ablation_threshold_rules(benchmark):
    result = run_spec_bench("ablation_threshold", _spec(), benchmark)
    series = result.series("f_score")
    assert len(series) == 3
