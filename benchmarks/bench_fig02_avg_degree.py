"""Fig. 2: effect of average node degree (LFR6-10, k = 2..6).

Regenerates the figure's data rows (per sweep point: each algorithm's
F-score and running time) at the scale selected by ``REPRO_BENCH_SCALE``
and archives them under ``benchmarks/results/fig2.txt``.
"""

from _util import run_figure_bench


def test_fig2_avg_degree(benchmark):
    result = run_figure_bench("fig2", benchmark)
    assert result.results, "figure produced no measurements"
