"""Drift detection latency and recovery on a mid-stream rewire.

The drift machinery (:mod:`repro.core.drift` +
``Tends.partial_fit(drift="adapt")``) promises two things on a
non-stationary stream: the change is flagged within about one absorb
window, and the self-healed model converges to what a fresh fit on
post-change data alone would produce — while re-searching only the
nodes the detector implicated.  This bench runs the canonical scenario
(LFR truth, one scheduled rewire, batch streaming) once per mode and
asserts both, archiving the per-mode trajectory table.

Acceptance rows: ``adapt`` recovery ratio >= 0.95 of the post-change
oracle refit, detection latency bounded by two batches.
"""

from __future__ import annotations

import math

from _util import archive_result, bench_scale, bench_seed

from repro.evaluation.drift import run_drift_experiment
from repro.evaluation.reporting import format_rows


def _scale_params() -> dict:
    if bench_scale() == "full":
        return dict(
            n_nodes=100, beta_pre=240, beta_post=240,
            batch_beta=60, rewire_fraction=0.1,
        )
    return dict(
        n_nodes=60, beta_pre=180, beta_post=180,
        batch_beta=60, rewire_fraction=0.3,
    )


def test_drift_recovery(benchmark):
    params = _scale_params()
    seed = bench_seed() or 7

    def run():
        return run_drift_experiment(seed=seed, **params)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for row in result.summary_rows():
        latency = row["detection_latency"]
        rows.append(
            {
                "mode": row["mode"],
                "final_f": f"{row['final_f']:.3f}",
                "oracle_f": f"{row['oracle_f']:.3f}",
                "recovery": f"{row['recovery_ratio']:.3f}",
                "latency_cascades": "-" if latency is None else latency,
            }
        )
    text = (
        f"drift recovery (n={result.n_nodes}, rewire "
        f"{result.rewire_fraction:g} at cascade {result.change_point}, "
        f"batch={result.batch_beta}, seed={seed})\n\n" + format_rows(rows)
    )
    print(f"\n{text}")
    archive_result("drift_recovery", text)

    assert not math.isnan(result.oracle_f) and result.oracle_f > 0
    # Self-healing must land within 5% of the post-change-only refit.
    assert result.recovery_ratio["adapt"] >= 0.95
    # The change must be flagged within two absorb windows.
    latency = result.detection_latency["adapt"]
    assert latency is not None and latency <= 2 * result.batch_beta
