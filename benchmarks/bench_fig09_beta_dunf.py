"""Fig. 9: effect of number of diffusion processes on DUNF.

Regenerates the figure's data rows (per sweep point: each algorithm's
F-score and running time) at the scale selected by ``REPRO_BENCH_SCALE``
and archives them under ``benchmarks/results/fig9.txt``.
"""

from _util import run_figure_bench


def test_fig9_beta_dunf(benchmark):
    result = run_figure_bench("fig9", benchmark)
    assert result.results, "figure produced no measurements"
