"""Stage-3 parallel-search backends on the 256-node scaling workload.

The per-node parent searches dominate TENDS wall-clock (see
``bench_complexity_scaling``), and the executor backends fan them out
across workers.  This bench measures the stage-3 speedup of the thread
and process strategies over the serial reference on one 256-node LFR
workload — and, on every row, re-asserts the determinism contract: the
inferred edge set must be identical to serial's.

Speedup assertions are gated on the host actually having the CPUs: a
single-core container can only demonstrate equivalence, not speedup, and
the table says which of the two this run measured.
"""

from __future__ import annotations

import os

from _util import archive_result, bench_scale, bench_seed

from repro.core.tends import Tends, TendsResult
from repro.evaluation.reporting import format_rows
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.simulation.engine import DiffusionSimulator
from repro.utils.rng import derive_seed

WORKLOAD_NODES = 256
BACKENDS = (("thread", 2), ("thread", 4), ("process", 2), ("process", 4))


def _workload():
    seed = derive_seed(bench_seed(), "parallel_search")
    beta = 150 if bench_scale() == "full" else 60
    truth = lfr_benchmark_graph(
        LFRParams(n=WORKLOAD_NODES, avg_degree=4), seed=seed
    )
    observations = DiffusionSimulator(
        truth, mu=0.3, alpha=0.15, seed=derive_seed(seed, "sim")
    ).run(beta=beta)
    return observations.statuses


def _search_seconds(result: TendsResult) -> float:
    return result.stage_seconds["search"]


def _measure() -> tuple[list[dict[str, object]], dict[tuple[str, int], float]]:
    statuses = _workload()
    serial = Tends().fit(statuses)
    serial_seconds = _search_seconds(serial)
    rows: list[dict[str, object]] = [
        {
            "executor": "serial",
            "n_jobs": 1,
            "search_s": round(serial_seconds, 3),
            "speedup": 1.0,
            "identical": True,
        }
    ]
    speedups: dict[tuple[str, int], float] = {}
    for executor, n_jobs in BACKENDS:
        result = Tends(executor=executor, n_jobs=n_jobs).fit(statuses)
        identical = (
            result.graph.edge_set() == serial.graph.edge_set()
            and result.parent_sets == serial.parent_sets
            and result.threshold == serial.threshold
        )
        seconds = _search_seconds(result)
        speedup = serial_seconds / seconds if seconds > 0 else float("inf")
        speedups[(executor, n_jobs)] = speedup
        rows.append(
            {
                "executor": executor,
                "n_jobs": n_jobs,
                "search_s": round(seconds, 3),
                "speedup": round(speedup, 2),
                "identical": identical,
            }
        )
    return rows, speedups


def test_parallel_search_speedup(benchmark):
    rows, speedups = benchmark.pedantic(_measure, rounds=1, iterations=1)
    cpus = os.cpu_count() or 1
    rows.append({"executor": f"(host: {cpus} cpus)", "n_jobs": "-", "search_s": "-",
                 "speedup": "-", "identical": "-"})
    text = format_rows(rows)
    print(f"\n{text}")
    archive_result("parallel_search", text)

    # Determinism is asserted unconditionally — every backend row must
    # have reproduced the serial topology exactly.
    assert all(row["identical"] in (True, "-") for row in rows)

    # Speedup is a hardware claim: only assert it where the hardware
    # exists.  The acceptance target is >= 2x for process at n_jobs=4.
    if cpus >= 4:
        best = max(speedups[("process", 4)], speedups[("thread", 4)])
        assert best >= 2.0, f"expected >= 2x stage-3 speedup at n_jobs=4, got {best:.2f}x"
