"""Empirical check of the §IV-D complexity analysis.

The paper states the TENDS runtime is ``O(β n² + t n² + η² κ^η n β)`` —
for fixed pruning effectiveness, roughly quadratic in the node count and
linear in the number of processes.  This bench measures wall-clock over a
doubling sweep of each and reports the fitted log-log slope; the
assertions only require sub-cubic growth in ``n`` and sub-quadratic in
``β`` (generous bounds — candidate-set sizes shift with scale, so exact
exponents wobble).

``test_tiled_memory_scaling`` checks the *space* side (docs/SCALING.md):
a fit with ``tile_size``/``spill_dir`` set must complete at a node count
where the dense sufficient statistics (five int64 ``n²`` count planes,
40 n² bytes) no longer fit comfortably, with peak RSS growth bounded
well below that footprint — and bit-identically, fingerprint-equal to a
dense fit of the same shard.  Peak RSS is lifetime-monotone (``VmHWM``),
so each measurement runs in its own subprocess.
"""

import json
import math
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from _util import archive_result, bench_scale, bench_seed

from repro.core.tends import Tends
from repro.evaluation.reporting import format_rows
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.graphs.generators.random_graphs import erdos_renyi_digraph
from repro.simulation import io as sim_io
from repro.simulation.engine import DiffusionSimulator
from repro.utils.rng import derive_seed


def _time_fit(
    n: int,
    beta: int,
    seed: int,
    *,
    executor: str | None = None,
    n_jobs: int | None = None,
) -> tuple[float, float]:
    """Total fit seconds and stage-3 (search) seconds for one workload."""
    truth = lfr_benchmark_graph(LFRParams(n=n, avg_degree=4), seed=seed)
    observations = DiffusionSimulator(
        truth, mu=0.3, alpha=0.15, seed=derive_seed(seed, "sim")
    ).run(beta=beta)
    start = time.perf_counter()
    result = Tends(executor=executor, n_jobs=n_jobs).fit(observations.statuses)
    return time.perf_counter() - start, result.stage_seconds["search"]


def _slope(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of log(y) against log(x)."""
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-9)) for y in ys]
    mx = sum(lx) / len(lx)
    my = sum(ly) / len(ly)
    sxx = sum((x - mx) ** 2 for x in lx)
    sxy = sum((x - mx) * (y - my) for x, y in zip(lx, ly))
    return sxy / sxx if sxx else 0.0


def _measure() -> tuple[list[dict[str, object]], float, float]:
    seed = derive_seed(bench_seed(), "complexity")
    if bench_scale() == "full":
        node_counts = [100, 200, 400]
        betas = [100, 200, 400]
    else:
        node_counts = [80, 160]
        betas = [80, 160]
    rows: list[dict[str, object]] = []

    n_times = [_time_fit(n, 150, derive_seed(seed, "n", n))[0] for n in node_counts]
    for n, t in zip(node_counts, n_times):
        rows.append({"sweep": "nodes", "value": n, "seconds": round(t, 3)})
    beta_times = [_time_fit(200, b, derive_seed(seed, "b", b))[0] for b in betas]
    for b, t in zip(betas, beta_times):
        rows.append({"sweep": "beta", "value": b, "seconds": round(t, 3)})

    n_slope = _slope([float(n) for n in node_counts], n_times)
    beta_slope = _slope([float(b) for b in betas], beta_times)
    rows.append({"sweep": "slope(n)", "value": "-", "seconds": round(n_slope, 2)})
    rows.append({"sweep": "slope(beta)", "value": "-", "seconds": round(beta_slope, 2)})

    # Stage 3 dominates every row above; measure how much the parallel
    # executor claws back on the largest node sweep (full numbers in
    # bench_parallel_search, which also asserts backend determinism).
    largest = node_counts[-1]
    jobs = min(4, os.cpu_count() or 1)
    _, serial_search = _time_fit(largest, 150, derive_seed(seed, "n", largest))
    _, parallel_search = _time_fit(
        largest, 150, derive_seed(seed, "n", largest), executor="process", n_jobs=jobs
    )
    rows.append(
        {"sweep": "search serial", "value": largest, "seconds": round(serial_search, 3)}
    )
    rows.append(
        {
            "sweep": f"search process x{jobs}",
            "value": largest,
            "seconds": round(parallel_search, 3),
        }
    )
    return rows, n_slope, beta_slope


def test_complexity_scaling(benchmark):
    rows, n_slope, beta_slope = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_rows(rows)
    print(f"\n{text}")
    archive_result("complexity_scaling", text)

    assert n_slope < 3.0, f"node scaling looks super-cubic: slope {n_slope:.2f}"
    assert beta_slope < 2.0, f"beta scaling looks super-quadratic: slope {beta_slope:.2f}"


# ----------------------------------------------------------------------
# tiled memory scaling
# ----------------------------------------------------------------------

#: Child workload: load the spooled statuses, record the post-import
#: baseline high-water mark, fit one node shard (stage 1+2 still cover
#: the full n×n pair space — the memory-relevant part; sharding only
#: bounds stage-3 wall-clock, mirroring the docs/SCALING.md scale-out
#: workflow), and report peak RSS + the result fingerprint.
_MEMORY_CHILD = """
import json, sys, time
from pathlib import Path
from repro.core.tends import Tends
from repro.obs.memory import read_peak_rss_bytes
from repro.simulation import io as sim_io

data, mode, spill, shard = sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4])
statuses = sim_io.read_statuses_npz(data)
baseline = read_peak_rss_bytes()
kwargs = {} if mode == "dense" else {"tile_size": 256, "spill_dir": spill}
start = time.perf_counter()
result = Tends(**kwargs).fit(statuses, nodes=range(shard))
print(json.dumps({
    "baseline_bytes": baseline,
    "peak_bytes": read_peak_rss_bytes(),
    "seconds": time.perf_counter() - start,
    "fingerprint": result.fingerprint(),
}))
"""


def _measure_fit_rss(data: Path, mode: str, spill: Path, shard: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(
            None,
            [str(Path(__file__).resolve().parent.parent / "src"), env.get("PYTHONPATH", "")],
        )
    )
    child = subprocess.run(
        [sys.executable, "-c", _MEMORY_CHILD, str(data), mode, str(spill), str(shard)],
        capture_output=True,
        text=True,
        env=env,
    )
    assert child.returncode == 0, child.stderr
    return json.loads(child.stdout.splitlines()[-1])


def _measure_memory() -> tuple[list[dict[str, object]], dict, dict, int]:
    if bench_scale() == "full":
        n, beta, shard = 5000, 100, 96
    else:
        n, beta, shard = 2000, 100, 48
    seed = derive_seed(bench_seed(), "tiled-memory")
    truth = erdos_renyi_digraph(n, 3.0 / n, seed=seed)
    observations = DiffusionSimulator(
        truth, mu=0.3, alpha=0.15, seed=derive_seed(seed, "sim")
    ).run(beta=beta)

    rows: list[dict[str, object]] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-tiles-") as tmp:
        data = Path(tmp) / "statuses.npz"
        sim_io.write_statuses_npz(observations.statuses, data)
        tiled = _measure_fit_rss(data, "tiled", Path(tmp) / "spill", shard)
        dense = _measure_fit_rss(data, "dense", Path(tmp) / "unused", shard)

    for mode, record in (("tiled", tiled), ("dense", dense)):
        rows.append(
            {
                "mode": mode,
                "n": n,
                "shard": shard,
                "fit_seconds": round(record["seconds"], 2),
                "peak_delta_mb": round(
                    (record["peak_bytes"] - record["baseline_bytes"]) / 1e6, 1
                ),
            }
        )
    rows.append(
        {
            "mode": "dense stats footprint",
            "n": n,
            "shard": "-",
            "fit_seconds": "-",
            "peak_delta_mb": round(40 * n * n / 1e6, 1),
        }
    )
    rows.append(
        {
            "mode": "dense float64 IMI plane",
            "n": n,
            "shard": "-",
            "fit_seconds": "-",
            "peak_delta_mb": round(8 * n * n / 1e6, 1),
        }
    )
    return rows, tiled, dense, n


def test_tiled_memory_scaling(benchmark):
    rows, tiled, dense, n = benchmark.pedantic(
        _measure_memory, rounds=1, iterations=1
    )
    text = format_rows(rows)
    print(f"\n{text}")
    archive_result("complexity_tiled_memory", text)

    assert tiled["fingerprint"] == dense["fingerprint"], (
        "tiled fit is not bit-identical to the dense fit"
    )
    if tiled["peak_bytes"] is None or dense["peak_bytes"] is None:
        return  # platform without VmHWM/ru_maxrss: parity still checked
    tiled_delta = tiled["peak_bytes"] - tiled["baseline_bytes"]
    dense_delta = dense["peak_bytes"] - dense["baseline_bytes"]
    dense_stats_footprint = 40 * n * n  # five int64 n×n count planes
    assert tiled_delta < dense_stats_footprint, (
        f"tiled fit peaked {tiled_delta / 1e6:.0f} MB over baseline, above the "
        f"dense statistics footprint {dense_stats_footprint / 1e6:.0f} MB"
    )
    assert tiled_delta < dense_delta, (
        f"tiled fit ({tiled_delta / 1e6:.0f} MB) used no less memory than the "
        f"dense fit ({dense_delta / 1e6:.0f} MB)"
    )
