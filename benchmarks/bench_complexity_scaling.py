"""Empirical check of the §IV-D complexity analysis.

The paper states the TENDS runtime is ``O(β n² + t n² + η² κ^η n β)`` —
for fixed pruning effectiveness, roughly quadratic in the node count and
linear in the number of processes.  This bench measures wall-clock over a
doubling sweep of each and reports the fitted log-log slope; the
assertions only require sub-cubic growth in ``n`` and sub-quadratic in
``β`` (generous bounds — candidate-set sizes shift with scale, so exact
exponents wobble).
"""

import math
import os
import time

from _util import archive_result, bench_scale, bench_seed

from repro.core.tends import Tends
from repro.evaluation.reporting import format_rows
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.simulation.engine import DiffusionSimulator
from repro.utils.rng import derive_seed


def _time_fit(
    n: int,
    beta: int,
    seed: int,
    *,
    executor: str | None = None,
    n_jobs: int | None = None,
) -> tuple[float, float]:
    """Total fit seconds and stage-3 (search) seconds for one workload."""
    truth = lfr_benchmark_graph(LFRParams(n=n, avg_degree=4), seed=seed)
    observations = DiffusionSimulator(
        truth, mu=0.3, alpha=0.15, seed=derive_seed(seed, "sim")
    ).run(beta=beta)
    start = time.perf_counter()
    result = Tends(executor=executor, n_jobs=n_jobs).fit(observations.statuses)
    return time.perf_counter() - start, result.stage_seconds["search"]


def _slope(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of log(y) against log(x)."""
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1e-9)) for y in ys]
    mx = sum(lx) / len(lx)
    my = sum(ly) / len(ly)
    sxx = sum((x - mx) ** 2 for x in lx)
    sxy = sum((x - mx) * (y - my) for x, y in zip(lx, ly))
    return sxy / sxx if sxx else 0.0


def _measure() -> tuple[list[dict[str, object]], float, float]:
    seed = derive_seed(bench_seed(), "complexity")
    if bench_scale() == "full":
        node_counts = [100, 200, 400]
        betas = [100, 200, 400]
    else:
        node_counts = [80, 160]
        betas = [80, 160]
    rows: list[dict[str, object]] = []

    n_times = [_time_fit(n, 150, derive_seed(seed, "n", n))[0] for n in node_counts]
    for n, t in zip(node_counts, n_times):
        rows.append({"sweep": "nodes", "value": n, "seconds": round(t, 3)})
    beta_times = [_time_fit(200, b, derive_seed(seed, "b", b))[0] for b in betas]
    for b, t in zip(betas, beta_times):
        rows.append({"sweep": "beta", "value": b, "seconds": round(t, 3)})

    n_slope = _slope([float(n) for n in node_counts], n_times)
    beta_slope = _slope([float(b) for b in betas], beta_times)
    rows.append({"sweep": "slope(n)", "value": "-", "seconds": round(n_slope, 2)})
    rows.append({"sweep": "slope(beta)", "value": "-", "seconds": round(beta_slope, 2)})

    # Stage 3 dominates every row above; measure how much the parallel
    # executor claws back on the largest node sweep (full numbers in
    # bench_parallel_search, which also asserts backend determinism).
    largest = node_counts[-1]
    jobs = min(4, os.cpu_count() or 1)
    _, serial_search = _time_fit(largest, 150, derive_seed(seed, "n", largest))
    _, parallel_search = _time_fit(
        largest, 150, derive_seed(seed, "n", largest), executor="process", n_jobs=jobs
    )
    rows.append(
        {"sweep": "search serial", "value": largest, "seconds": round(serial_search, 3)}
    )
    rows.append(
        {
            "sweep": f"search process x{jobs}",
            "value": largest,
            "seconds": round(parallel_search, 3),
        }
    )
    return rows, n_slope, beta_slope


def test_complexity_scaling(benchmark):
    rows, n_slope, beta_slope = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_rows(rows)
    print(f"\n{text}")
    archive_result("complexity_scaling", text)

    assert n_slope < 3.0, f"node scaling looks super-cubic: slope {n_slope:.2f}"
    assert beta_slope < 2.0, f"beta scaling looks super-quadratic: slope {beta_slope:.2f}"
