"""Extension bench: the comparison on Kronecker graphs.

NetInf and NetRate were originally evaluated on stochastic Kronecker
graphs; this bench replays the paper's §V comparison on that substrate
(core-periphery and hierarchical initiators, reciprocalised so the
status-only setting is informative) to check that the paper's orderings
are not an artefact of LFR structure.
"""

from _util import bench_scale, run_spec_bench

from repro.graphs.digraph import DiffusionGraph
from repro.graphs.generators.kronecker import (
    CORE_PERIPHERY_INITIATOR,
    HIERARCHICAL_INITIATOR,
    kronecker_digraph,
)
from repro.evaluation.harness import ExperimentSpec, SweepPoint, default_methods


def _reciprocal_kronecker(initiator):
    def factory(seed: int) -> DiffusionGraph:
        base = kronecker_digraph(8, initiator, target_avg_degree=2.0, seed=seed)
        graph = DiffusionGraph(base.n_nodes)
        for u, v in base.edges():
            graph.add_edge(u, v)
            graph.add_edge(v, u)
        return graph.freeze()

    return factory


def _spec() -> ExperimentSpec:
    beta = 150 if bench_scale() == "full" else 60
    points = (
        SweepPoint(
            label="core-periphery",
            value=0,
            graph_factory=_reciprocal_kronecker(CORE_PERIPHERY_INITIATOR),
            beta=beta,
        ),
        SweepPoint(
            label="hierarchical",
            value=1,
            graph_factory=_reciprocal_kronecker(HIERARCHICAL_INITIATOR),
            beta=beta,
        ),
    )
    return ExperimentSpec(
        experiment_id="extension_kronecker",
        title="Method comparison on Kronecker substrates (256 nodes)",
        x_label="initiator",
        points=points,
        methods=default_methods(),
    )


def test_extension_kronecker(benchmark):
    result = run_spec_bench("extension_kronecker", _spec(), benchmark)
    series = result.series("f_score")
    # The sanity floor: everything must beat LIFT on both substrates.
    assert all(
        series[name][i] >= series["LIFT"][i]
        for name in ("TENDS", "MulTree")
        for i in range(2)
    )
