"""Fig. 7: effect of propagation probability on DUNF.

Regenerates the figure's data rows (per sweep point: each algorithm's
F-score and running time) at the scale selected by ``REPRO_BENCH_SCALE``
and archives them under ``benchmarks/results/fig7.txt``.
"""

from _util import run_figure_bench


def test_fig7_mu_dunf(benchmark):
    result = run_figure_bench("fig7", benchmark)
    assert result.results, "figure produced no measurements"
