"""Extension bench: held-out selection of the pruning-threshold scale.

EXPERIMENTS.md's honest-deviation register notes that the 2-means τ
under-prunes in saturated regimes.  This bench evaluates the natural
ground-truth-free remedy (``repro.core.selection``): pick the
``threshold_scale`` by held-out predictive likelihood, and compare the
resulting F-score against the paper default (1.0τ) and the oracle-best
scale on NetSci at the paper's α and at the saturated α = 0.25.

Expected (and honestly recorded) outcome: predictive likelihood measures
*explanatory* power, and spurious-but-correlated parents genuinely help
prediction, so the selected scale tracks the F-optimal scale only
loosely — at the paper's operating point it can trade ~0.1 F for a more
predictive (larger-threshold, sparser) model, while in the saturated
regime it does recover part of the oracle's gain.  The bench records the
full table so the trade-off is on the record; the assertion only guards
against collapse (selection must stay within 0.15 F of the default and
well above chance).
"""

from _util import archive_result, bench_scale, bench_seed

from repro.core.selection import select_threshold_scale
from repro.core.tends import Tends
from repro.evaluation.metrics import evaluate_edges
from repro.evaluation.reporting import format_rows
from repro.graphs.generators.realworld import netsci
from repro.simulation.engine import DiffusionSimulator
from repro.utils.rng import derive_seed

SCALES = (0.6, 0.8, 1.0, 1.5, 2.0)


def _measure() -> list[dict[str, object]]:
    beta = 150 if bench_scale() == "full" else 60
    truth = netsci(0)
    rows: list[dict[str, object]] = []
    for alpha in (0.15, 0.25):
        seed = derive_seed(bench_seed(), "model-selection", alpha)
        statuses = DiffusionSimulator(
            truth, mu=0.3, alpha=alpha, seed=seed
        ).run(beta=beta).statuses

        selection = select_threshold_scale(
            statuses, SCALES, seed=derive_seed(seed, "split")
        )
        f_selected = evaluate_edges(truth, selection.result.graph).f_score

        f_by_scale = {
            scale: evaluate_edges(
                truth, Tends(threshold_scale=scale).fit(statuses).graph
            ).f_score
            for scale in SCALES
        }
        oracle_scale = max(f_by_scale, key=lambda s: f_by_scale[s])
        rows.append(
            {
                "alpha": alpha,
                "selected_scale": selection.best_scale,
                "f_selected": round(f_selected, 4),
                "f_default": round(f_by_scale[1.0], 4),
                "oracle_scale": oracle_scale,
                "f_oracle": round(f_by_scale[oracle_scale], 4),
            }
        )
    return rows


def test_extension_model_selection(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_rows(rows)
    print(f"\n{text}")
    archive_result("extension_model_selection", text)

    # Guard against collapse only; the docstring documents the honest
    # finding that selection optimises predictive power, not F.
    for row in rows:
        assert row["f_selected"] >= row["f_default"] - 0.15, row
        assert row["f_selected"] > 0.2, row
