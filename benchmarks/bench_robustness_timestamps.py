"""Extension bench: unreliable timestamps (the paper's §I motivation).

The paper's core argument for status-only inference is that monitored
infection timestamps are unreliable (incubation periods, reporting lag)
while final statuses are easy to observe.  This bench corrupts a growing
fraction of the cascade timestamps — leaving final statuses untouched —
and measures every method on the *same* diffusions: TENDS is immune by
construction; the cascade-based methods degrade.
"""

import numpy as np

from _util import archive_result, bench_scale, bench_seed

from repro.baselines.base import Observations, TendsInferrer
from repro.baselines.multree import MulTree
from repro.baselines.netrate import NetRate
from repro.evaluation.metrics import best_threshold_metrics, evaluate_edges
from repro.evaluation.reporting import format_rows
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph
from repro.simulation.engine import DiffusionSimulator
from repro.utils.rng import derive_seed


def _measure() -> list[dict[str, object]]:
    beta = 150 if bench_scale() == "full" else 60
    seed = derive_seed(bench_seed(), "timestamps")
    truth = lfr_benchmark_graph(LFRParams(n=150, avg_degree=4), seed=seed)
    clean = DiffusionSimulator(
        truth, mu=0.3, alpha=0.15, seed=derive_seed(seed, "sim")
    ).run(beta=beta)

    rows: list[dict[str, object]] = []
    for fraction in (0.0, 0.2, 0.4, 0.6):
        cascades = clean.cascades.with_time_noise(
            fraction, seed=derive_seed(seed, "noise", fraction)
        )
        observations = Observations(
            n_nodes=truth.n_nodes,
            statuses=cascades.to_status_matrix(),
            cascades=cascades,
            seed_sets=tuple(cascades.seed_sets()),
        )
        f_tends = evaluate_edges(
            truth, TendsInferrer().infer(observations).graph
        ).f_score
        f_multree = evaluate_edges(
            truth, MulTree(truth.n_edges).infer(observations).graph
        ).f_score
        netrate_output = NetRate(max_iterations=40).infer(observations)
        f_netrate, _ = best_threshold_metrics(truth, netrate_output.edge_scores)
        rows.append(
            {
                "corrupted_fraction": fraction,
                "TENDS": round(f_tends, 4),
                "MulTree": round(f_multree, 4),
                "NetRate": round(f_netrate.f_score, 4),
            }
        )
    return rows


def test_robustness_to_timestamp_noise(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_rows(rows)
    print(f"\n{text}")
    archive_result("robustness_timestamps", text)

    # TENDS consumes statuses only, so its accuracy must be exactly
    # constant across corruption levels...
    tends_scores = {row["TENDS"] for row in rows}
    assert len(tends_scores) == 1
    # ...while the cascade methods lose accuracy at heavy corruption.
    assert rows[-1]["MulTree"] < rows[0]["MulTree"]
