"""Extension bench: the full method roster, including the paper's
excluded related work.

The paper compares TENDS against NetRate, MulTree, and LIFT, and excludes
PATH (needs complete path traces) and NetInf (superseded by MulTree).
This bench runs *everything* — including PATH fed with ground-truth
diffusion paths, an input no real deployment has — on one LFR sweep
point, so the README's claims about relative standings are backed by a
regenerable table.
"""

from _util import bench_scale, run_spec_bench

from repro.evaluation.harness import ExperimentSpec, SweepPoint, default_methods
from repro.graphs.generators.lfr import LFRParams, lfr_benchmark_graph


def _spec() -> ExperimentSpec:
    beta = 150 if bench_scale() == "full" else 60
    points = tuple(
        SweepPoint(
            label=f"n={n}",
            value=n,
            graph_factory=lambda seed, n=n: lfr_benchmark_graph(
                LFRParams(n=n, avg_degree=4), seed=seed
            ),
            beta=beta,
        )
        for n in (150, 250)
    )
    return ExperimentSpec(
        experiment_id="extension_baselines",
        title="Full roster incl. PATH (oracle paths), NetInf, CORR",
        x_label="number of nodes n",
        points=points,
        methods=default_methods(
            include=(
                "TENDS",
                "NetRate",
                "MulTree",
                "NetInf",
                "LIFT",
                "CORR",
                "PATH",
            )
        ),
    )


def test_extension_baselines(benchmark):
    result = run_spec_bench("extension_baselines", _spec(), benchmark)
    series = result.series("f_score")
    assert set(series) == {
        "TENDS",
        "NetRate",
        "MulTree",
        "NetInf",
        "LIFT",
        "CORR",
        "PATH",
    }
    # PATH gets oracle paths, so it must dominate LIFT decisively.
    assert min(series["PATH"]) > max(series["LIFT"])
