"""Fig. 10: infection-MI pruning threshold sweep + MI-vs-IMI ablation on NetSci.

Regenerates the figure's data rows (per sweep point: each algorithm's
F-score and running time) at the scale selected by ``REPRO_BENCH_SCALE``
and archives them under ``benchmarks/results/fig10.txt``.
"""

from _util import run_figure_bench


def test_fig10_pruning_netsci(benchmark):
    result = run_figure_bench("fig10", benchmark)
    assert result.results, "figure produced no measurements"
