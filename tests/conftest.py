"""Shared fixtures: small deterministic graphs and simulated observations."""

from __future__ import annotations

import pytest

from repro.graphs.digraph import DiffusionGraph
from repro.graphs.generators.random_graphs import erdos_renyi_digraph, random_tree_digraph
from repro.simulation.engine import DiffusionSimulator
from repro.simulation.statuses import StatusMatrix


@pytest.fixture
def chain_graph() -> DiffusionGraph:
    """0 -> 1 -> 2 -> 3 -> 4."""
    return DiffusionGraph(5, [(i, i + 1) for i in range(4)]).freeze()


@pytest.fixture
def star_graph() -> DiffusionGraph:
    """Hub 0 pointing at 1..5."""
    return DiffusionGraph(6, [(0, i) for i in range(1, 6)]).freeze()


@pytest.fixture
def reciprocal_pair() -> DiffusionGraph:
    """Two mutually linked nodes plus an isolated third."""
    return DiffusionGraph(3, [(0, 1), (1, 0)]).freeze()


@pytest.fixture
def small_er_graph() -> DiffusionGraph:
    """A 25-node random digraph, frozen, deterministic."""
    return erdos_renyi_digraph(25, 0.12, seed=11)


@pytest.fixture
def small_tree() -> DiffusionGraph:
    """A 20-node random out-tree (exactly recoverable topology class)."""
    return random_tree_digraph(20, seed=5)


@pytest.fixture
def small_observations(small_er_graph):
    """120 simulated processes on the small ER graph (all views)."""
    simulator = DiffusionSimulator(small_er_graph, mu=0.35, alpha=0.15, seed=3)
    return simulator.run(beta=120)


@pytest.fixture
def tiny_statuses() -> StatusMatrix:
    """A hand-written 6-process, 3-node status matrix used by counting tests."""
    return StatusMatrix(
        [
            [1, 1, 0],
            [1, 1, 1],
            [0, 0, 0],
            [0, 1, 1],
            [1, 0, 0],
            [0, 0, 1],
        ]
    )
